//! Monadic futures (§3.5 of the paper).
//!
//! EbbRT's futures differ from `std::future` in exactly the ways the
//! paper calls out:
//!
//! * [`Future::then`] applies a continuation and returns a *new* future
//!   for the continuation's result (the monadic bind), instead of
//!   requiring a poll-based executor.
//! * If the value is already available, the continuation runs
//!   **synchronously in the caller's context** — the ARP-cache-hit fast
//!   path of Figure 2 pays no deferral cost.
//! * Errors ("exceptions") flow through a chain of `then`s untouched
//!   until some continuation actually inspects them, mirroring stack
//!   unwinding in synchronous code.
//!
//! A continuation receives a [`Fulfilled`] future and calls
//! [`Fulfilled::get`] to retrieve `Result<T, Error>`, exactly like the
//! paper's `f.Get()` which may rethrow.

use std::fmt;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// The error ("exception") type carried by failed futures.
///
/// Cheap to clone so one failure can propagate down multiple chains.
#[derive(Clone)]
pub struct Error(Arc<dyn std::error::Error + Send + Sync>);

impl Error {
    /// Wraps any error type.
    pub fn new<E: std::error::Error + Send + Sync + 'static>(e: E) -> Self {
        Error(Arc::new(e))
    }

    /// Creates an error from a message string.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(Arc::new(StringError(m.into())))
    }

    /// Returns the underlying error for inspection.
    pub fn inner(&self) -> &(dyn std::error::Error + Send + Sync) {
        &*self.0
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "future::Error({})", self.0)
    }
}

impl std::error::Error for Error {}

#[derive(Debug)]
struct StringError(String);

impl fmt::Display for StringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for StringError {}

/// Result alias used throughout the futures module.
pub type FutResult<T> = Result<T, Error>;

enum State<T> {
    /// No value yet; optional registered continuation.
    Pending(Option<Box<dyn FnOnce(FutResult<T>) + Send>>),
    /// Value produced but not yet consumed.
    Ready(FutResult<T>),
    /// Value was handed to a continuation or taken by `block`.
    Consumed,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
}

/// A value of type `T` that may not have been produced yet.
///
/// Futures are single-consumer: each future is consumed by exactly one
/// `then`/`block`/`try_take` call, which matches EbbRT's C++ move-only
/// `Future`.
pub struct Future<T> {
    shared: Arc<Shared<T>>,
}

/// The producing side of a [`Future`].
pub struct Promise<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a connected promise/future pair.
pub fn promise<T>() -> (Promise<T>, Future<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State::Pending(None)),
        cv: Condvar::new(),
    });
    (
        Promise {
            shared: Arc::clone(&shared),
        },
        Future { shared },
    )
}

/// Returns a future that is already fulfilled with `value`
/// (the paper's `MakeReadyFuture`).
pub fn ready<T>(value: T) -> Future<T> {
    Future {
        shared: Arc::new(Shared {
            state: Mutex::new(State::Ready(Ok(value))),
            cv: Condvar::new(),
        }),
    }
}

/// Returns a future that has already failed with `err`.
pub fn failed<T>(err: Error) -> Future<T> {
    Future {
        shared: Arc::new(Shared {
            state: Mutex::new(State::Ready(Err(err))),
            cv: Condvar::new(),
        }),
    }
}

impl<T: Send + 'static> Promise<T> {
    /// Fulfills the future with a value, synchronously invoking the
    /// registered continuation if there is one.
    pub fn set_value(self, value: T) {
        self.complete(Ok(value));
    }

    /// Fails the future with an error.
    pub fn set_error(self, err: Error) {
        self.complete(Err(err));
    }

    /// Completes the future with `result`.
    ///
    /// # Panics
    ///
    /// Panics if the future was already completed (promises are consumed
    /// by completion, so this can only happen through a logic error
    /// involving mem::forget-style shenanigans).
    pub fn complete(self, result: FutResult<T>) {
        let callback = {
            let mut state = self.shared.state.lock();
            match std::mem::replace(&mut *state, State::Consumed) {
                State::Pending(cb) => match cb {
                    Some(cb) => Some(cb),
                    None => {
                        *state = State::Ready(result);
                        self.shared.cv.notify_all();
                        return;
                    }
                },
                State::Ready(_) | State::Consumed => {
                    panic!("promise completed twice")
                }
            }
        };
        // Run the continuation outside the lock: it may itself create and
        // complete further futures.
        if let Some(cb) = callback {
            cb(result);
        }
    }
}

/// A fulfilled future handed to a `then` continuation.
///
/// Calling [`get`](Fulfilled::get) retrieves the value or the propagated
/// error — the analogue of the paper's `Future::Get` which may rethrow.
pub struct Fulfilled<T> {
    result: FutResult<T>,
}

impl<T> Fulfilled<T> {
    /// Retrieves the value or error.
    pub fn get(self) -> FutResult<T> {
        self.result
    }

    /// Returns `true` if the future holds an error.
    pub fn is_err(&self) -> bool {
        self.result.is_err()
    }
}

impl<T: Send + 'static> Future<T> {
    /// Applies `f` to the fulfilled future, returning a future for `f`'s
    /// result.
    ///
    /// If this future is already fulfilled, `f` runs synchronously before
    /// `then` returns (the cached-ARP-entry fast path). Otherwise `f`
    /// runs in whatever context completes the promise.
    ///
    /// If `f` returns `Err`, or if this future failed and `f` forwards
    /// the error out of `get`, the returned future fails.
    pub fn then<U, F>(self, f: F) -> Future<U>
    where
        U: Send + 'static,
        F: FnOnce(Fulfilled<T>) -> FutResult<U> + Send + 'static,
    {
        let (p, fut) = promise::<U>();
        self.consume(move |result| {
            p.complete(f(Fulfilled { result }));
        });
        fut
    }

    /// Monadic bind for continuations that are themselves asynchronous:
    /// `f` returns a `Future<U>` and the result future completes when the
    /// inner future does. Equivalent to `then(..).flatten()` in the
    /// paper's C++ implementation.
    pub fn flat_then<U, F>(self, f: F) -> Future<U>
    where
        U: Send + 'static,
        F: FnOnce(Fulfilled<T>) -> Future<U> + Send + 'static,
    {
        let (p, fut) = promise::<U>();
        self.consume(move |result| {
            f(Fulfilled { result }).consume(move |inner| p.complete(inner));
        });
        fut
    }

    /// Shorthand for a continuation that only handles the success case;
    /// errors propagate automatically (the paper's dominant usage: only
    /// the *final* `Then` must handle the error).
    pub fn map<U, F>(self, f: F) -> Future<U>
    where
        U: Send + 'static,
        F: FnOnce(T) -> U + Send + 'static,
    {
        self.then(move |ff| ff.get().map(f))
    }

    /// Returns the result if the future is already fulfilled.
    pub fn try_take(self) -> Result<FutResult<T>, Future<T>> {
        let taken = {
            let mut state = self.shared.state.lock();
            match std::mem::replace(&mut *state, State::Consumed) {
                State::Ready(r) => Some(r),
                old @ State::Pending(_) => {
                    *state = old;
                    None
                }
                State::Consumed => panic!("future consumed twice"),
            }
        };
        match taken {
            Some(r) => Ok(r),
            None => Err(self),
        }
    }

    /// Returns `true` if the future has been fulfilled (value or error)
    /// and not yet consumed.
    pub fn is_ready(&self) -> bool {
        matches!(*self.shared.state.lock(), State::Ready(_))
    }

    /// Blocks the calling *thread* until the future completes.
    ///
    /// This is for hosted/test contexts only. Inside the native event
    /// loop, blocking the thread would stall the core; use
    /// [`crate::event::EventManager`]'s context save/restore (which
    /// `crate::event::block_on` wraps) instead.
    pub fn block(self) -> FutResult<T> {
        let mut state = self.shared.state.lock();
        loop {
            match std::mem::replace(&mut *state, State::Consumed) {
                State::Ready(r) => return r,
                old @ State::Pending(_) => {
                    *state = old;
                    self.shared.cv.wait(&mut state);
                }
                State::Consumed => panic!("future consumed twice"),
            }
        }
    }

    /// Registers `cb` to run with the result; runs synchronously if
    /// already fulfilled.
    fn consume(self, cb: impl FnOnce(FutResult<T>) + Send + 'static) {
        let immediate = {
            let mut state = self.shared.state.lock();
            match std::mem::replace(&mut *state, State::Consumed) {
                State::Ready(r) => Some(r),
                State::Pending(existing) => {
                    assert!(existing.is_none(), "future consumed twice");
                    *state = State::Pending(Some(Box::new(cb)));
                    return;
                }
                State::Consumed => panic!("future consumed twice"),
            }
        };
        if let Some(r) = immediate {
            cb(r);
        }
    }
}

impl<T: Send + 'static> Future<Future<T>> {
    /// Collapses a `Future<Future<T>>` into a `Future<T>`.
    pub fn flatten(self) -> Future<T> {
        self.flat_then(|ff| match ff.get() {
            Ok(inner) => inner,
            Err(e) => failed(e),
        })
    }
}

/// Completes when every input future has completed; fails with the first
/// error encountered (in input order of completion inspection).
pub fn join_all<T: Send + 'static>(futures: Vec<Future<T>>) -> Future<Vec<T>> {
    let n = futures.len();
    if n == 0 {
        return ready(Vec::new());
    }
    let (p, fut) = promise::<Vec<T>>();
    struct JoinState<T> {
        results: Vec<Option<FutResult<T>>>,
        remaining: usize,
        promise: Option<Promise<Vec<T>>>,
    }
    let state = Arc::new(Mutex::new(JoinState {
        results: (0..n).map(|_| None).collect(),
        remaining: n,
        promise: Some(p),
    }));
    for (i, f) in futures.into_iter().enumerate() {
        let state = Arc::clone(&state);
        f.consume(move |r| {
            let mut s = state.lock();
            s.results[i] = Some(r);
            s.remaining -= 1;
            if s.remaining == 0 {
                let promise = s.promise.take().expect("join completed twice");
                let mut out = Vec::with_capacity(s.results.len());
                let mut err = None;
                for slot in s.results.drain(..) {
                    match slot.expect("missing join result") {
                        Ok(v) => out.push(v),
                        Err(e) => {
                            err.get_or_insert(e);
                        }
                    }
                }
                drop(s);
                match err {
                    None => promise.set_value(out),
                    Some(e) => promise.set_error(e),
                }
            }
        });
    }
    fut
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn ready_then_runs_synchronously() {
        let ran = Arc::new(AtomicBool::new(false));
        let ran2 = Arc::clone(&ran);
        let f = ready(21).then(move |v| {
            ran2.store(true, Ordering::SeqCst);
            Ok(v.get()? * 2)
        });
        // The continuation must already have run.
        assert!(ran.load(Ordering::SeqCst));
        assert_eq!(f.block().unwrap(), 42);
    }

    #[test]
    fn pending_then_runs_on_completion() {
        let (p, f) = promise::<u32>();
        let out = f.then(|v| Ok(v.get()? + 1));
        assert!(!out.is_ready());
        p.set_value(9);
        assert_eq!(out.block().unwrap(), 10);
    }

    #[test]
    fn error_propagates_through_chain() {
        let (p, f) = promise::<u32>();
        // Neither intermediate continuation inspects the error, mirroring
        // Figure 2's discussion: only the final consumer handles it.
        let out = f.map(|v| v + 1).map(|v| v * 2).then(|ff| match ff.get() {
            Ok(_) => Ok("value"),
            Err(e) => {
                assert!(e.to_string().contains("arp timeout"));
                Ok("handled")
            }
        });
        p.set_error(Error::msg("arp timeout"));
        assert_eq!(out.block().unwrap(), "handled");
    }

    #[test]
    fn continuation_error_fails_future() {
        let f = ready(1).then(|_| -> FutResult<u32> { Err(Error::msg("boom")) });
        assert!(f.block().is_err());
    }

    #[test]
    fn flat_then_chains_async() {
        let (p_inner, f_inner) = promise::<u32>();
        let out = ready(5).flat_then(move |v| {
            let base = v.get().unwrap();
            f_inner.map(move |x| x + base)
        });
        assert!(!out.is_ready());
        p_inner.set_value(100);
        assert_eq!(out.block().unwrap(), 105);
    }

    #[test]
    fn flatten_collapses() {
        let f: Future<Future<u32>> = ready(ready(7));
        assert_eq!(f.flatten().block().unwrap(), 7);
    }

    #[test]
    fn try_take_pending_returns_future_back() {
        let (p, f) = promise::<u8>();
        let f = match f.try_take() {
            Ok(_) => panic!("should be pending"),
            Err(f) => f,
        };
        p.set_value(3);
        match f.try_take() {
            Ok(r) => assert_eq!(r.unwrap(), 3),
            Err(_) => panic!("should be ready"),
        }
    }

    #[test]
    fn block_across_threads() {
        let (p, f) = promise::<String>();
        let t = std::thread::spawn(move || f.block().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        p.set_value("hello".to_string());
        assert_eq!(t.join().unwrap(), "hello");
    }

    #[test]
    fn join_all_collects_in_order() {
        let (p1, f1) = promise::<u32>();
        let (p2, f2) = promise::<u32>();
        let joined = join_all(vec![f1, ready(2), f2]);
        p2.set_value(3);
        p1.set_value(1);
        assert_eq!(joined.block().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn join_all_empty() {
        assert_eq!(join_all(Vec::<Future<u32>>::new()).block().unwrap(), vec![]);
    }

    #[test]
    fn join_all_propagates_error() {
        let (p1, f1) = promise::<u32>();
        let joined = join_all(vec![f1, ready(2)]);
        p1.set_error(Error::msg("nope"));
        assert!(joined.block().is_err());
    }

    #[test]
    fn failed_future_is_err_immediately() {
        let f: Future<()> = failed(Error::msg("x"));
        assert!(f.is_ready());
        assert!(f.block().is_err());
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_complete_panics() {
        let shared = {
            let (p, _f) = promise::<u32>();
            let dup = Promise {
                shared: Arc::clone(&p.shared),
            };
            p.set_value(1);
            dup
        };
        shared.set_value(2);
    }
}
