//! Hashed hierarchical timer wheel: O(1) arm/cancel/re-arm.
//!
//! The event loop's previous timer store was a `BinaryHeap` with a
//! `HashSet` of cancelled tokens. Every TCP segment arms/disarms an RTO
//! and a delayed-ACK timer, so at high connection counts the dispatch
//! path paid O(log n) heap churn per segment — and cancelled entries
//! lingered in the heap (tombstones pinning their boxed handlers) until
//! their deadline passed. This module replaces it with the classic
//! hashed hierarchical wheel (lwIP/Linux `timer.c` style, cf. Varghese
//! & Lauck scheme 6).
//!
//! # Level/slot layout
//!
//! Time is measured in *ticks* of `2^shift` nanoseconds (`shift` is the
//! granularity; `0` means exact-nanosecond ticks — see
//! [`crate::clock::DEFAULT_TIMER_TICK_SHIFT`]). The wheel has
//! [`LEVELS`] levels of [`SLOTS`] slots each; a slot at level `L`
//! spans `64^L` ticks:
//!
//! ```text
//! level 0:  64 slots × 1 tick        covers deltas      1 .. 63
//! level 1:  64 slots × 64 ticks      covers deltas     64 .. 4095
//! level 2:  64 slots × 4096 ticks    covers deltas   4096 .. 262143
//! ...
//! level 7:  64 slots × 64^7 ticks    covers up to 2^48 ticks (~3.2
//!                                    days at shift 0; farther deadlines
//!                                    are clamped and simply re-cascade)
//! ```
//!
//! A timer with deadline `d` and delta `d - now` is hashed into level
//! `⌊log64(delta)⌋`, slot `(d >> 6·level) & 63` — a shift, a mask, and
//! a doubly-linked-list insert: **O(1)**. Cancellation unlinks the
//! entry from its slot list and returns it to a free list: **O(1)**,
//! and — unlike the heap's tombstone set — the handler's storage is
//! released immediately, so cancelled timers can no longer pin memory
//! by construction. Re-arming ([`TimerWheel::arm`] on a live entry)
//! is an unlink + relink with no allocation, which is what lets the
//! TCP layer keep one persistent timer per connection and reset it
//! per ACK.
//!
//! # Cascade cost model
//!
//! The wheel advances lazily: [`TimerWheel::advance`] walks, per level,
//! only the slots the clock passed since the previous advance — an
//! occupancy-bitmap AND with a circular range mask, so empty regions
//! cost one word op regardless of how far time jumped. Entries in a
//! passed slot either become due (moved to the expired queue) or
//! *cascade*: they are re-hashed relative to the new time, which by
//! construction lands them in a strictly lower level (or a later slot
//! of the same level). A timer therefore moves at most `LEVELS - 1`
//! times over its whole life — amortized O(1) per timer, independent
//! of how many other timers are pending.
//!
//! Due entries are collected into a small binary heap ordered by
//! (deadline, arm sequence) so firing order is observationally
//! identical to the old global heap (earlier deadline first; FIFO
//! among equal deadlines). The O(log k) cost there is in the number of
//! *currently due* timers k, not the number pending.
//!
//! # Granularity bound
//!
//! Deadlines are rounded **up** to a tick boundary, so with a non-zero
//! `shift` a timer fires at most `2^shift - 1` ns after its requested
//! deadline and never early. [`TimerWheel::next_deadline`] reports a
//! lower bound on the next firing time: exact when the earliest timer
//! has cascaded to level 0, otherwise the start of its level-`L` slot
//! (the scan is one bitmap word per level — no slot lists are walked —
//! and the bound is strictly in the future, so callers that park until
//! the bound and re-ask make progress instead of spinning).
//!
//! # Slab layout: SoA hot/cold split
//!
//! The slab is split structure-of-arrays style. The *hot* array packs
//! the words every wheel operation touches — generation, state, slot
//! links, deadline tick, arm sequence — into one dense
//! [`HOT_ENTRY_BYTES`]-byte record per entry. The handler payload
//! lives in a parallel *cold* array touched only when an entry is
//! created, fires, or is removed. Cascades, re-arms and
//! `next_deadline` scans therefore walk cache lines holding hot words
//! only: at 1M pending timers the hot slab is ~32 MB of pure wheel
//! state instead of an interleaved hot+handler mix, doubling (or
//! better, for fat handlers) the useful bytes per DRAM line on the
//! cascade path. The `soa_vs_interleaved` group in the `timer_wheel`
//! bench measures the two layouts head-to-head at 10k/100k/1M pending.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::clock::{deadline_to_tick, tick_to_ns, Ns};

/// log2 of the slots per level.
pub const WHEEL_BITS: u32 = 6;
/// Slots per level.
pub const SLOTS: usize = 1 << WHEEL_BITS;
/// Number of levels. `SLOTS^LEVELS` ticks of total horizon; farther
/// deadlines are clamped into the top level and re-cascade.
pub const LEVELS: usize = 8;

/// Sentinel for "no entry" in the slab's index links.
const NIL: u32 = u32::MAX;

/// Owner tag of a wheel that has not been claimed by any core (raw
/// wheels built by tests and benches). Untagged wheels accept any
/// token minted by an untagged wheel.
pub const UNTAGGED_OWNER: u32 = u32::MAX;

/// Token identifying a timer entry. Tokens are generation-tagged:
/// after an entry is freed (fired one-shot, or cancelled) its token
/// goes stale and every operation on it is a no-op returning `false`.
///
/// In debug builds a token additionally remembers the *owner tag* of
/// the wheel that minted it (the event manager sets this to its core
/// id), and every wheel operation asserts the token belongs to this
/// wheel. Timer tokens are per-core: using core A's token against core
/// B's wheel is at best a stale no-op and at worst an index collision
/// firing an unrelated handler — the debug tag turns that entire class
/// of bug (e.g. a continuation resuming on the wrong core) into an
/// immediate assert.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TimerToken {
    bits: u64,
    #[cfg(debug_assertions)]
    owner: u32,
}

impl TimerToken {
    fn new(index: u32, gen: u32, owner: u32) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = owner;
        TimerToken {
            bits: ((gen as u64) << 32) | index as u64,
            #[cfg(debug_assertions)]
            owner,
        }
    }

    fn index(self) -> u32 {
        self.bits as u32
    }

    fn gen(self) -> u32 {
        (self.bits >> 32) as u32
    }
}

/// Where an entry currently lives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum State {
    /// On the free list.
    Free,
    /// Allocated but not scheduled (created disarmed, disarmed, or a
    /// persistent timer between firings). The handler is retained.
    Parked,
    /// Linked into a wheel slot.
    Armed,
    /// Due: moved off the wheel into the expired queue, not yet popped.
    Queued,
}

/// Hot half of a slab entry: every word the wheel machinery (place,
/// unlink, cascade, expiry checks) reads or writes. Packs to
/// [`HOT_ENTRY_BYTES`] so the cascade path streams dense wheel state
/// with no handler payload interleaved.
struct HotEntry {
    gen: u32,
    /// Slot list links while `Armed`; `next` doubles as the free-list
    /// link while `Free`.
    next: u32,
    prev: u32,
    /// Slot position while `Armed`: `level * SLOTS + slot`.
    pos: u16,
    state: State,
    /// Effective deadline in ticks (requested deadline rounded up).
    deadline_tick: u64,
    /// Arm sequence, for deadline ties (FIFO firing among equals).
    seq: u64,
}

/// Size of one hot slab record. The struct orders fields so the
/// compiler packs them without padding waste; this constant is
/// asserted (below) so layout regressions fail the build.
pub const HOT_ENTRY_BYTES: usize = 32;

const _: () = assert!(std::mem::size_of::<HotEntry>() == HOT_ENTRY_BYTES);

struct Level {
    /// Head entry index per slot (`NIL` if empty).
    slots: [u32; SLOTS],
    /// Bit `s` set ⇔ slot `s` non-empty.
    occupancy: u64,
}

impl Level {
    fn new() -> Self {
        Level {
            slots: [NIL; SLOTS],
            occupancy: 0,
        }
    }
}

/// Counters exposed for tests and benches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimerWheelStats {
    /// Timers scheduled to fire (armed or due-but-unpopped).
    pub pending: usize,
    /// Allocated entries (pending + parked persistent timers).
    pub live: usize,
    /// Slab capacity (high-water mark of simultaneous live entries).
    pub slab: usize,
    /// Total cascade moves performed (re-hash of an entry to a lower
    /// level as its slot is reached).
    pub cascades: u64,
}

/// The wheel. Generic over the handler payload `H` so the event loop
/// can store closures while benchmarks schedule unit payloads.
pub struct TimerWheel<H> {
    shift: u32,
    /// Debug owner tag stamped into minted tokens (see
    /// [`TimerToken`]); [`UNTAGGED_OWNER`] until claimed.
    owner: u32,
    /// Wheel time: the tick `advance` was last called with.
    last: u64,
    levels: Vec<Level>,
    /// SoA hot half: wheel state only, scanned by cascade/advance.
    hot: Vec<HotEntry>,
    /// SoA cold half, parallel to `hot`: handler payloads, touched
    /// only on create/fire/remove.
    handlers: Vec<Option<H>>,
    free_head: u32,
    /// Due entries ordered by (deadline ns, seq): `Reverse` for a
    /// min-heap. Stale nodes (re-armed or removed entries) are skipped
    /// on pop via the (gen, seq) check.
    expired: BinaryHeap<Reverse<(Ns, u64, u32, u32)>>,
    seq: u64,
    pending: usize,
    live: usize,
    cascades: u64,
    /// Monotone lower bound on the earliest pending deadline (ns).
    /// Tightened on arm, recomputed by `next_deadline` when stale.
    hint_ns: Ns,
}

impl<H> TimerWheel<H> {
    /// An empty wheel with tick granularity `2^shift` ns, starting at
    /// time zero.
    pub fn new(shift: u32) -> Self {
        assert!(shift < 32, "tick shift {shift} out of range");
        TimerWheel {
            shift,
            owner: UNTAGGED_OWNER,
            last: 0,
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            hot: Vec::new(),
            handlers: Vec::new(),
            free_head: NIL,
            expired: BinaryHeap::new(),
            seq: 0,
            pending: 0,
            live: 0,
            cascades: 0,
            hint_ns: Ns::MAX,
        }
    }

    /// The tick granularity shift.
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// Claims this wheel for `owner` (the event manager passes its
    /// core id). In debug builds, tokens minted afterwards carry the
    /// tag and operations assert it — catching tokens that wander to
    /// another core's wheel. Call before minting any token.
    pub fn set_owner(&mut self, owner: u32) {
        self.owner = owner;
    }

    /// Debug-asserts that `token` was minted by this wheel.
    #[inline]
    fn check_owner(&self, token: TimerToken) {
        #[cfg(debug_assertions)]
        assert_eq!(
            token.owner, self.owner,
            "TimerToken minted by owner {} used on owner {}'s wheel \
             (cross-core timer use)",
            token.owner, self.owner
        );
        #[cfg(not(debug_assertions))]
        let _ = token;
    }

    /// Counters snapshot.
    pub fn stats(&self) -> TimerWheelStats {
        TimerWheelStats {
            pending: self.pending,
            live: self.live,
            slab: self.hot.len(),
            cascades: self.cascades,
        }
    }

    /// Slab bytes per entry for this wheel's handler type: one hot
    /// record plus one cold `Option<H>` slot. Multiply by
    /// [`TimerWheelStats::slab`] for the total slab footprint.
    pub fn entry_bytes() -> usize {
        HOT_ENTRY_BYTES + std::mem::size_of::<Option<H>>()
    }

    /// Timers scheduled to fire.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Allocated entries (scheduled + parked).
    pub fn live(&self) -> usize {
        self.live
    }

    /// Whether `token` refers to a live entry.
    pub fn is_live(&self, token: TimerToken) -> bool {
        self.entry(token).is_some()
    }

    /// Whether `token` is scheduled to fire (armed or already due).
    pub fn is_scheduled(&self, token: TimerToken) -> bool {
        matches!(
            self.entry(token).map(|e| e.state),
            Some(State::Armed) | Some(State::Queued)
        )
    }

    /// Allocates a parked (unscheduled) entry holding `handler`.
    /// Schedule it with [`TimerWheel::arm`].
    pub fn create(&mut self, handler: H) -> TimerToken {
        let index = if self.free_head != NIL {
            let index = self.free_head;
            self.free_head = self.hot[index as usize].next;
            index
        } else {
            assert!(self.hot.len() < NIL as usize, "timer slab exhausted");
            self.hot.push(HotEntry {
                gen: 0,
                state: State::Free,
                deadline_tick: 0,
                seq: 0,
                pos: 0,
                next: NIL,
                prev: NIL,
            });
            self.handlers.push(None);
            (self.hot.len() - 1) as u32
        };
        let e = &mut self.hot[index as usize];
        debug_assert_eq!(e.state, State::Free);
        e.state = State::Parked;
        self.handlers[index as usize] = Some(handler);
        self.live += 1;
        TimerToken::new(index, e.gen, self.owner)
    }

    /// Schedules (or re-schedules) `token` to fire at `deadline_ns`.
    /// Works from any live state — parked, armed (re-arm: unlink +
    /// relink, no allocation), or already due (pulled back out of the
    /// expired queue). Returns `false` if the token is stale.
    pub fn arm(&mut self, token: TimerToken, deadline_ns: Ns) -> bool {
        if self.entry(token).is_none() {
            return false;
        }
        let index = token.index();
        match self.hot[index as usize].state {
            State::Armed => {
                self.unlink(index);
                self.pending -= 1;
            }
            State::Queued => {
                // The entry's heap node goes stale via the new seq.
                self.pending -= 1;
            }
            State::Parked => {}
            State::Free => unreachable!(),
        }
        let tick = deadline_to_tick(deadline_ns, self.shift);
        self.seq += 1;
        let seq = self.seq;
        {
            let e = &mut self.hot[index as usize];
            e.deadline_tick = tick;
            e.seq = seq;
        }
        if tick <= self.last {
            // Already due: straight to the expired queue.
            let e = &mut self.hot[index as usize];
            e.state = State::Queued;
            let (gen, dl) = (e.gen, tick_to_ns(tick, self.shift));
            self.expired.push(Reverse((dl, seq, index, gen)));
        } else {
            self.place(index);
        }
        self.pending += 1;
        self.hint_ns = self.hint_ns.min(tick_to_ns(tick, self.shift));
        true
    }

    /// Creates and arms a one-shot entry in one call.
    pub fn schedule(&mut self, deadline_ns: Ns, handler: H) -> TimerToken {
        let token = self.create(handler);
        let armed = self.arm(token, deadline_ns);
        debug_assert!(armed);
        token
    }

    /// Unschedules `token` without freeing it: the entry parks, its
    /// handler retained, ready to be re-armed. Returns `false` if the
    /// token is stale.
    pub fn disarm(&mut self, token: TimerToken) -> bool {
        if self.entry(token).is_none() {
            return false;
        }
        let index = token.index();
        match self.hot[index as usize].state {
            State::Armed => {
                self.unlink(index);
                self.pending -= 1;
            }
            State::Queued => {
                // Heap node goes stale: state no longer Queued.
                self.pending -= 1;
            }
            State::Parked => {}
            State::Free => unreachable!(),
        }
        self.hot[index as usize].state = State::Parked;
        true
    }

    /// Frees `token` from any live state, returning its handler. The
    /// entry's storage goes back to the free list immediately — there
    /// is no tombstone phase.
    pub fn remove(&mut self, token: TimerToken) -> Option<H> {
        self.entry(token)?;
        let index = token.index();
        match self.hot[index as usize].state {
            State::Armed => {
                self.unlink(index);
                self.pending -= 1;
            }
            State::Queued => {
                self.pending -= 1;
            }
            State::Parked => {}
            State::Free => unreachable!(),
        }
        let e = &mut self.hot[index as usize];
        e.state = State::Free;
        e.gen = e.gen.wrapping_add(1);
        e.next = self.free_head;
        self.free_head = index;
        self.live -= 1;
        self.handlers[index as usize].take()
    }

    /// Read access to a live entry's handler.
    pub fn handler(&self, token: TimerToken) -> Option<&H> {
        self.entry(token)?;
        self.handlers[token.index() as usize].as_ref()
    }

    /// Mutable access to a live entry's handler (replace the payload
    /// without disturbing the entry's schedule or token).
    pub fn handler_mut(&mut self, token: TimerToken) -> Option<&mut H> {
        self.entry(token)?;
        self.handlers[token.index() as usize].as_mut()
    }

    /// Advances wheel time to `now_ns`, moving every timer whose
    /// effective deadline has passed into the expired queue (pop them
    /// with [`TimerWheel::pop_expired`]). Cost: one bitmap word per
    /// level plus O(1) per timer that becomes due or cascades.
    pub fn advance(&mut self, now_ns: Ns) {
        let to = now_ns >> self.shift;
        if to <= self.last {
            return;
        }
        let from = self.last;
        // Set wheel time first: cascading re-hashes relative to `to`.
        self.last = to;
        for level in 0..LEVELS {
            let lshift = WHEEL_BITS * level as u32;
            let old = from >> lshift;
            let new = to >> lshift;
            if old == new {
                // No slot boundary crossed at this level, hence none at
                // any higher level either.
                break;
            }
            let mask = if new - old >= SLOTS as u64 {
                !0u64
            } else {
                circular_range_mask((old & 63) as u32, (new & 63) as u32)
            };
            let mut hit = self.levels[level].occupancy & mask;
            self.levels[level].occupancy &= !mask;
            while hit != 0 {
                let slot = hit.trailing_zeros() as usize;
                hit &= hit - 1;
                let mut index = self.levels[level].slots[slot];
                self.levels[level].slots[slot] = NIL;
                while index != NIL {
                    let next = self.hot[index as usize].next;
                    let due = self.hot[index as usize].deadline_tick <= to;
                    if due {
                        let e = &mut self.hot[index as usize];
                        e.state = State::Queued;
                        let node = (tick_to_ns(e.deadline_tick, self.shift), e.seq, index, e.gen);
                        self.expired.push(Reverse(node));
                    } else {
                        // Cascade: re-hash relative to the new time.
                        self.cascades += 1;
                        self.place(index);
                    }
                    index = next;
                }
            }
        }
    }

    /// Pops the next due timer (earliest deadline, FIFO among equals).
    /// The entry transitions to parked — the caller either re-arms it
    /// (persistent timers) or [`TimerWheel::remove`]s it to take the
    /// handler (one-shot timers). Returns `None` when nothing is due.
    pub fn pop_expired(&mut self) -> Option<(TimerToken, Ns)> {
        while let Some(Reverse((deadline, seq, index, gen))) = self.expired.pop() {
            let e = &mut self.hot[index as usize];
            if e.gen == gen && e.state == State::Queued && e.seq == seq {
                e.state = State::Parked;
                self.pending -= 1;
                return Some((TimerToken::new(index, gen, self.owner), deadline));
            }
            // Stale node: the entry was re-armed, disarmed or removed
            // after queueing. Skip.
        }
        None
    }

    /// Advances to `now_ns` and returns a lower bound on the next
    /// firing time: the exact deadline of an already-due timer, the
    /// exact deadline when the earliest timer sits in level 0, or the
    /// start of its slot at a higher level. The bound is strictly
    /// greater than `now_ns` whenever nothing is due, so park/poll
    /// loops driven by it always make progress. `None` if no timer is
    /// pending.
    pub fn next_deadline(&mut self, now_ns: Ns) -> Option<Ns> {
        self.advance(now_ns);
        // Drop stale heap nodes, then report a due timer exactly.
        while let Some(Reverse((deadline, seq, index, gen))) = self.expired.peek().copied() {
            let e = &self.hot[index as usize];
            if e.gen == gen && e.state == State::Queued && e.seq == seq {
                return Some(deadline);
            }
            self.expired.pop();
        }
        if self.pending == 0 {
            return None;
        }
        // Scan: one occupancy word per level, no list walks.
        let mut bound_tick = u64::MAX;
        for level in 0..LEVELS {
            let occ = self.levels[level].occupancy;
            if occ == 0 {
                continue;
            }
            let lshift = WHEEL_BITS * level as u32;
            let cur_global = self.last >> lshift;
            let cur = (cur_global & 63) as u32;
            // Distance (in slots, 1-based) to the first occupied slot
            // strictly after the current position, circularly.
            let rotated = occ.rotate_right((cur + 1) & 63);
            let dist = rotated.trailing_zeros() as u64 + 1;
            let slot_start = (cur_global + dist) << lshift;
            bound_tick = bound_tick.min(slot_start.max(self.last + 1));
        }
        debug_assert_ne!(bound_tick, u64::MAX, "pending timers but empty wheel");
        let mut bound = tick_to_ns(bound_tick, self.shift);
        // The arm-time hint is a (possibly stale-low) lower bound too;
        // both are sound, so take the tighter. Exact in the common
        // case where the earliest-armed timer is still pending.
        if self.hint_ns > now_ns {
            bound = bound.max(self.hint_ns);
        }
        self.hint_ns = bound;
        Some(bound)
    }

    // --- internals -----------------------------------------------------

    fn entry(&self, token: TimerToken) -> Option<&HotEntry> {
        self.check_owner(token);
        let e = self.hot.get(token.index() as usize)?;
        (e.gen == token.gen() && e.state != State::Free).then_some(e)
    }

    /// Hashes an (already detached) entry into its level/slot by its
    /// deadline relative to current wheel time, and links it in.
    fn place(&mut self, index: u32) {
        let tick = self.hot[index as usize].deadline_tick;
        debug_assert!(tick > self.last);
        let max_span = (1u64 << (WHEEL_BITS * LEVELS as u32)) - 1;
        let delta = (tick - self.last).min(max_span);
        let level = ((63 - (delta | 1).leading_zeros()) / WHEEL_BITS) as usize;
        let lshift = WHEEL_BITS * level as u32;
        let slot = (((self.last + delta) >> lshift) & 63) as usize;
        let head = self.levels[level].slots[slot];
        {
            let e = &mut self.hot[index as usize];
            e.state = State::Armed;
            e.pos = (level * SLOTS + slot) as u16;
            e.prev = NIL;
            e.next = head;
        }
        if head != NIL {
            self.hot[head as usize].prev = index;
        }
        self.levels[level].slots[slot] = index;
        self.levels[level].occupancy |= 1u64 << slot;
    }

    /// Unlinks an `Armed` entry from its slot list.
    fn unlink(&mut self, index: u32) {
        let (pos, prev, next) = {
            let e = &self.hot[index as usize];
            debug_assert_eq!(e.state, State::Armed);
            (e.pos as usize, e.prev, e.next)
        };
        let (level, slot) = (pos / SLOTS, pos % SLOTS);
        if prev != NIL {
            self.hot[prev as usize].next = next;
        } else {
            self.levels[level].slots[slot] = next;
            if next == NIL {
                self.levels[level].occupancy &= !(1u64 << slot);
            }
        }
        if next != NIL {
            self.hot[next as usize].prev = prev;
        }
    }
}

/// Mask with bits `(a, b]` set, circularly (a ≠ b, both < 64).
fn circular_range_mask(a: u32, b: u32) -> u64 {
    debug_assert_ne!(a, b);
    let le = |x: u32| -> u64 {
        // Bits 0..=x.
        if x == 63 {
            !0
        } else {
            (1u64 << (x + 1)) - 1
        }
    };
    if a < b {
        le(b) & !le(a)
    } else {
        le(b) | !le(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimerWheel<u32>, now: Ns) -> Vec<(u32, Ns)> {
        w.advance(now);
        let mut out = Vec::new();
        while let Some((tok, dl)) = w.pop_expired() {
            let id = *w.handler(tok).unwrap();
            w.remove(tok);
            out.push((id, dl));
        }
        out
    }

    #[test]
    fn mask_ranges() {
        assert_eq!(circular_range_mask(0, 1), 0b10);
        assert_eq!(circular_range_mask(0, 63), !1u64);
        assert_eq!(circular_range_mask(62, 63), 1u64 << 63);
        // Wrapping: (63, 1] = {0, 1}.
        assert_eq!(circular_range_mask(63, 1), 0b11);
        // (5, 2] = everything except {3, 4, 5}.
        assert_eq!(circular_range_mask(5, 2), !(0b111u64 << 3));
    }

    #[test]
    fn fires_in_deadline_order_across_levels() {
        let mut w = TimerWheel::new(0);
        // Deltas spanning levels 0..3, armed out of order.
        let deadlines = [5u64, 70, 4100, 263000, 63, 4095, 64, 1];
        for (i, &d) in deadlines.iter().enumerate() {
            w.schedule(d, i as u32);
        }
        let fired = drain(&mut w, 1_000_000);
        let got: Vec<Ns> = fired.iter().map(|&(_, d)| d).collect();
        let mut want = deadlines.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
        assert_eq!(w.stats().pending, 0);
        assert_eq!(w.stats().live, 0);
    }

    #[test]
    fn equal_deadlines_fire_in_arm_order() {
        let mut w = TimerWheel::new(0);
        for i in 0..10u32 {
            w.schedule(500, i);
        }
        let fired = drain(&mut w, 500);
        let ids: Vec<u32> = fired.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn nothing_fires_early_under_incremental_advance() {
        let mut w = TimerWheel::new(0);
        let t = w.schedule(1000, 1);
        for now in (0..1000).step_by(7) {
            w.advance(now);
            assert!(w.pop_expired().is_none(), "fired early at {now}");
            assert!(w.is_scheduled(t));
        }
        w.advance(1000);
        let (tok, dl) = w.pop_expired().unwrap();
        assert_eq!(dl, 1000);
        assert_eq!(tok, t);
    }

    #[test]
    fn cancel_frees_immediately() {
        let mut w = TimerWheel::new(0);
        let tokens: Vec<_> = (0..100).map(|i| w.schedule(10_000 + i, i as u32)).collect();
        assert_eq!(w.live(), 100);
        for t in &tokens {
            assert!(w.remove(*t).is_some());
        }
        // No tombstones: storage is free the moment cancel returns.
        assert_eq!(w.live(), 0);
        assert_eq!(w.pending(), 0);
        assert_eq!(drain(&mut w, 1 << 30), vec![]);
        // Stale tokens are inert.
        assert!(!w.arm(tokens[0], 5));
        assert!(!w.disarm(tokens[0]));
        assert!(w.remove(tokens[0]).is_none());
    }

    #[test]
    fn rearm_moves_deadline_without_refiring() {
        let mut w = TimerWheel::new(0);
        let t = w.schedule(100, 7);
        assert!(w.arm(t, 900)); // push out before it fires
        w.advance(500);
        assert!(w.pop_expired().is_none(), "old deadline must not fire");
        w.advance(900);
        let (tok, dl) = w.pop_expired().unwrap();
        assert_eq!((tok, dl), (t, 900));
        // Re-arm from parked (persistent pattern).
        assert!(w.arm(t, 1500));
        w.advance(1500);
        assert_eq!(w.pop_expired().unwrap(), (t, 1500));
        w.remove(t);
        assert_eq!(w.live(), 0);
    }

    #[test]
    fn rearm_of_due_but_unfired_timer_unqueues_it() {
        let mut w = TimerWheel::new(0);
        let t = w.schedule(100, 1);
        w.advance(200); // now queued
        assert!(w.arm(t, 400)); // pulled back out
        assert!(w.pop_expired().is_none());
        w.advance(400);
        assert_eq!(w.pop_expired().unwrap(), (t, 400));
    }

    #[test]
    fn disarm_parks_and_retains_handler() {
        let mut w = TimerWheel::new(0);
        let t = w.schedule(100, 42);
        assert!(w.disarm(t));
        assert_eq!(w.pending(), 0);
        assert_eq!(w.live(), 1);
        w.advance(1000);
        assert!(w.pop_expired().is_none());
        assert_eq!(w.handler(t), Some(&42));
        assert!(w.arm(t, 2000));
        w.advance(2000);
        assert_eq!(w.pop_expired().unwrap(), (t, 2000));
    }

    #[test]
    fn next_deadline_bounds_are_sound_and_progress() {
        let mut w = TimerWheel::new(0);
        w.schedule(130, 1);
        w.schedule(5000, 2);
        // The bound never exceeds the true next deadline, and repeated
        // park-until-bound converges on it.
        let mut now = 0;
        let mut rounds = 0;
        loop {
            match w.next_deadline(now) {
                Some(b) => {
                    assert!(b <= 130, "bound {b} past true deadline");
                    assert!(b > now, "bound must be in the future");
                    if b == 130 {
                        break;
                    }
                    now = b;
                }
                None => panic!("pending timer lost"),
            }
            rounds += 1;
            assert!(rounds <= LEVELS, "bound failed to converge");
        }
        w.advance(130);
        assert!(w.pop_expired().is_some());
        // Second timer's bound likewise.
        let b = w.next_deadline(130).unwrap();
        assert!(b > 130 && b <= 5000);
    }

    #[test]
    fn next_deadline_exact_for_due_and_level0() {
        let mut w = TimerWheel::new(0);
        w.schedule(40, 1); // delta < 64: level 0, exact
        assert_eq!(w.next_deadline(0), Some(40));
        w.advance(40);
        assert_eq!(w.next_deadline(40), Some(40), "due timer reported exactly");
    }

    #[test]
    fn far_deadlines_clamp_and_still_fire() {
        let mut w = TimerWheel::new(0);
        let horizon = 1u64 << (WHEEL_BITS * LEVELS as u32);
        w.schedule(horizon * 3 + 17, 1);
        w.advance(horizon * 3 + 16);
        assert!(w.pop_expired().is_none());
        w.advance(horizon * 3 + 17);
        let (_, dl) = w.pop_expired().unwrap();
        assert_eq!(dl, horizon * 3 + 17);
    }

    #[test]
    fn coarse_granularity_fires_late_never_early() {
        // shift 10: 1.024 µs ticks.
        let mut w = TimerWheel::new(10);
        w.schedule(1500, 1);
        // Effective deadline: next tick boundary at or after 1500.
        let eff = ((1500 + 1023) >> 10) << 10;
        w.advance(1500);
        assert!(w.pop_expired().is_none(), "must not fire before its tick");
        w.advance(eff - 1);
        assert!(w.pop_expired().is_none());
        w.advance(eff);
        let (_, dl) = w.pop_expired().unwrap();
        assert_eq!(dl, eff);
        assert!(dl - 1500 < 1024, "lateness bounded by one tick");
        // Tick-aligned deadlines are exact even at coarse granularity.
        w.schedule(4096, 2);
        w.advance(4096);
        assert_eq!(w.pop_expired().unwrap().1, 4096);
    }

    #[test]
    fn slab_recycles_entries() {
        let mut w = TimerWheel::new(0);
        for round in 0..10 {
            let tokens: Vec<_> = (0..50)
                .map(|i| w.schedule(round * 100 + 50 + i, i as u32))
                .collect();
            w.advance(round * 100 + 200);
            let mut fired = 0;
            while let Some((t, _)) = w.pop_expired() {
                w.remove(t);
                fired += 1;
            }
            assert_eq!(fired, tokens.len());
        }
        // 10 rounds × 50 timers reused the same 50 slab entries.
        assert_eq!(w.stats().slab, 50);
        assert_eq!(w.stats().live, 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "cross-core timer use")]
    fn cross_wheel_token_asserts_in_debug() {
        let mut w0: TimerWheel<u32> = TimerWheel::new(0);
        w0.set_owner(0);
        let mut w1: TimerWheel<u32> = TimerWheel::new(0);
        w1.set_owner(1);
        let t = w0.schedule(100, 7);
        // Same index/generation would exist in w1 too — without the
        // owner tag this would be a silent collision.
        w1.schedule(100, 8);
        w1.arm(t, 200);
    }

    #[test]
    fn untagged_wheels_accept_untagged_tokens() {
        let mut w: TimerWheel<u32> = TimerWheel::new(0);
        let t = w.schedule(100, 1);
        assert!(w.arm(t, 200));
        assert!(w.remove(t).is_some());
    }

    #[test]
    fn cascade_count_is_bounded() {
        let mut w = TimerWheel::new(0);
        // A far timer cascades at most LEVELS-1 times on its way in.
        w.schedule(1_000_000_000, 1);
        let mut now = 0;
        while w.pending() > 0 {
            now += 999;
            w.advance(now);
            while let Some((t, _)) = w.pop_expired() {
                w.remove(t);
            }
        }
        assert!(
            w.stats().cascades <= (LEVELS as u64 - 1),
            "cascades {} exceed bound",
            w.stats().cascades
        );
    }
}
