//! Spin-based synchronization primitives.
//!
//! Most per-core state in EbbRT needs no locking at all (see
//! [`crate::cpu::CoreLocal`]); these primitives cover the residual
//! cross-core structures — shared Ebb root state, cross-core queues'
//! metadata — where the critical sections are a handful of instructions
//! and events must not block.

use core::cell::UnsafeCell;
use core::ops::{Deref, DerefMut};
use core::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A test-and-test-and-set spinlock.
///
/// Events are non-preemptive, so a holder is never descheduled mid
/// critical section on its own core; spinning is therefore bounded by the
/// other cores' (short) critical sections.
pub struct SpinLock<T: ?Sized> {
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

// SAFETY: the lock provides exclusive access to the value.
unsafe impl<T: ?Sized + Send> Sync for SpinLock<T> {}
// SAFETY: moving the lock moves the value; no references can be live.
unsafe impl<T: ?Sized + Send> Send for SpinLock<T> {}

impl<T: Default> Default for SpinLock<T> {
    fn default() -> Self {
        SpinLock::new(T::default())
    }
}

impl<T> SpinLock<T> {
    /// Creates a new unlocked spinlock.
    pub const fn new(value: T) -> Self {
        SpinLock {
            locked: AtomicBool::new(false),
            value: UnsafeCell::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: ?Sized> SpinLock<T> {
    /// Acquires the lock, spinning until it is available.
    pub fn lock(&self) -> SpinGuard<'_, T> {
        loop {
            if let Some(g) = self.try_lock() {
                return g;
            }
            while self.locked.load(Ordering::Relaxed) {
                core::hint::spin_loop();
            }
        }
    }

    /// Attempts to acquire the lock without spinning.
    pub fn try_lock(&self) -> Option<SpinGuard<'_, T>> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(SpinGuard { lock: self })
        } else {
            None
        }
    }

    /// Returns mutable access without locking; safe because `&mut self`
    /// proves unique ownership.
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

/// RAII guard for [`SpinLock`].
pub struct SpinGuard<'a, T: ?Sized> {
    lock: &'a SpinLock<T>,
}

impl<T: ?Sized> Deref for SpinGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard holds the lock.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T: ?Sized> DerefMut for SpinGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard holds the lock exclusively.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T: ?Sized> Drop for SpinGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

/// A reusable spinning barrier for `n` participants.
///
/// Used by multi-core microbenchmarks to start all cores simultaneously.
pub struct SpinBarrier {
    n: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    /// Creates a barrier for `n` participants.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        SpinBarrier {
            n,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Blocks (spinning) until all `n` participants have called `wait`.
    /// Returns `true` on exactly one participant per generation (the
    /// "leader"), mirroring `std::sync::Barrier`.
    pub fn wait(&self) -> bool {
        let gen = self.generation.load(Ordering::Acquire);
        let order = self.arrived.fetch_add(1, Ordering::AcqRel);
        if order + 1 == self.n {
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.store(gen + 1, Ordering::Release);
            true
        } else {
            while self.generation.load(Ordering::Acquire) == gen {
                core::hint::spin_loop();
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_excludes() {
        let lock = Arc::new(SpinLock::new(0u64));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        *lock.lock() += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*lock.lock(), 40_000);
    }

    #[test]
    fn try_lock_fails_when_held() {
        let lock = SpinLock::new(());
        let g = lock.lock();
        assert!(lock.try_lock().is_none());
        drop(g);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn barrier_releases_all_and_reuses() {
        let barrier = Arc::new(SpinBarrier::new(3));
        let counter = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..3)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    let mut leads = 0;
                    for round in 0..5 {
                        counter.fetch_add(1, Ordering::SeqCst);
                        if barrier.wait() {
                            leads += 1;
                            // All three increments of this round must be
                            // visible to the leader.
                            assert!(counter.load(Ordering::SeqCst) >= (round + 1) * 3);
                        }
                    }
                    leads
                })
            })
            .collect();
        let total_leads: usize = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(total_leads, 5);
        assert_eq!(counter.load(Ordering::SeqCst), 15);
    }
}
