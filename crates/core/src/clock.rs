//! Time sources.
//!
//! The runtime reads time through the [`Clock`] trait so the same code
//! runs against wall-clock time (threaded backend) or a virtual
//! nanosecond clock advanced by the discrete-event scheduler (simulated
//! backend). All times are nanoseconds since an arbitrary per-instance
//! epoch.

use std::sync::Arc;
use std::time::Instant;

/// Nanoseconds since a clock-specific epoch.
pub type Ns = u64;

/// Tick granularity used by the event manager's timer wheel
/// ([`crate::timer`]): deadlines are quantized to ticks of
/// `2^shift` nanoseconds. The default of `0` keeps exact-nanosecond
/// semantics (a timer fires at the first dispatch with
/// `now >= deadline`, as the old heap did); a coarser shift trades up
/// to `2^shift - 1` ns of firing lateness for a smaller wheel span —
/// timers never fire early either way, because deadlines round *up*.
pub const DEFAULT_TIMER_TICK_SHIFT: u32 = 0;

/// Converts a deadline to its tick, rounding up so the quantized timer
/// never fires before the requested time.
#[inline]
pub fn deadline_to_tick(deadline_ns: Ns, shift: u32) -> u64 {
    let gran = (1u64 << shift) - 1;
    deadline_ns.saturating_add(gran) >> shift
}

/// The instant (ns) at which a tick begins — the effective deadline of
/// every timer quantized to that tick.
#[inline]
pub fn tick_to_ns(tick: u64, shift: u32) -> Ns {
    tick << shift
}

/// A monotonic nanosecond time source.
pub trait Clock: Send + Sync + 'static {
    /// Current time in nanoseconds since this clock's epoch.
    fn now_ns(&self) -> Ns;
}

/// Wall-clock time relative to clock creation.
pub struct RealClock {
    epoch: Instant,
}

impl RealClock {
    /// Creates a clock whose epoch is "now".
    pub fn new() -> Self {
        RealClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now_ns(&self) -> Ns {
        self.epoch.elapsed().as_nanos() as Ns
    }
}

/// A manually-advanced clock, used by tests and by the discrete-event
/// scheduler (which advances it to each event's timestamp).
pub struct ManualClock {
    now: std::sync::atomic::AtomicU64,
}

impl ManualClock {
    /// Creates a clock reading zero.
    pub fn new() -> Self {
        ManualClock {
            now: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Sets the current time. `t` must be monotonically non-decreasing
    /// across calls; this is debug-asserted.
    pub fn set(&self, t: Ns) {
        let prev = self.now.swap(t, std::sync::atomic::Ordering::Relaxed);
        debug_assert!(t >= prev, "ManualClock moved backwards: {prev} -> {t}");
    }

    /// Advances the clock by `dt` nanoseconds, returning the new time.
    pub fn advance(&self, dt: Ns) -> Ns {
        self.now.fetch_add(dt, std::sync::atomic::Ordering::Relaxed) + dt
    }
}

impl Default for ManualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> Ns {
        self.now.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl Clock for Arc<ManualClock> {
    fn now_ns(&self) -> Ns {
        (**self).now_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_monotonic() {
        let c = RealClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_set_and_advance() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.set(100);
        assert_eq!(c.now_ns(), 100);
        assert_eq!(c.advance(50), 150);
        assert_eq!(c.now_ns(), 150);
    }
}
