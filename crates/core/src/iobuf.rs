//! IOBuf: the zero-copy buffer descriptor (§3.6 of the paper).
//!
//! An IOBuf *descriptor* manages ownership of a region of memory plus a
//! view (window) onto a portion of it. Data moves through the system by
//! moving descriptors, never by copying bytes:
//!
//! * A device driver fills a [`MutIoBuf`] and passes it up the stack.
//! * Each protocol layer *advances* the view past its header.
//! * On transmit, layers *prepend* headers into headroom reserved in
//!   front of the payload, so adding an Ethernet/IP/TCP header never
//!   reallocates or copies the payload.
//! * [`IoBuf`] is the frozen, shareable form (`Arc`-backed): TCP keeps a
//!   clone in its retransmit queue while the device reads another — one
//!   region, two descriptors, zero copies.
//! * [`Chain`] strings segments together for scatter/gather I/O, and
//!   [`Cursor`] parses across segment boundaries.
//!
//! Two pieces make the discipline *cheap* as well as copy-free:
//!
//! * **Buffer pooling** ([`pool`]): regions are recycled through
//!   per-core free lists in a small set of *size classes* — a
//!   [`pool::SizeClass::Small`] class for MTU-sized frames and header
//!   buffers and a [`pool::SizeClass::Large`] class for jumbo frames
//!   and multi-kilobyte message staging — instead of being allocated
//!   and zero-filled per packet. Allocation is routed by requested
//!   length ([`pool::class_for`]); only requests beyond the largest
//!   class fall back to exact-size one-shot allocations. When the last
//!   descriptor of a pooled region drops, its storage returns to the
//!   *freeing core's* list automatically, and a shared depot rebalances
//!   lists across cores in batches when producers and consumers of
//!   buffers sit on different cores.
//! * **Instrumentation** ([`stats`]): per-core counters record every
//!   payload byte copied between buffers, every fresh storage
//!   allocation, and per-class pool activity (hits, returns, fallback
//!   allocations, depot migration), so benchmarks can *assert* the
//!   zero-copy/zero-alloc property of a steady-state request path —
//!   per size class — rather than assume it.

use std::fmt;
use std::ops::Range;
use std::sync::Arc;

/// Zero-copy bookkeeping: counters that let benchmarks prove the
/// fast-path property ("0 payload bytes copied, 0 fresh allocations").
///
/// What counts:
///
/// * [`bytes_copied`](stats::bytes_copied) — payload bytes memcpy'd
///   between heap buffers: [`IoBuf::copy_from`],
///   [`MutIoBuf::append_slice`], [`Chain::copy_to_vec`],
///   [`Cursor::read_vec`]. Fixed-width header-field reads
///   ([`Cursor::read_u32_be`] and friends, [`Cursor::read_exact`] into
///   caller stack arrays) are *parsing*, not data movement, and are not
///   counted; neither are in-place walks such as checksumming.
/// * [`bufs_allocated`](stats::bufs_allocated) — fresh backing-store
///   acquisitions for buffer regions: a pool *miss*, an over-sized
///   request, or a caller-allocated vector wrapped via
///   [`MutIoBuf::from_vec`]. Pool hits recycle storage and count under
///   [`pool_hits`](stats::pool_hits) instead.
///
/// Counters are per-core **representative state of the buffer-pool
/// Ebb** ([`pool::PoolEbb`]): plain `Cell`s, no synchronization on the
/// hot path, and — because events are non-preemptive — exact. Every
/// read and write resolves through the well-known
/// [`SystemEbb::BufferPool`](crate::ebb::SystemEbb) id against the
/// calling thread's dispatch context (the entered runtime, or the
/// thread's private ambient core outside one —
/// [`crate::runtime::with_context`]), so counters are per *machine*:
/// use [`stats::runtime_snapshot`] to aggregate one machine's cores,
/// and sum machines for a whole simulated world.
pub mod stats {
    use super::pool::{self, SizeClass, NUM_CLASSES};
    use crate::ebb::SystemEbb;
    use crate::runtime::Runtime;

    pub(super) fn record_copy(n: usize) {
        pool::with_pool(|p| {
            let c = &p.counters.bytes_copied;
            c.set(c.get() + n as u64);
        });
    }

    pub(super) fn record_alloc() {
        pool::with_pool(|p| {
            let c = &p.counters.bufs_allocated;
            c.set(c.get() + 1);
        });
    }

    pub(super) fn record_oversize() {
        pool::with_pool(|p| {
            let a = &p.counters.bufs_allocated;
            a.set(a.get() + 1);
            let c = &p.counters.oversize_allocs;
            c.set(c.get() + 1);
        });
    }

    /// Payload bytes copied between buffers in this dispatch context
    /// (the calling core's pool rep).
    pub fn bytes_copied() -> u64 {
        pool::with_pool(|p| p.counters.bytes_copied.get())
    }

    /// Fresh buffer-storage allocations in this dispatch context (all
    /// classes plus over-sized and caller-wrapped storage).
    pub fn bufs_allocated() -> u64 {
        pool::with_pool(|p| p.counters.bufs_allocated.get())
    }

    /// Buffer requests served by recycling pooled storage in this
    /// dispatch context, summed over all size classes.
    pub fn pool_hits() -> u64 {
        pool::with_pool(|p| p.counters.class_hits.iter().map(std::cell::Cell::get).sum())
    }

    /// Pooled regions returned to a free list on final descriptor drop
    /// in this dispatch context, summed over all size classes.
    pub fn pool_returns() -> u64 {
        pool::with_pool(|p| {
            p.counters
                .class_returns
                .iter()
                .map(std::cell::Cell::get)
                .sum()
        })
    }

    /// Per-class pool activity on this core.
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct ClassCounters {
        /// Requests served by recycling a pooled region of this class.
        pub hits: u64,
        /// Regions of this class returned to a free list on final
        /// descriptor drop.
        pub returns: u64,
        /// Requests that fit this class but found both the core's list
        /// and the depot empty, forcing a fresh (still pool-shaped,
        /// still recyclable) allocation. A steady state that is truly
        /// pool-hot drives this to zero.
        pub fallback_allocs: u64,
        /// Regions this core pulled out of the shared depot — the
        /// consumer half of cross-core migration traffic.
        pub depot_out: u64,
        /// Regions this core flushed into the shared depot past its
        /// high watermark — the producer half of migration traffic.
        pub depot_in: u64,
    }

    /// Reads one class's counters (this dispatch context).
    pub fn class_counters(class: SizeClass) -> ClassCounters {
        let i = class.index();
        pool::with_pool(|p| ClassCounters {
            hits: p.counters.class_hits[i].get(),
            returns: p.counters.class_returns[i].get(),
            fallback_allocs: p.counters.class_fallbacks[i].get(),
            depot_out: p.counters.class_depot_out[i].get(),
            depot_in: p.counters.class_depot_in[i].get(),
        })
    }

    /// Allocations too large for any size class (exact-size, unpooled).
    pub fn oversize_allocs() -> u64 {
        pool::with_pool(|p| p.counters.oversize_allocs.get())
    }

    /// A point-in-time reading of all counters, aggregate and per
    /// class.
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct Snapshot {
        /// See [`bytes_copied`].
        pub bytes_copied: u64,
        /// See [`bufs_allocated`].
        pub bufs_allocated: u64,
        /// See [`pool_hits`].
        pub pool_hits: u64,
        /// See [`pool_returns`].
        pub pool_returns: u64,
        /// See [`oversize_allocs`].
        pub oversize_allocs: u64,
        /// Per-class counters, indexed by [`SizeClass::index`].
        pub classes: [ClassCounters; NUM_CLASSES],
    }

    /// Reads all counters at once (this dispatch context).
    pub fn snapshot() -> Snapshot {
        pool::with_pool(|p| p.snapshot())
    }

    /// Sums the counters of **every core** of `rt` — the per-machine
    /// reading benchmarks take around a measured phase (a simulated
    /// world sums this over its machines via [`Snapshot::merge`]).
    ///
    /// Walks the machine's installed pool reps from the calling
    /// thread; the caller must hold the quiescence contract of
    /// [`crate::ebb::EbbManager::for_each_rep`] (trivially true on the
    /// simulation backend's single driving thread).
    pub fn runtime_snapshot(rt: &Runtime) -> Snapshot {
        let mut acc = Snapshot::default();
        rt.ebbs()
            .for_each_rep::<pool::PoolEbb>(SystemEbb::BufferPool.id(), |_core, rep| {
                acc.merge(&rep.snapshot());
            });
        acc
    }

    /// Sums [`runtime_snapshot`] over every machine of a simulated
    /// world — the reading the cross-machine zero-copy assertions
    /// take (a request path's allocations land on both ends of the
    /// wire).
    pub fn world_snapshot<'a>(rts: impl IntoIterator<Item = &'a Runtime>) -> Snapshot {
        let mut acc = Snapshot::default();
        for rt in rts {
            acc.merge(&runtime_snapshot(rt));
        }
        acc
    }

    impl ClassCounters {
        /// Counter deltas since `earlier`.
        pub fn since(&self, earlier: &ClassCounters) -> ClassCounters {
            ClassCounters {
                hits: self.hits - earlier.hits,
                returns: self.returns - earlier.returns,
                fallback_allocs: self.fallback_allocs - earlier.fallback_allocs,
                depot_out: self.depot_out - earlier.depot_out,
                depot_in: self.depot_in - earlier.depot_in,
            }
        }
    }

    impl Snapshot {
        /// Counter deltas since `earlier`.
        pub fn since(&self, earlier: &Snapshot) -> Snapshot {
            Snapshot {
                bytes_copied: self.bytes_copied - earlier.bytes_copied,
                bufs_allocated: self.bufs_allocated - earlier.bufs_allocated,
                pool_hits: self.pool_hits - earlier.pool_hits,
                pool_returns: self.pool_returns - earlier.pool_returns,
                oversize_allocs: self.oversize_allocs - earlier.oversize_allocs,
                classes: [
                    self.classes[0].since(&earlier.classes[0]),
                    self.classes[1].since(&earlier.classes[1]),
                ],
            }
        }

        /// The per-class counters for `class`.
        pub fn class(&self, class: SizeClass) -> &ClassCounters {
            &self.classes[class.index()]
        }

        /// Accumulates `other` into `self` (summing across cores or
        /// machines).
        pub fn merge(&mut self, other: &Snapshot) {
            self.bytes_copied += other.bytes_copied;
            self.bufs_allocated += other.bufs_allocated;
            self.pool_hits += other.pool_hits;
            self.pool_returns += other.pool_returns;
            self.oversize_allocs += other.oversize_allocs;
            for (mine, theirs) in self.classes.iter_mut().zip(other.classes.iter()) {
                mine.hits += theirs.hits;
                mine.returns += theirs.returns;
                mine.fallback_allocs += theirs.fallback_allocs;
                mine.depot_out += theirs.depot_out;
                mine.depot_in += theirs.depot_in;
            }
        }
    }
}

/// Per-core, multi-size-class buffer pools — **an Ebb**.
///
/// The pool is the canonical well-known system Ebb
/// ([`crate::ebb::SystemEbb::BufferPool`]): its per-core
/// *representatives* ([`pool::PoolEbb`]) are the unsynchronized free
/// lists (plain `RefCell`/`Cell` state, legal because events are
/// non-preemptive and a rep is only touched from its owning core) and
/// its *root* ([`pool::PoolRoot`]) owns the shared per-class depots
/// that batches migrate through. The design mirrors the `ebbrt-mem`
/// slab allocator (§3.4), re-homed onto `EbbRef` dispatch: every
/// allocation resolves the calling context's rep in one translation-
/// table load, and the root is lazily registered (`Default`), so the
/// pool needs no setup call.
///
/// Because the state lives in the runtime, pools are **per machine**:
/// each simulated machine (and each test that creates a `Runtime`)
/// owns an independent pool, and code outside any entered runtime gets
/// a thread-private ambient context
/// ([`crate::runtime::with_context`]) — which is why the old global
/// test-serialization mutex is gone. A pooled region remembers its
/// *home* root; a region freed under a different machine's runtime (a
/// frame handed across the simulated wire) returns to its home depot,
/// so each machine's buffer economy balances instead of leaking
/// storage to whichever machine freed last.
///
/// Pooled regions come in [`pool::NUM_CLASSES`] size classes
/// ([`pool::SizeClass`]): a [`pool::SizeClass::Small`] class sized
/// for an MTU frame plus header room, and a [`pool::SizeClass::Large`]
/// class for jumbo frames and multi-kilobyte message staging.
/// Allocation is routed by requested length ([`pool::class_for`]);
/// only requests beyond [`pool::LARGE_CAPACITY`] fall back to
/// exact-size one-shot allocations (counted by
/// [`stats::oversize_allocs`]).
///
/// Each class has its own local high watermark and migration batch
/// size: a core whose list grows past the watermark (a *consumer* of
/// buffers other cores allocate — e.g. the core a skewed connection's
/// frames are freed on) flushes a cold batch to the depot, and a core
/// whose list runs dry refills a batch from it. The per-class
/// [`stats::ClassCounters::depot_in`]/[`stats::ClassCounters::depot_out`]
/// counters make that migration traffic measurable.
///
/// Recycling is automatic: [`MutIoBuf`] and [`IoBuf`] storage acquired
/// from the pool returns to the *freeing core's* list when the last
/// descriptor referencing it drops.
pub mod pool {
    use crate::cpu::CoreId;
    use crate::ebb::{MulticoreEbb, SystemEbb};
    use crate::runtime::{self, Runtime};
    use crate::spinlock::SpinLock;
    use std::cell::{Cell, RefCell};
    use std::sync::Arc;

    /// Capacity of a [`SizeClass::Small`] region: one Ethernet MTU
    /// plus header and alignment room. Covers frames, header buffers,
    /// and typical small application payload buffers.
    pub const SMALL_CAPACITY: usize = 2048;

    /// Capacity of a [`SizeClass::Large`] region: jumbo frames and
    /// multi-kilobyte request/response staging (e.g. memcached SET
    /// values above [`SMALL_CAPACITY`]).
    pub const LARGE_CAPACITY: usize = 64 * 1024;

    /// Backward-compatible alias for the small class's capacity.
    pub const BUF_CAPACITY: usize = SMALL_CAPACITY;

    /// Number of pooled size classes.
    pub const NUM_CLASSES: usize = 2;

    /// A pooled region size class. Every class keeps per-core free
    /// lists plus a shared depot with its own watermark and batch
    /// size; [`class_for`] routes a requested capacity to the smallest
    /// class that fits it.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum SizeClass {
        /// [`SMALL_CAPACITY`]-byte regions (frames, headers).
        Small,
        /// [`LARGE_CAPACITY`]-byte regions (jumbo frames, large
        /// values).
        Large,
    }

    impl SizeClass {
        /// All classes, smallest first.
        pub const ALL: [SizeClass; NUM_CLASSES] = [SizeClass::Small, SizeClass::Large];

        /// Dense index of this class (`0..NUM_CLASSES`).
        #[inline]
        pub fn index(self) -> usize {
            match self {
                SizeClass::Small => 0,
                SizeClass::Large => 1,
            }
        }

        /// Physical capacity of every region in this class.
        #[inline]
        pub fn capacity(self) -> usize {
            match self {
                SizeClass::Small => SMALL_CAPACITY,
                SizeClass::Large => LARGE_CAPACITY,
            }
        }

        /// Free-list length that triggers a flush to the depot. Scaled
        /// down for the large class so an imbalanced core parks at
        /// most a few megabytes before sharing.
        #[inline]
        pub fn high_watermark(self) -> usize {
            match self {
                SizeClass::Small => 256,
                SizeClass::Large => 32,
            }
        }

        /// Regions moved between a core's list and the depot at once.
        #[inline]
        pub fn batch(self) -> usize {
            match self {
                SizeClass::Small => 64,
                SizeClass::Large => 8,
            }
        }

        /// Mailbox occupancy that arms the home core's **idle sweep**:
        /// once this many remote-freed regions are parked for one core,
        /// a one-shot idle callback is queued on that core so an idle
        /// machine returns them to its depot instead of pinning them
        /// until the core's next dry allocation.
        #[inline]
        pub fn sweep_low_water(self) -> usize {
            match self {
                SizeClass::Small => 8,
                SizeClass::Large => 2,
            }
        }
    }

    /// The smallest class whose regions hold `capacity` bytes, or
    /// `None` if the request exceeds every class (exact-size one-shot
    /// allocation).
    #[inline]
    pub fn class_for(capacity: usize) -> Option<SizeClass> {
        if capacity <= SMALL_CAPACITY {
            Some(SizeClass::Small)
        } else if capacity <= LARGE_CAPACITY {
            Some(SizeClass::Large)
        } else {
            None
        }
    }

    /// The per-core statistic cells of one pool rep (read through
    /// [`super::stats`]).
    #[derive(Default)]
    pub(super) struct Counters {
        pub(super) bytes_copied: Cell<u64>,
        pub(super) bufs_allocated: Cell<u64>,
        pub(super) oversize_allocs: Cell<u64>,
        pub(super) class_hits: [Cell<u64>; NUM_CLASSES],
        pub(super) class_returns: [Cell<u64>; NUM_CLASSES],
        pub(super) class_fallbacks: [Cell<u64>; NUM_CLASSES],
        pub(super) class_depot_in: [Cell<u64>; NUM_CLASSES],
        pub(super) class_depot_out: [Cell<u64>; NUM_CLASSES],
    }

    fn bump(c: &Cell<u64>) {
        c.set(c.get() + 1);
    }

    fn add(c: &Cell<u64>, n: u64) {
        c.set(c.get() + n);
    }

    /// One class's per-core state inside a rep.
    #[derive(Default)]
    struct ClassRep {
        /// The unsynchronized free list (rep-local: `RefCell` is the
        /// contract, see [`MulticoreEbb`]).
        list: RefCell<Vec<Box<[u8]>>>,
        /// Local takes since this core last balanced against the depot
        /// (flushed or refilled). Zero means the list has *only ever
        /// grown* since then — a chronically one-directional consumer
        /// of other cores' buffers — and the effective high watermark
        /// halves so the depot pipeline primes after half the parked
        /// population (flux-adaptive hysteresis).
        takes_since_balance: Cell<u64>,
    }

    /// The per-core representative of the buffer pool: the free lists
    /// of every size class plus this core's IOBuf counters. Resolved
    /// through [`SystemEbb::BufferPool`]; constructed lazily on each
    /// core's first buffer operation.
    pub struct PoolEbb {
        root: Arc<PoolRoot>,
        core: CoreId,
        classes: [ClassRep; NUM_CLASSES],
        pub(super) counters: Counters,
    }

    /// One home core's remote-free mailbox: the parked regions plus a
    /// dedup flag for the queued idle sweep.
    #[derive(Default)]
    struct Mailbox {
        regions: Vec<Box<[u8]>>,
        /// An idle sweep is already queued on the home core.
        sweep_armed: bool,
    }

    /// Free regions posted back by remote frees, one mailbox per home
    /// core (see [`PoolRoot`]).
    type Mailboxes = SpinLock<Vec<Mailbox>>;

    /// The pool Ebb's shared root: per size class, one depot (the
    /// rendezvous cross-core watermark migration goes through) plus
    /// per-home-core **remote-free mailboxes** — a region freed under
    /// a *different* machine's runtime (it crossed the simulated wire)
    /// is posted to the mailbox of the core that allocated it, which
    /// drains it on its next dry allocation. Without the mailboxes,
    /// remote frees would pile into the shared depot and the busiest
    /// core's batched refills would chronically starve the others into
    /// fresh allocations. `Default`, so the pool registers itself on
    /// first use.
    #[derive(Default)]
    pub struct PoolRoot {
        depots: [SpinLock<Vec<Box<[u8]>>>; NUM_CLASSES],
        /// `mailboxes[class][home_core]`, grown on demand.
        mailboxes: [Mailboxes; NUM_CLASSES],
        /// The runtime owning this pool, recorded by the first rep
        /// constructed inside an entered runtime. The idle mailbox
        /// sweep needs it to reach the home core's event loop; ambient
        /// pools (no event loops) leave it unset and keep the old
        /// drain-on-next-allocation behaviour.
        runtime: std::sync::OnceLock<std::sync::Weak<Runtime>>,
    }

    impl PoolRoot {
        /// Regions of `class` parked in this machine's depot.
        pub fn depot_len(&self, class: SizeClass) -> usize {
            self.depots[class.index()].lock().len()
        }

        /// Regions of `class` awaiting home-core pickup in mailboxes.
        pub fn mailbox_len(&self, class: SizeClass) -> usize {
            self.mailboxes[class.index()]
                .lock()
                .iter()
                .map(|m| m.regions.len())
                .sum()
        }
    }

    impl MulticoreEbb for PoolEbb {
        type Root = PoolRoot;

        fn create_rep(root: &Arc<PoolRoot>, core: CoreId) -> Self {
            // Record the owning runtime so remote frees can queue the
            // idle mailbox sweep on this machine's cores. Reps of one
            // root are only ever faulted under the runtime that
            // registered the root, so first-writer-wins is exact.
            if runtime::is_entered() {
                let _ = root.runtime.set(Arc::downgrade(&runtime::current()));
            }
            PoolEbb {
                root: Arc::clone(root),
                core,
                classes: Default::default(),
                counters: Counters::default(),
            }
        }
    }

    impl PoolEbb {
        /// A point-in-time reading of this rep's counters.
        pub fn snapshot(&self) -> super::stats::Snapshot {
            let class = |i: usize| super::stats::ClassCounters {
                hits: self.counters.class_hits[i].get(),
                returns: self.counters.class_returns[i].get(),
                fallback_allocs: self.counters.class_fallbacks[i].get(),
                depot_out: self.counters.class_depot_out[i].get(),
                depot_in: self.counters.class_depot_in[i].get(),
            };
            super::stats::Snapshot {
                bytes_copied: self.counters.bytes_copied.get(),
                bufs_allocated: self.counters.bufs_allocated.get(),
                pool_hits: self.counters.class_hits.iter().map(Cell::get).sum(),
                pool_returns: self.counters.class_returns.iter().map(Cell::get).sum(),
                oversize_allocs: self.counters.oversize_allocs.get(),
                classes: [class(0), class(1)],
            }
        }

        /// This core's effective flush watermark for `class` right now
        /// (halved while the list has only grown since the last
        /// balance — the hysteresis quick win).
        fn effective_watermark(&self, class: SizeClass) -> usize {
            let wm = class.high_watermark();
            if self.classes[class.index()].takes_since_balance.get() == 0 {
                wm / 2
            } else {
                wm
            }
        }
    }

    /// Dispatches `f` against the calling context's pool rep — the
    /// buffer layer's Ebb call. Inside an entered runtime this is the
    /// paper's fast path (thread-local read, indexed load, null
    /// check); outside one it resolves the thread's private ambient
    /// context.
    #[inline]
    pub(super) fn with_pool<R>(f: impl FnOnce(&PoolEbb) -> R) -> R {
        runtime::with_context(|rt, core| {
            rt.ebbs()
                .with_rep_lazy::<PoolEbb, R>(core, SystemEbb::BufferPool.id(), f)
        })
    }

    /// Acquires a region of `class`: the calling core's list, then its
    /// remote-free mailbox, then a refill batch from the depot (both
    /// counted as [`super::stats::ClassCounters::depot_out`]
    /// migration), then a fresh — still pool-shaped, still
    /// recyclable — allocation (counted as a fallback). Returns the
    /// region and its home `(root, core)`.
    pub(super) fn acquire(class: SizeClass) -> (Box<[u8]>, Arc<PoolRoot>, CoreId) {
        with_pool(|p| {
            let i = class.index();
            let cl = &p.classes[i];
            let mut list = cl.list.borrow_mut();
            if let Some(b) = list.pop() {
                bump(&cl.takes_since_balance);
                bump(&p.counters.class_hits[i]);
                return (b, Arc::clone(&p.root), p.core);
            }
            // Dry: collect everything peers posted back to this core's
            // mailbox (regions we allocated that crossed the wire and
            // were freed under another machine's runtime).
            {
                let mut boxes = p.root.mailboxes[i].lock();
                if let Some(mine) = boxes.get_mut(p.core.index()) {
                    if !mine.regions.is_empty() {
                        add(&p.counters.class_depot_out[i], mine.regions.len() as u64);
                        list.append(&mut mine.regions);
                    }
                }
            }
            if let Some(b) = list.pop() {
                cl.takes_since_balance.set(1); // drained = balanced
                bump(&p.counters.class_hits[i]);
                return (b, Arc::clone(&p.root), p.core);
            }
            let mut depot = p.root.depots[i].lock();
            if !depot.is_empty() {
                let take = depot.len().min(class.batch());
                let from = depot.len() - take;
                list.extend(depot.drain(from..));
                drop(depot);
                add(&p.counters.class_depot_out[i], take as u64);
                // A refill is a balance; the pop below is the first
                // take since it.
                cl.takes_since_balance.set(1);
                bump(&p.counters.class_hits[i]);
                return (list.pop().expect("refilled"), Arc::clone(&p.root), p.core);
            }
            drop(depot);
            bump(&p.counters.bufs_allocated);
            bump(&p.counters.class_fallbacks[i]);
            // A fallback is local demand: it counts against the
            // hysteresis like a take, so a core that allocates keeps
            // the full watermark.
            bump(&cl.takes_since_balance);
            (
                vec![0u8; class.capacity()].into_boxed_slice(),
                Arc::clone(&p.root),
                p.core,
            )
        })
    }

    /// Returns a region to the calling context, flushing a batch of
    /// cold entries to the depot past the class's effective high
    /// watermark. A region whose `home` is a *different* machine's
    /// pool (it crossed the simulated wire) is posted to its home
    /// core's mailbox instead, so each core's buffer economy balances
    /// — the hot core's headers come back to the hot core.
    pub(super) fn recycle(
        class: SizeClass,
        home: &Arc<PoolRoot>,
        home_core: CoreId,
        buf: Box<[u8]>,
    ) {
        debug_assert_eq!(buf.len(), class.capacity());
        with_pool(|p| {
            let i = class.index();
            bump(&p.counters.class_returns[i]);
            if !Arc::ptr_eq(&p.root, home) {
                // Cross-machine free: home-return through the owner's
                // mailbox (producer half of the migration pipeline).
                // Crossing the low-water mark arms a one-shot idle
                // sweep on the home core, so an *idle* home machine
                // returns the regions to its depot instead of parking
                // them until its next dry allocation.
                let arm = {
                    let mut boxes = home.mailboxes[i].lock();
                    if boxes.len() <= home_core.index() {
                        boxes.resize_with(home_core.index() + 1, Mailbox::default);
                    }
                    let mb = &mut boxes[home_core.index()];
                    mb.regions.push(buf);
                    if !mb.sweep_armed && mb.regions.len() >= class.sweep_low_water() {
                        mb.sweep_armed = true;
                        true
                    } else {
                        false
                    }
                };
                bump(&p.counters.class_depot_in[i]);
                if arm {
                    schedule_idle_sweep(home, home_core);
                }
                return;
            }
            let cl = &p.classes[i];
            let mut list = cl.list.borrow_mut();
            list.push(buf);
            if list.len() >= p.effective_watermark(class) {
                // Flush the cold end; recently freed regions stay local
                // for cache-warm reuse (same policy as the slab).
                let batch: Vec<Box<[u8]>> = list.drain(..class.batch()).collect();
                add(&p.counters.class_depot_in[i], batch.len() as u64);
                p.root.depots[i].lock().extend(batch);
                cl.takes_since_balance.set(0);
            }
        })
    }

    /// Pre-fills the calling context's [`SizeClass::Small`] free list
    /// with `n` fresh regions so a benchmark's steady state starts
    /// pool-hot. The fresh allocations are counted (they are real),
    /// which is why benchmarks snapshot counters *after* prewarming.
    pub fn prewarm(n: usize) {
        prewarm_class(SizeClass::Small, n);
    }

    /// Pre-fills the calling context's free list for `class` with `n`
    /// fresh regions (counted by [`super::stats::bufs_allocated`]).
    pub fn prewarm_class(class: SizeClass, n: usize) {
        with_pool(|p| {
            let mut list = p.classes[class.index()].list.borrow_mut();
            for _ in 0..n {
                bump(&p.counters.bufs_allocated);
                list.push(vec![0u8; class.capacity()].into_boxed_slice());
            }
        })
    }

    /// [`SizeClass::Small`] regions on the calling context's free list
    /// (diagnostic).
    pub fn local_free() -> usize {
        local_free_class(SizeClass::Small)
    }

    /// Regions of `class` on the calling context's free list
    /// (diagnostic).
    pub fn local_free_class(class: SizeClass) -> usize {
        with_pool(|p| p.classes[class.index()].list.borrow().len())
    }

    /// [`SizeClass::Small`] regions parked in this machine's depot
    /// (diagnostic).
    pub fn depot_free() -> usize {
        depot_free_class(SizeClass::Small)
    }

    /// Regions of `class` parked in this machine's depot (diagnostic).
    pub fn depot_free_class(class: SizeClass) -> usize {
        with_pool(|p| p.root.depots[class.index()].lock().len())
    }

    /// Queues the idle mailbox sweep for `home_core` of the machine
    /// owning `home`: a synthetic event on that core registers a
    /// one-shot idle callback ([`EventManager::add_idle_once`]) so the
    /// drain runs after any real work, at the idle stage of the home
    /// core's event loop. No-op for pools without a recorded runtime
    /// (the ambient pool), whose mailboxes keep draining on the next
    /// dry allocation.
    ///
    /// [`EventManager::add_idle_once`]: crate::event::EventManager::add_idle_once
    fn schedule_idle_sweep(home: &Arc<PoolRoot>, home_core: CoreId) {
        let Some(rt) = home.runtime.get().and_then(std::sync::Weak::upgrade) else {
            return;
        };
        let root = Arc::clone(home);
        rt.spawn(home_core, move || {
            runtime::with_current(|rt| {
                let root2 = Arc::clone(&root);
                rt.local_event_manager()
                    .add_idle_once(move || sweep_mailboxes_to_depot(&root2, home_core));
            });
        });
    }

    /// Drains `core`'s remote-free mailboxes (every class): the home
    /// core's free list is topped up to one refill batch (cache-warm
    /// for its next burst — a sweep must never leave the owner worse
    /// off than the lazy drain it replaces), and the excess goes to
    /// the machine-wide depot, counted as depot migration on the
    /// sweeping core's rep. Runs on `core`, at event-loop idle.
    fn sweep_mailboxes_to_depot(root: &Arc<PoolRoot>, core: CoreId) {
        for class in SizeClass::ALL {
            let i = class.index();
            let mut drained: Vec<Box<[u8]>> = {
                let mut boxes = root.mailboxes[i].lock();
                match boxes.get_mut(core.index()) {
                    Some(mb) => {
                        mb.sweep_armed = false;
                        std::mem::take(&mut mb.regions)
                    }
                    None => continue,
                }
            };
            if drained.is_empty() {
                continue;
            }
            with_pool(|p| {
                let mut list = p.classes[i].list.borrow_mut();
                let keep = class.batch().saturating_sub(list.len()).min(drained.len());
                let to_depot = drained.split_off(keep);
                list.extend(drained.drain(..));
                if !to_depot.is_empty() {
                    add(&p.counters.class_depot_in[i], to_depot.len() as u64);
                    p.root.depots[i].lock().extend(to_depot);
                }
            });
        }
    }

    /// Free regions of `class` across all of `rt`'s cores plus its
    /// depot: `(local_total, depot)`. Same quiescence contract as
    /// [`super::stats::runtime_snapshot`].
    pub fn runtime_free_counts(rt: &Runtime, class: SizeClass) -> (usize, usize) {
        let mut local = 0;
        let mut depot = 0;
        let mut seen_root = false;
        rt.ebbs()
            .for_each_rep::<PoolEbb>(SystemEbb::BufferPool.id(), |_core, rep| {
                local += rep.classes[class.index()].list.borrow().len();
                if !seen_root {
                    seen_root = true;
                    depot = rep.root.depot_len(class);
                }
            });
        (local, depot)
    }
}

/// Typed serialization helpers for function-shipped request/response
/// payloads: a growable big-endian writer and a cursor-backed reader,
/// shared by every service on the wire so framing mistakes are
/// structural, not per-call-site.
pub mod wire {
    use super::{Buf, Chain, Cursor};

    /// Builds one request/response payload.
    #[derive(Default)]
    pub struct WireWriter {
        buf: Vec<u8>,
    }

    impl WireWriter {
        /// An empty payload.
        pub fn new() -> Self {
            Self::default()
        }

        /// A payload beginning with an operation byte.
        pub fn op(op: u8) -> Self {
            let mut w = Self::new();
            w.u8(op);
            w
        }

        /// Appends a byte.
        pub fn u8(&mut self, v: u8) -> &mut Self {
            self.buf.push(v);
            self
        }

        /// Appends a big-endian u16.
        pub fn u16(&mut self, v: u16) -> &mut Self {
            self.buf.extend_from_slice(&v.to_be_bytes());
            self
        }

        /// Appends a big-endian u32.
        pub fn u32(&mut self, v: u32) -> &mut Self {
            self.buf.extend_from_slice(&v.to_be_bytes());
            self
        }

        /// Appends a big-endian u64.
        pub fn u64(&mut self, v: u64) -> &mut Self {
            self.buf.extend_from_slice(&v.to_be_bytes());
            self
        }

        /// Appends a u16-length-prefixed byte string (keys, paths).
        pub fn bytes16(&mut self, v: &[u8]) -> &mut Self {
            debug_assert!(v.len() <= u16::MAX as usize);
            self.u16(v.len() as u16);
            self.buf.extend_from_slice(v);
            self
        }

        /// Appends a u32-length-prefixed byte string (values, snapshot
        /// entries — anything that may outgrow a u16 frame).
        pub fn bytes32(&mut self, v: &[u8]) -> &mut Self {
            debug_assert!(v.len() <= u32::MAX as usize);
            self.u32(v.len() as u32);
            self.buf.extend_from_slice(v);
            self
        }

        /// Appends raw trailing bytes (the unframed tail of a payload).
        pub fn tail(&mut self, v: &[u8]) -> &mut Self {
            self.buf.extend_from_slice(v);
            self
        }

        /// The finished payload.
        pub fn finish(self) -> Vec<u8> {
            self.buf
        }
    }

    /// Reads one request/response payload from a received chain.
    pub struct WireReader<'a, B: Buf> {
        cur: Cursor<'a, B>,
        remaining: usize,
    }

    impl<'a, B: Buf> WireReader<'a, B> {
        /// Starts reading at the front of `chain`.
        pub fn new(chain: &'a Chain<B>) -> Self {
            WireReader {
                cur: chain.cursor(),
                remaining: chain.len(),
            }
        }

        /// Unread bytes.
        pub fn remaining(&self) -> usize {
            self.remaining
        }

        /// Reads a byte.
        pub fn u8(&mut self) -> Option<u8> {
            let v = self.cur.read_u8()?;
            self.remaining -= 1;
            Some(v)
        }

        /// Reads a big-endian u16.
        pub fn u16(&mut self) -> Option<u16> {
            let v = self.cur.read_u16_be()?;
            self.remaining -= 2;
            Some(v)
        }

        /// Reads a big-endian u32.
        pub fn u32(&mut self) -> Option<u32> {
            let v = self.cur.read_u32_be()?;
            self.remaining -= 4;
            Some(v)
        }

        /// Reads a big-endian u64.
        pub fn u64(&mut self) -> Option<u64> {
            let v = self.cur.read_u64_be()?;
            self.remaining -= 8;
            Some(v)
        }

        /// Reads a u16-length-prefixed byte string.
        pub fn bytes16(&mut self) -> Option<Vec<u8>> {
            let n = self.u16()? as usize;
            if n > self.remaining {
                return None;
            }
            let v = self.cur.read_vec(n)?;
            self.remaining -= n;
            Some(v)
        }

        /// Reads a u32-length-prefixed byte string.
        pub fn bytes32(&mut self) -> Option<Vec<u8>> {
            let n = self.u32()? as usize;
            if n > self.remaining {
                return None;
            }
            let v = self.cur.read_vec(n)?;
            self.remaining -= n;
            Some(v)
        }

        /// Reads every remaining byte (the unframed tail).
        pub fn tail(&mut self) -> Vec<u8> {
            let v = self.cur.read_vec(self.remaining).unwrap_or_default();
            self.remaining = 0;
            v
        }
    }

    #[cfg(test)]
    #[test]
    fn writer_reader_roundtrip() {
        let mut w = WireWriter::op(7);
        w.u16(0xBEEF)
            .u32(42)
            .u64(1 << 40)
            .bytes16(b"key")
            .bytes32(b"a-value-wider-than-a-key")
            .tail(b"value");
        let chain = Chain::single(crate::iobuf::IoBuf::copy_from(&w.finish()));
        let mut r = WireReader::new(&chain);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u16(), Some(0xBEEF));
        assert_eq!(r.u32(), Some(42));
        assert_eq!(r.u64(), Some(1 << 40));
        assert_eq!(r.bytes16().as_deref(), Some(b"key".as_slice()));
        assert_eq!(
            r.bytes32().as_deref(),
            Some(b"a-value-wider-than-a-key".as_slice())
        );
        assert_eq!(r.tail(), b"value");
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.u8(), None, "reads past the end fail, not wrap");
    }
}

/// The backing store of a buffer: an owned byte region plus, for
/// pooled storage, its size class and *home* pool root — the machine
/// whose pool it recycles into when the last descriptor drops.
struct Region {
    /// `Some` until drop; taken by the pool on recycle.
    data: Option<Box<[u8]>>,
    pooled: Option<(pool::SizeClass, Arc<pool::PoolRoot>, crate::cpu::CoreId)>,
}

impl Region {
    /// Allocates (or recycles) storage of at least `capacity` bytes.
    /// Requests are routed by length to the smallest size class that
    /// fits ([`pool::class_for`]) and served through the buffer-pool
    /// Ebb's per-core reps; anything beyond the largest class gets an
    /// exact-size one-shot allocation.
    fn alloc(capacity: usize) -> Region {
        match pool::class_for(capacity) {
            Some(class) => {
                let (data, home, home_core) = pool::acquire(class);
                Region {
                    data: Some(data),
                    pooled: Some((class, home, home_core)),
                }
            }
            None => {
                stats::record_oversize();
                Region {
                    data: Some(vec![0u8; capacity].into_boxed_slice()),
                    pooled: None,
                }
            }
        }
    }

    /// Wraps storage the caller already owns (never recycled).
    fn from_box(data: Box<[u8]>) -> Region {
        Region {
            data: Some(data),
            pooled: None,
        }
    }

    fn size_class(&self) -> Option<pool::SizeClass> {
        self.pooled.as_ref().map(|(class, ..)| *class)
    }

    fn bytes(&self) -> &[u8] {
        self.data.as_deref().expect("region storage taken")
    }

    fn bytes_mut(&mut self) -> &mut [u8] {
        self.data.as_deref_mut().expect("region storage taken")
    }
}

impl Drop for Region {
    fn drop(&mut self) {
        if let Some((class, home, home_core)) = self.pooled.take() {
            if let Some(data) = self.data.take() {
                pool::recycle(class, &home, home_core, data);
            }
        }
    }
}

/// Read access to a buffer segment's visible bytes.
pub trait Buf {
    /// The bytes currently inside the view window.
    fn bytes(&self) -> &[u8];

    /// Length of the view window.
    fn len(&self) -> usize {
        self.bytes().len()
    }

    /// Whether the view window is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A uniquely-owned, writable buffer segment with headroom and tailroom.
///
/// Layout: `[ headroom | view window | tailroom ]` over one region.
/// `prepend`/`append` grow the window into head/tailroom; `advance`/
/// `trim_end` shrink it.
///
/// Storage comes from the per-core [`pool`] whenever the requested
/// capacity fits a pooled region; the logical capacity the caller asked
/// for is still enforced exactly (a pool-backed buffer does not grant
/// bonus tailroom), so window arithmetic behaves identically either
/// way. Pooled storage is recycled, not zeroed: bytes exposed by
/// [`MutIoBuf::append`] are unspecified until the caller writes them.
pub struct MutIoBuf {
    region: Region,
    /// Offset of the view window within the region.
    off: usize,
    /// Length of the view window.
    len: usize,
    /// Logical capacity (≤ physical region size).
    cap: usize,
}

impl MutIoBuf {
    /// Default headroom reserved by [`MutIoBuf::for_payload`]: enough for
    /// Ethernet (14) + IPv4 (20) + TCP (up to 60) headers, rounded up.
    pub const DEFAULT_HEADROOM: usize = 128;

    /// Creates a buffer of `capacity` bytes with an empty view at offset 0
    /// (all capacity is tailroom).
    pub fn with_capacity(capacity: usize) -> Self {
        MutIoBuf {
            region: Region::alloc(capacity),
            off: 0,
            len: 0,
            cap: capacity,
        }
    }

    /// Creates a buffer whose view starts after `headroom` bytes and is
    /// initially empty; total capacity is `headroom + payload_capacity`.
    pub fn with_headroom(payload_capacity: usize, headroom: usize) -> Self {
        MutIoBuf {
            region: Region::alloc(headroom + payload_capacity),
            off: headroom,
            len: 0,
            cap: headroom + payload_capacity,
        }
    }

    /// Creates a buffer holding a copy of `payload`, with
    /// [`Self::DEFAULT_HEADROOM`] bytes of headroom for protocol headers.
    pub fn for_payload(payload: &[u8]) -> Self {
        let mut b = Self::with_headroom(payload.len(), Self::DEFAULT_HEADROOM);
        b.append_slice(payload);
        b
    }

    /// Wraps an owned vector; the view covers the whole vector. The
    /// storage never recycles (it is exact-size, not pool-shaped), and
    /// the caller's allocation is counted by
    /// [`stats::bufs_allocated`] — wrapping a fresh `Vec` per request
    /// is exactly the behaviour the zero-alloc property must expose.
    pub fn from_vec(v: Vec<u8>) -> Self {
        stats::record_alloc();
        let len = v.len();
        MutIoBuf {
            region: Region::from_box(v.into_boxed_slice()),
            off: 0,
            len,
            cap: len,
        }
    }

    /// Bytes available in front of the view window.
    pub fn headroom(&self) -> usize {
        self.off
    }

    /// Bytes available behind the view window.
    pub fn tailroom(&self) -> usize {
        self.cap - self.off - self.len
    }

    /// Logical capacity of the buffer.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Whether the backing region came from (and will return to) the
    /// per-core pool.
    pub fn is_pooled(&self) -> bool {
        self.region.pooled.is_some()
    }

    /// The size class serving this buffer's backing region, if pooled.
    pub fn size_class(&self) -> Option<pool::SizeClass> {
        self.region.size_class()
    }

    /// Mutable access to the view window.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        let (off, len) = (self.off, self.len);
        &mut self.region.bytes_mut()[off..off + len]
    }

    /// Extends the window forward (into headroom) by `n` bytes and
    /// returns the newly exposed prefix for the caller to fill — this is
    /// how protocol layers add headers without copying the payload.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the available headroom.
    pub fn prepend(&mut self, n: usize) -> &mut [u8] {
        assert!(n <= self.off, "prepend({n}) exceeds headroom {}", self.off);
        self.off -= n;
        self.len += n;
        let off = self.off;
        &mut self.region.bytes_mut()[off..off + n]
    }

    /// Extends the window backward (into tailroom) by `n` bytes and
    /// returns the newly exposed suffix. With pooled storage the
    /// exposed bytes are whatever the previous user left there — the
    /// caller must fill them.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the available tailroom.
    pub fn append(&mut self, n: usize) -> &mut [u8] {
        assert!(
            n <= self.tailroom(),
            "append({n}) exceeds tailroom {}",
            self.tailroom()
        );
        let start = self.off + self.len;
        self.len += n;
        &mut self.region.bytes_mut()[start..start + n]
    }

    /// Appends a copy of `src` into tailroom (counted by
    /// [`stats::bytes_copied`]).
    pub fn append_slice(&mut self, src: &[u8]) {
        stats::record_copy(src.len());
        self.append(src.len()).copy_from_slice(src);
    }

    /// Shrinks the window from the front by `n` bytes (consumed bytes
    /// become headroom) — used to strip parsed headers.
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.len, "advance({n}) exceeds length {}", self.len);
        self.off += n;
        self.len -= n;
    }

    /// Shrinks the window from the back by `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn trim_end(&mut self, n: usize) {
        assert!(n <= self.len, "trim_end({n}) exceeds length {}", self.len);
        self.len -= n;
    }

    /// Freezes into a shareable, immutable [`IoBuf`] without copying.
    /// A pooled region stays pooled: it recycles when the last frozen
    /// descriptor drops.
    pub fn freeze(self) -> IoBuf {
        IoBuf {
            region: Arc::new(self.region),
            off: self.off,
            len: self.len,
        }
    }
}

impl Buf for MutIoBuf {
    fn bytes(&self) -> &[u8] {
        &self.region.bytes()[self.off..self.off + self.len]
    }
}

impl fmt::Debug for MutIoBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MutIoBuf")
            .field("headroom", &self.headroom())
            .field("len", &self.len)
            .field("tailroom", &self.tailroom())
            .field("pooled", &self.region.size_class())
            .finish()
    }
}

/// An immutable, reference-counted buffer segment.
///
/// Clones share the underlying region; each clone has an independent
/// view window, so slicing is free. When the last descriptor of a
/// pool-backed region drops, the storage returns to the per-core
/// [`pool`].
#[derive(Clone)]
pub struct IoBuf {
    region: Arc<Region>,
    off: usize,
    len: usize,
}

impl IoBuf {
    /// Creates a buffer holding a copy of `data` (counted by
    /// [`stats::bytes_copied`]; the storage allocation is exact-size
    /// and unpooled).
    pub fn copy_from(data: &[u8]) -> Self {
        stats::record_copy(data.len());
        MutIoBuf::from_vec(data.to_vec()).freeze()
    }

    /// An empty buffer.
    pub fn empty() -> Self {
        IoBuf {
            region: Arc::new(Region::from_box(Vec::new().into_boxed_slice())),
            off: 0,
            len: 0,
        }
    }

    /// Returns a new descriptor viewing `len` bytes from `start` of
    /// this view, sharing the same region (no copy).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the current view.
    pub fn slice(&self, start: usize, len: usize) -> IoBuf {
        assert!(
            start + len <= self.len,
            "slice({start}, {len}) exceeds view length {}",
            self.len
        );
        IoBuf {
            region: Arc::clone(&self.region),
            off: self.off + start,
            len,
        }
    }

    /// Range-style form of [`Self::slice`]: a descriptor viewing
    /// `range` of this view, sharing the same region.
    pub fn slice_range(&self, range: Range<usize>) -> IoBuf {
        assert!(range.start <= range.end, "inverted slice range");
        self.slice(range.start, range.end - range.start)
    }

    /// Shrinks the view from the front by `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.len, "advance({n}) exceeds length {}", self.len);
        self.off += n;
        self.len -= n;
    }

    /// Shrinks the view from the back by `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn trim_end(&mut self, n: usize) {
        assert!(n <= self.len, "trim_end({n}) exceeds length {}", self.len);
        self.len -= n;
    }

    /// Number of descriptors sharing this region (diagnostic; used by
    /// tests to assert zero-copy behaviour).
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.region)
    }

    /// Physical size of the backing region. A live descriptor pins the
    /// whole region, so long-lived holders (e.g. a key-value store)
    /// compare this against [`len`](Buf::len) to decide when keeping a
    /// small sub-view zero-copy would pin a disproportionate amount of
    /// memory.
    pub fn region_len(&self) -> usize {
        self.region.bytes().len()
    }

    /// Identity of the backing region (for pinned-storage accounting:
    /// two descriptors with the same id pin the same storage once).
    fn region_id(&self) -> usize {
        Arc::as_ptr(&self.region) as usize
    }
}

impl Buf for IoBuf {
    fn bytes(&self) -> &[u8] {
        &self.region.bytes()[self.off..self.off + self.len]
    }
}

impl fmt::Debug for IoBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IoBuf")
            .field("off", &self.off)
            .field("len", &self.len)
            .field("refs", &self.ref_count())
            .finish()
    }
}

impl From<MutIoBuf> for IoBuf {
    fn from(b: MutIoBuf) -> Self {
        b.freeze()
    }
}

/// Segments held inline by a [`Chain`] before it spills to heap
/// storage. Sized for the stack's common shapes: a header + payload
/// response is 2 segments, an MTU-spanning request rarely exceeds 4.
pub const INLINE_SEGS: usize = 4;

/// Distinct backing regions [`Chain::pinned_bytes`] deduplicates
/// exactly before degrading to an upper bound.
pub const PINNED_DEDUP_REGIONS: usize = 32;

/// A chain of buffer segments presented as one logical byte sequence —
/// the scatter/gather unit accepted by the network stack's send path and
/// produced by its receive path.
///
/// The first [`INLINE_SEGS`] segments are stored inline in the chain
/// itself; only longer chains touch the heap, and the spill buffer's
/// capacity is retained when the chain drains back under the inline
/// limit (e.g. across [`Chain::split_to`] calls), so steady-state
/// descriptor movement performs no allocations — the hot-path cost the
/// IOBuf byte/alloc counters do *not* see.
pub struct Chain<B: Buf> {
    /// Inline storage: slots `0..ilen` are occupied iff `spill` is
    /// empty. When spilled, every segment lives in `spill` (in order)
    /// and `ilen == 0`.
    inline: [Option<B>; INLINE_SEGS],
    ilen: u8,
    spill: std::collections::VecDeque<B>,
    total: usize,
}

impl<B: Buf + Clone> Clone for Chain<B> {
    /// Clones the descriptor chain; for [`IoBuf`] segments this shares
    /// the underlying storage (no bytes are copied).
    fn clone(&self) -> Self {
        Chain {
            inline: self.inline.clone(),
            ilen: self.ilen,
            spill: self.spill.clone(),
            total: self.total,
        }
    }
}

impl<B: Buf> Default for Chain<B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<B: Buf> Chain<B> {
    /// An empty chain.
    pub fn new() -> Self {
        Chain {
            inline: [None, None, None, None],
            ilen: 0,
            spill: std::collections::VecDeque::new(),
            total: 0,
        }
    }

    /// A chain with a single segment.
    pub fn single(seg: B) -> Self {
        let mut c = Chain::new();
        c.push_back(seg);
        c
    }

    fn spilled(&self) -> bool {
        !self.spill.is_empty()
    }

    /// Moves the inline segments into the spill buffer (which keeps
    /// whatever capacity it grew on previous spills).
    fn spill_inline(&mut self) {
        debug_assert!(self.spill.is_empty());
        for slot in self.inline.iter_mut().take(self.ilen as usize) {
            self.spill
                .push_back(slot.take().expect("inline slot vacant"));
        }
        self.ilen = 0;
    }

    /// Appends a segment to the back.
    pub fn push_back(&mut self, seg: B) {
        self.total += seg.len();
        if self.spilled() {
            self.spill.push_back(seg);
        } else if (self.ilen as usize) < INLINE_SEGS {
            self.inline[self.ilen as usize] = Some(seg);
            self.ilen += 1;
        } else {
            self.spill_inline();
            self.spill.push_back(seg);
        }
    }

    /// Prepends a segment to the front.
    pub fn push_front(&mut self, seg: B) {
        self.total += seg.len();
        if self.spilled() {
            self.spill.push_front(seg);
        } else if (self.ilen as usize) < INLINE_SEGS {
            for i in (0..self.ilen as usize).rev() {
                self.inline[i + 1] = self.inline[i].take();
            }
            self.inline[0] = Some(seg);
            self.ilen += 1;
        } else {
            self.spill_inline();
            self.spill.push_front(seg);
        }
    }

    /// Removes and returns the first segment, if any.
    fn pop_front_seg(&mut self) -> Option<B> {
        let seg = if self.spilled() {
            self.spill.pop_front()
        } else if self.ilen > 0 {
            let seg = self.inline[0].take();
            for i in 1..self.ilen as usize {
                self.inline[i - 1] = self.inline[i].take();
            }
            self.ilen -= 1;
            seg
        } else {
            None
        };
        if let Some(s) = &seg {
            self.total -= s.len();
        }
        seg
    }

    /// Appends all segments of `other`.
    pub fn append_chain(&mut self, other: Chain<B>) {
        for seg in other {
            self.push_back(seg);
        }
    }

    /// Total logical length across all segments.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the chain holds zero bytes.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        if self.spilled() {
            self.spill.len()
        } else {
            self.ilen as usize
        }
    }

    /// The `i`-th segment.
    ///
    /// # Panics
    ///
    /// Panics if `i >= segment_count()`.
    pub fn seg(&self, i: usize) -> &B {
        if self.spilled() {
            &self.spill[i]
        } else {
            assert!(i < self.ilen as usize, "segment index {i} out of range");
            self.inline[i].as_ref().expect("inline slot vacant")
        }
    }

    fn seg_mut(&mut self, i: usize) -> &mut B {
        if self.spilled() {
            &mut self.spill[i]
        } else {
            assert!(i < self.ilen as usize, "segment index {i} out of range");
            self.inline[i].as_mut().expect("inline slot vacant")
        }
    }

    /// Iterates the segments in order.
    pub fn iter(&self) -> SegIter<'_, B> {
        SegIter { chain: self, i: 0 }
    }

    /// Copies the entire logical contents into one `Vec` (explicitly *not*
    /// zero-copy — counted by [`stats::bytes_copied`]; used at
    /// simulation edges and in tests).
    pub fn copy_to_vec(&self) -> Vec<u8> {
        stats::record_copy(self.total);
        let mut out = Vec::with_capacity(self.total);
        for s in self.iter() {
            out.extend_from_slice(s.bytes());
        }
        out
    }

    /// A parsing cursor positioned at the logical start.
    pub fn cursor(&self) -> Cursor<'_, B> {
        Cursor {
            chain: self,
            seg: 0,
            off: 0,
            consumed: 0,
        }
    }
}

/// Borrowed iteration over a chain's segments.
pub struct SegIter<'a, B: Buf> {
    chain: &'a Chain<B>,
    i: usize,
}

impl<'a, B: Buf> Iterator for SegIter<'a, B> {
    type Item = &'a B;

    fn next(&mut self) -> Option<&'a B> {
        if self.i < self.chain.segment_count() {
            self.i += 1;
            Some(self.chain.seg(self.i - 1))
        } else {
            None
        }
    }
}

impl<'a, B: Buf> IntoIterator for &'a Chain<B> {
    type Item = &'a B;
    type IntoIter = SegIter<'a, B>;

    fn into_iter(self) -> SegIter<'a, B> {
        self.iter()
    }
}

/// Owning iteration: consumes the chain front to back.
pub struct ChainIntoIter<B: Buf> {
    chain: Chain<B>,
}

impl<B: Buf> Iterator for ChainIntoIter<B> {
    type Item = B;

    fn next(&mut self) -> Option<B> {
        self.chain.pop_front_seg()
    }
}

impl<B: Buf> IntoIterator for Chain<B> {
    type Item = B;
    type IntoIter = ChainIntoIter<B>;

    fn into_iter(self) -> ChainIntoIter<B> {
        ChainIntoIter { chain: self }
    }
}

impl Chain<IoBuf> {
    /// Drops `n` bytes from the logical front, discarding exhausted
    /// segments and advancing into partial ones (no data copied).
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn advance(&mut self, mut n: usize) {
        assert!(n <= self.total, "advance({n}) exceeds chain length");
        while n > 0 {
            let first_len = self.seg(0).len();
            if n >= first_len {
                self.pop_front_seg();
                n -= first_len;
            } else {
                self.seg_mut(0).advance(n);
                self.total -= n;
                n = 0;
            }
        }
    }

    /// Physical bytes pinned by the segments' backing regions.
    /// Long-lived chains compare this against [`len`](Chain::len) to
    /// decide when small sub-views are pinning a disproportionate
    /// amount of buffer memory.
    ///
    /// Regions shared by several segments are counted once — a large
    /// message segmented to MSS produces many views of one staging
    /// region, which pins that region's bytes once, not per segment.
    /// Deduplication uses a fixed-size scratch table; chains with more
    /// than [`PINNED_DEDUP_REGIONS`] *distinct* regions degrade to an
    /// upper bound (over-counting further shared regions), which errs
    /// toward compaction — the safe direction for the
    /// anti-amplification gates built on this number.
    pub fn pinned_bytes(&self) -> usize {
        let mut seen = [0usize; PINNED_DEDUP_REGIONS];
        let mut nseen = 0;
        let mut total = 0;
        'segs: for seg in self.iter() {
            let id = seg.region_id();
            for &s in &seen[..nseen] {
                if s == id {
                    continue 'segs;
                }
            }
            if nseen < PINNED_DEDUP_REGIONS {
                seen[nseen] = id;
                nseen += 1;
            }
            total += seg.region_len();
        }
        total
    }

    /// Replaces the chain's contents with one exact-size segment,
    /// releasing every pinned region (a counted copy plus one counted
    /// allocation). Used to bound memory amplification when a backlog
    /// accumulates many small views of large (possibly pooled)
    /// regions — e.g. a peer trickling a request one byte per packet.
    pub fn compact(&mut self) {
        if self.segment_count() == 1 && self.seg(0).region_len() == self.total {
            return; // already exact
        }
        let data = self.copy_to_vec();
        while self.pop_front_seg().is_some() {}
        if !data.is_empty() {
            self.push_back(MutIoBuf::from_vec(data).freeze());
        }
    }

    /// [`compact`](Chain::compact)s the chain when it holds at least
    /// `max_segs` segments *and* pins more than `factor`× its logical
    /// bytes — the anti-amplification gate long-lived backlogs apply
    /// after appending received data (a peer trickling a request a few
    /// bytes per packet must not pin a receive region per packet).
    /// Returns whether compaction ran.
    pub fn compact_if_amplified(&mut self, max_segs: usize, factor: usize) -> bool {
        if self.segment_count() >= max_segs && self.pinned_bytes() > self.total * factor {
            self.compact();
            true
        } else {
            false
        }
    }

    /// Splits off the first `n` logical bytes into a new chain, sharing
    /// storage with this one (segments are sliced, not copied). The
    /// source chain's spill capacity, if any, is retained for reuse.
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn split_to(&mut self, n: usize) -> Chain<IoBuf> {
        assert!(n <= self.total, "split_to({n}) exceeds chain length");
        let mut out = Chain::new();
        let mut remaining = n;
        while remaining > 0 {
            let first_len = self.seg(0).len();
            if remaining >= first_len {
                let seg = self.pop_front_seg().expect("counted segment");
                remaining -= first_len;
                out.push_back(seg);
            } else {
                let head = self.seg(0).slice(0, remaining);
                self.seg_mut(0).advance(remaining);
                self.total -= remaining;
                out.push_back(head);
                remaining = 0;
            }
        }
        out
    }
}

/// Converts a chain of mutable segments into a shareable immutable chain.
impl From<Chain<MutIoBuf>> for Chain<IoBuf> {
    fn from(chain: Chain<MutIoBuf>) -> Self {
        let mut out = Chain::new();
        for seg in chain {
            out.push_back(seg.freeze());
        }
        out
    }
}

/// A read cursor over a [`Chain`], crossing segment boundaries
/// transparently — the analogue of EbbRT's `DataPointer`.
pub struct Cursor<'a, B: Buf> {
    chain: &'a Chain<B>,
    seg: usize,
    off: usize,
    consumed: usize,
}

impl<'a, B: Buf> Cursor<'a, B> {
    /// Bytes remaining after the cursor.
    pub fn remaining(&self) -> usize {
        self.chain.len() - self.consumed
    }

    /// Bytes consumed so far.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Reads one byte.
    pub fn read_u8(&mut self) -> Option<u8> {
        let mut b = [0u8; 1];
        self.read_exact(&mut b)?;
        Some(b[0])
    }

    /// Reads a big-endian u16 (network order).
    pub fn read_u16_be(&mut self) -> Option<u16> {
        let mut b = [0u8; 2];
        self.read_exact(&mut b)?;
        Some(u16::from_be_bytes(b))
    }

    /// Reads a big-endian u32 (network order).
    pub fn read_u32_be(&mut self) -> Option<u32> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b)?;
        Some(u32::from_be_bytes(b))
    }

    /// Reads a big-endian u64 (network order).
    pub fn read_u64_be(&mut self) -> Option<u64> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b)?;
        Some(u64::from_be_bytes(b))
    }

    /// Fills `dst` from the cursor position, crossing segments as needed.
    /// Returns `None` (consuming nothing) if fewer than `dst.len()` bytes
    /// remain.
    pub fn read_exact(&mut self, dst: &mut [u8]) -> Option<()> {
        if self.remaining() < dst.len() {
            return None;
        }
        let mut written = 0;
        while written < dst.len() {
            let seg = self.chain.seg(self.seg);
            let avail = &seg.bytes()[self.off..];
            let take = avail.len().min(dst.len() - written);
            dst[written..written + take].copy_from_slice(&avail[..take]);
            written += take;
            self.off += take;
            self.consumed += take;
            if self.off == seg.len() && self.seg + 1 < self.chain.segment_count() {
                self.seg += 1;
                self.off = 0;
            }
        }
        Some(())
    }

    /// Skips `n` bytes.
    ///
    /// Returns `None` (consuming nothing) if fewer than `n` bytes remain.
    pub fn skip(&mut self, n: usize) -> Option<()> {
        if self.remaining() < n {
            return None;
        }
        let mut left = n;
        while left > 0 {
            let seg_len = self.chain.seg(self.seg).len();
            let avail = seg_len - self.off;
            let take = avail.min(left);
            self.off += take;
            self.consumed += take;
            left -= take;
            if self.off == seg_len && self.seg + 1 < self.chain.segment_count() {
                self.seg += 1;
                self.off = 0;
            }
        }
        Some(())
    }

    /// Reads `n` bytes into a fresh vector (counted by
    /// [`stats::bytes_copied`] — prefer
    /// [`Cursor::read_exact_zero_copy`] on hot paths).
    pub fn read_vec(&mut self, n: usize) -> Option<Vec<u8>> {
        let mut v = vec![0u8; n];
        self.read_exact(&mut v)?;
        stats::record_copy(n);
        Some(v)
    }
}

impl<'a> Cursor<'a, IoBuf> {
    /// Carves the next `n` bytes out as a chain of sub-views sharing
    /// the underlying regions — the zero-copy way for a protocol parser
    /// to take a request body straight out of driver buffers. Returns
    /// `None` (consuming nothing) if fewer than `n` bytes remain.
    pub fn read_exact_zero_copy(&mut self, n: usize) -> Option<Chain<IoBuf>> {
        if self.remaining() < n {
            return None;
        }
        let mut out = Chain::new();
        let mut left = n;
        while left > 0 {
            let seg = self.chain.seg(self.seg);
            let avail = seg.len() - self.off;
            let take = avail.min(left);
            if take > 0 {
                out.push_back(seg.slice(self.off, take));
            }
            self.off += take;
            self.consumed += take;
            left -= take;
            if self.off == seg.len() && self.seg + 1 < self.chain.segment_count() {
                self.seg += 1;
                self.off = 0;
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mut_iobuf_headroom_prepend() {
        let mut b = MutIoBuf::with_headroom(100, 64);
        assert_eq!(b.headroom(), 64);
        assert_eq!(b.len(), 0);
        b.append_slice(b"payload");
        assert_eq!(b.bytes(), b"payload");
        b.prepend(4).copy_from_slice(b"HDR:");
        assert_eq!(b.bytes(), b"HDR:payload");
        assert_eq!(b.headroom(), 60);
    }

    #[test]
    #[should_panic(expected = "exceeds headroom")]
    fn prepend_past_headroom_panics() {
        let mut b = MutIoBuf::with_headroom(10, 2);
        b.prepend(3);
    }

    #[test]
    fn advance_and_trim() {
        let mut b = MutIoBuf::from_vec(b"ethipv4payload".to_vec());
        b.advance(3);
        assert_eq!(b.bytes(), b"ipv4payload");
        b.advance(4);
        assert_eq!(b.bytes(), b"payload");
        b.trim_end(3);
        assert_eq!(b.bytes(), b"payl");
        // Consumed header space became headroom again.
        assert_eq!(b.headroom(), 7);
    }

    #[test]
    fn freeze_shares_storage() {
        let b = MutIoBuf::from_vec(vec![1, 2, 3, 4]).freeze();
        let c = b.clone();
        assert_eq!(b.ref_count(), 2);
        let s = c.slice(1, 2);
        assert_eq!(s.bytes(), &[2, 3]);
        assert_eq!(b.ref_count(), 3);
        assert_eq!(b.bytes(), &[1, 2, 3, 4]);
    }

    #[test]
    fn slice_range_matches_slice() {
        let b = IoBuf::copy_from(b"0123456789");
        assert_eq!(b.slice_range(2..6).bytes(), b.slice(2, 4).bytes());
        assert_eq!(b.slice_range(0..0).len(), 0);
    }

    #[test]
    fn chain_accounting() {
        let mut chain: Chain<IoBuf> = Chain::new();
        assert!(chain.is_empty());
        chain.push_back(IoBuf::copy_from(b"hello "));
        chain.push_back(IoBuf::copy_from(b"world"));
        chain.push_front(IoBuf::copy_from(b">> "));
        assert_eq!(chain.len(), 14);
        assert_eq!(chain.segment_count(), 3);
        assert_eq!(chain.copy_to_vec(), b">> hello world");
    }

    #[test]
    fn chain_advance_across_segments() {
        let mut chain: Chain<IoBuf> = Chain::new();
        chain.push_back(IoBuf::copy_from(b"abc"));
        chain.push_back(IoBuf::copy_from(b"defg"));
        chain.advance(4);
        assert_eq!(chain.len(), 3);
        assert_eq!(chain.copy_to_vec(), b"efg");
        assert_eq!(chain.segment_count(), 1);
    }

    #[test]
    fn chain_split_to_shares_storage() {
        let base = IoBuf::copy_from(b"0123456789");
        let mut chain = Chain::single(base.clone());
        let head = chain.split_to(4);
        assert_eq!(head.copy_to_vec(), b"0123");
        assert_eq!(chain.copy_to_vec(), b"456789");
        // Same storage: base + head segment + chain remainder.
        assert_eq!(base.ref_count(), 3);
    }

    #[test]
    fn cursor_reads_across_boundaries() {
        let mut chain: Chain<IoBuf> = Chain::new();
        chain.push_back(IoBuf::copy_from(&[0x12]));
        chain.push_back(IoBuf::copy_from(&[0x34, 0xAB]));
        chain.push_back(IoBuf::copy_from(&[0xCD, 0xEF, 0x01, 0x02, 0x03]));
        let mut cur = chain.cursor();
        assert_eq!(cur.read_u16_be(), Some(0x1234));
        assert_eq!(cur.read_u32_be(), Some(0xABCD_EF01));
        assert_eq!(cur.remaining(), 2);
        cur.skip(1).unwrap();
        assert_eq!(cur.read_u8(), Some(0x03));
        assert_eq!(cur.read_u8(), None);
    }

    #[test]
    fn cursor_read_exact_insufficient_consumes_nothing() {
        let chain = Chain::single(IoBuf::copy_from(b"ab"));
        let mut cur = chain.cursor();
        let mut buf = [0u8; 3];
        assert!(cur.read_exact(&mut buf).is_none());
        assert_eq!(cur.consumed(), 0);
        assert_eq!(cur.read_u16_be(), Some(u16::from_be_bytes(*b"ab")));
    }

    #[test]
    fn cursor_zero_copy_read_shares_storage() {
        let a = IoBuf::copy_from(b"abcde");
        let b = IoBuf::copy_from(b"fghij");
        let mut chain = Chain::new();
        chain.push_back(a.clone());
        chain.push_back(b.clone());
        let mut cur = chain.cursor();
        cur.skip(3).unwrap();
        let before = stats::bytes_copied();
        let body = cur.read_exact_zero_copy(5).expect("enough bytes");
        assert_eq!(stats::bytes_copied(), before, "no bytes may be copied");
        assert_eq!(body.len(), 5);
        assert_eq!(cur.remaining(), 2);
        // Spans both segments as sub-views of the original regions.
        assert_eq!(body.segment_count(), 2);
        assert_eq!(a.ref_count(), 3); // a + chain seg + body seg
        assert_eq!(b.ref_count(), 3);
        assert_eq!(body.copy_to_vec(), b"defgh");
        // Insufficient bytes: consume nothing.
        let mut cur2 = chain.cursor();
        assert!(cur2.read_exact_zero_copy(11).is_none());
        assert_eq!(cur2.consumed(), 0);
    }

    #[test]
    fn mut_chain_freezes_into_shared_chain() {
        let mut chain: Chain<MutIoBuf> = Chain::new();
        let mut a = MutIoBuf::with_headroom(8, 16);
        a.append_slice(b"data");
        a.prepend(2).copy_from_slice(b"h:");
        chain.push_back(a);
        let frozen: Chain<IoBuf> = chain.into();
        assert_eq!(frozen.copy_to_vec(), b"h:data");
    }

    #[test]
    fn for_payload_has_default_headroom() {
        let b = MutIoBuf::for_payload(b"x");
        assert_eq!(b.headroom(), MutIoBuf::DEFAULT_HEADROOM);
        assert_eq!(b.bytes(), b"x");
    }

    #[test]
    fn pooled_storage_recycles_on_last_drop() {
        // Drain any pool state left by other tests on this thread
        // (holding the buffers so they don't recycle straight back).
        let mut held = Vec::new();
        while pool::local_free() > 0 || pool::depot_free() > 0 {
            held.push(MutIoBuf::with_capacity(64));
        }
        let hits0 = stats::pool_hits();
        let returns0 = stats::pool_returns();
        let buf = MutIoBuf::with_capacity(64); // fresh: pool is empty
        assert!(buf.is_pooled());
        let frozen = buf.freeze();
        let clone = frozen.clone();
        drop(frozen);
        assert_eq!(
            stats::pool_returns(),
            returns0,
            "region must not recycle while a descriptor lives"
        );
        drop(clone);
        assert_eq!(stats::pool_returns(), returns0 + 1);
        assert_eq!(pool::local_free(), 1);
        // The next pool-sized request reuses the region: a hit, no alloc.
        let allocs0 = stats::bufs_allocated();
        let again = MutIoBuf::with_capacity(128);
        assert!(again.is_pooled());
        assert_eq!(stats::pool_hits(), hits0 + 1);
        assert_eq!(stats::bufs_allocated(), allocs0);
    }

    #[test]
    fn class_selection_boundaries() {
        use pool::SizeClass;
        assert_eq!(pool::class_for(0), Some(SizeClass::Small));
        assert_eq!(pool::class_for(1), Some(SizeClass::Small));
        assert_eq!(
            pool::class_for(pool::SMALL_CAPACITY),
            Some(SizeClass::Small)
        );
        assert_eq!(
            pool::class_for(pool::SMALL_CAPACITY + 1),
            Some(SizeClass::Large)
        );
        assert_eq!(
            pool::class_for(pool::LARGE_CAPACITY),
            Some(SizeClass::Large)
        );
        assert_eq!(pool::class_for(pool::LARGE_CAPACITY + 1), None);
    }

    // NOTE: pool/depot state is runtime-owned (the buffer-pool Ebb);
    // outside an entered runtime every test thread gets its own
    // private ambient context, so these tests need no cross-test
    // serialization — the old global `large_class_lock` mutex is gone.

    /// A private machine for pool tests that need real multi-core
    /// semantics.
    fn test_runtime(ncores: usize) -> Arc<crate::runtime::Runtime> {
        crate::runtime::Runtime::new(ncores, Arc::new(crate::clock::ManualClock::new()))
    }

    #[test]
    fn buffers_between_classes_use_large_pool() {
        // A request just past the small class is served by the large
        // class, with the requested logical capacity enforced.
        let b = MutIoBuf::with_capacity(pool::SMALL_CAPACITY + 1);
        assert_eq!(b.size_class(), Some(pool::SizeClass::Large));
        assert_eq!(b.capacity(), pool::SMALL_CAPACITY + 1);
        // Recycling goes back to the large class and is reused.
        let returns0 = stats::class_counters(pool::SizeClass::Large).returns;
        drop(b);
        assert_eq!(
            stats::class_counters(pool::SizeClass::Large).returns,
            returns0 + 1
        );
        let hits0 = stats::class_counters(pool::SizeClass::Large).hits;
        let again = MutIoBuf::with_capacity(32 * 1024);
        assert_eq!(again.size_class(), Some(pool::SizeClass::Large));
        assert_eq!(
            stats::class_counters(pool::SizeClass::Large).hits,
            hits0 + 1
        );
    }

    #[test]
    fn oversized_buffers_bypass_pool() {
        let over0 = stats::oversize_allocs();
        let b = MutIoBuf::with_capacity(pool::LARGE_CAPACITY + 1);
        assert!(!b.is_pooled());
        assert_eq!(b.size_class(), None);
        assert_eq!(b.capacity(), pool::LARGE_CAPACITY + 1);
        assert_eq!(stats::oversize_allocs(), over0 + 1);
    }

    #[test]
    fn depot_balances_between_cores() {
        use crate::cpu::CoreId;
        use crate::runtime;
        use pool::SizeClass;
        // Pool state is owned by this private runtime: no other test
        // can steal the flushed batch mid-assertion (the reason the
        // old global-pool design needed a serialization mutex).
        let rt = test_runtime(2);
        let class = SizeClass::Large;
        // Producer core 0: recycle past the high watermark, flushing a
        // batch to the depot.
        let after_flush = {
            let _g = runtime::enter(Arc::clone(&rt), CoreId(0));
            let before = stats::class_counters(class);
            pool::prewarm_class(class, class.high_watermark());
            // Take one (hit) and return it: the return crosses the
            // watermark and flushes a batch.
            drop(MutIoBuf::with_capacity(pool::LARGE_CAPACITY));
            let after_flush = stats::class_counters(class);
            assert_eq!(
                after_flush.depot_in - before.depot_in,
                class.batch() as u64,
                "crossing the watermark must flush one batch to the depot"
            );
            after_flush
        };
        // Consumer core 1: empty local list refills a batch from the
        // depot — cross-core migration, no fresh allocation.
        {
            let _g = runtime::enter(Arc::clone(&rt), CoreId(1));
            assert_eq!(pool::local_free_class(class), 0);
            let allocs0 = stats::bufs_allocated();
            let buf = MutIoBuf::with_capacity(pool::LARGE_CAPACITY);
            assert_eq!(buf.size_class(), Some(class));
            assert_eq!(stats::bufs_allocated(), allocs0, "refill, not alloc");
            // Migration is visible machine-wide: this core's depot_out
            // grew by one batch since the producer's flush.
            assert_eq!(stats::class_counters(class).depot_out, class.batch() as u64);
            assert_eq!(pool::local_free_class(class), class.batch() - 1);
            let _ = after_flush;
        }
    }

    #[test]
    fn idle_sweep_returns_mailbox_regions_to_depot() {
        use crate::cpu::CoreId;
        use crate::runtime;
        use pool::SizeClass;
        let home = test_runtime(1);
        let away = test_runtime(1);
        let class = SizeClass::Large;
        // More than one refill batch, so both halves of the sweep
        // policy are visible (local top-up + depot return).
        let n = class.batch() + 4;
        assert!(n >= class.sweep_low_water());
        // Allocate on the home machine (stamping the regions' home),
        // then free them all under the away machine: every region posts
        // back to home core 0's mailbox, crossing the sweep's low-water
        // mark.
        let bufs: Vec<IoBuf> = {
            let _g = runtime::enter(Arc::clone(&home), CoreId(0));
            (0..n)
                .map(|_| MutIoBuf::with_capacity(class.capacity()).freeze())
                .collect()
        };
        let home_root = home
            .ebbs()
            .root::<pool::PoolEbb>(crate::ebb::SystemEbb::BufferPool.id())
            .expect("home pool root");
        {
            let _g = runtime::enter(Arc::clone(&away), CoreId(0));
            drop(bufs);
        }
        assert_eq!(home_root.mailbox_len(class), n);
        assert_eq!(home_root.depot_len(class), 0);
        let base = stats::runtime_snapshot(&home);
        // The cross-machine frees armed a sweep: a synthetic event
        // queued on home core 0 registers the one-shot idle callback,
        // which runs at the idle stage of the next pass — without the
        // home machine ever allocating.
        {
            let _g = runtime::enter(Arc::clone(&home), CoreId(0));
            let em = home.event_manager(CoreId(0));
            em.drain(); // the arming event
            em.run_once(); // the idle stage: the sweep itself
            assert!(
                !em.has_idle_handlers(),
                "the sweep is one-shot: the core may halt again"
            );
        }
        assert_eq!(
            home_root.mailbox_len(class),
            0,
            "idle machine must not pin remote-freed regions in mailboxes"
        );
        let (local, depot) = pool::runtime_free_counts(&home, class);
        assert_eq!(
            local,
            class.batch(),
            "the home core keeps one cache-warm refill batch"
        );
        assert_eq!(
            depot,
            n - class.batch(),
            "the excess lands in the machine-wide depot"
        );
        let delta = stats::runtime_snapshot(&home).since(&base);
        assert_eq!(
            delta.class(class).depot_in,
            (n - class.batch()) as u64,
            "the depot half is counted as migration on the home machine"
        );
    }

    #[test]
    fn runtimes_keep_independent_pools_and_stats() {
        // The satellite regression test: two machines in one process
        // must not share pool state or counters — the property the old
        // `thread_local!` + `static DEPOTS` design could not provide.
        use crate::cpu::CoreId;
        use crate::runtime;
        let rt1 = test_runtime(1);
        let rt2 = test_runtime(1);
        {
            let _g = runtime::enter(Arc::clone(&rt1), CoreId(0));
            // Fresh machine: the first allocation is a counted
            // fallback; its drop recycles into rt1's core-0 list.
            drop(MutIoBuf::with_capacity(64));
            assert_eq!(pool::local_free(), 1);
        }
        let s1 = stats::runtime_snapshot(&rt1);
        assert_eq!(s1.bufs_allocated, 1);
        assert_eq!(s1.pool_returns, 1);
        // rt2 saw none of it — no reps even exist yet.
        let s2 = stats::runtime_snapshot(&rt2);
        assert_eq!(s2, stats::Snapshot::default());
        {
            let _g = runtime::enter(Arc::clone(&rt2), CoreId(0));
            // rt1's recycled region is invisible here: rt2 must
            // fresh-allocate, and its counters move independently.
            assert_eq!(pool::local_free(), 0);
            let allocs0 = stats::bufs_allocated();
            assert_eq!(allocs0, 0);
            let b = MutIoBuf::with_capacity(64);
            assert!(b.is_pooled());
            assert_eq!(stats::bufs_allocated(), 1);
        }
        // …and rt1's reading is unchanged by rt2's activity.
        assert_eq!(stats::runtime_snapshot(&rt1), s1);
    }

    #[test]
    fn pool_dispatch_works_from_events_and_harness_thread() {
        // The same module-level API resolves to the entered machine's
        // rep inside a runtime and to the thread's ambient context
        // outside one — allocation sites don't care where they run.
        use crate::cpu::CoreId;
        use crate::runtime;
        let ambient_free = pool::local_free();
        let rt = test_runtime(1);
        {
            let _g = runtime::enter(Arc::clone(&rt), CoreId(0));
            pool::prewarm(2);
            assert_eq!(pool::local_free(), 2);
        }
        // Back on the harness thread: the ambient context, untouched.
        assert_eq!(pool::local_free(), ambient_free);
    }

    #[test]
    fn flux_adaptive_watermark_halves_for_pure_consumers() {
        // Depot hysteresis: a core whose free list has only ever grown
        // since its last balance (it frees buffers other cores
        // allocate, never allocating itself) flushes at *half* the
        // high watermark, priming the depot pipeline after half the
        // parked population. A core with local demand keeps the full
        // watermark.
        use crate::cpu::CoreId;
        use crate::runtime;
        use pool::SizeClass;
        let rt = test_runtime(2);
        let class = SizeClass::Large;
        let wm = class.high_watermark();
        // Core 0 allocates wm/2 regions (local demand: fallbacks) and
        // frees them locally: half the watermark must NOT flush there.
        {
            let _g = runtime::enter(Arc::clone(&rt), CoreId(0));
            let bufs: Vec<MutIoBuf> = (0..wm / 2)
                .map(|_| MutIoBuf::with_capacity(pool::LARGE_CAPACITY))
                .collect();
            drop(bufs);
            assert_eq!(
                stats::class_counters(class).depot_in,
                0,
                "a core with local demand keeps the full watermark"
            );
            assert_eq!(pool::local_free_class(class), wm / 2);
        }
        // Core 0 re-acquires them (pool hits) and core 1 — a pure
        // consumer, zero local takes — frees them: the halved
        // watermark flushes a batch after wm/2 returns.
        let held: Vec<MutIoBuf> = {
            let _g = runtime::enter(Arc::clone(&rt), CoreId(0));
            (0..wm / 2)
                .map(|_| MutIoBuf::with_capacity(pool::LARGE_CAPACITY))
                .collect()
        };
        {
            let _g = runtime::enter(Arc::clone(&rt), CoreId(1));
            drop(held);
            assert_eq!(
                stats::class_counters(class).depot_in,
                class.batch() as u64,
                "a pure consumer must flush after wm/2 parked regions"
            );
        }
    }

    #[test]
    fn pinned_bytes_dedupes_shared_regions() {
        // Many MSS-like views of one large region pin it once.
        let mut big = MutIoBuf::with_capacity(20 * 1024);
        big.append(20 * 1024).fill(7);
        let frozen = big.freeze();
        let mut chain: Chain<IoBuf> = Chain::new();
        for i in 0..14 {
            chain.push_back(frozen.slice(i * 1460, 1460));
        }
        assert_eq!(chain.pinned_bytes(), frozen.region_len());
        // Distinct regions still accumulate.
        chain.push_back(IoBuf::copy_from(b"other"));
        assert_eq!(chain.pinned_bytes(), frozen.region_len() + 5);
    }

    #[test]
    fn pooled_capacity_is_logical() {
        // A pool-backed buffer enforces the requested capacity even
        // though the physical region is BUF_CAPACITY bytes.
        let mut b = MutIoBuf::with_headroom(10, 4);
        assert_eq!(b.capacity(), 14);
        assert_eq!(b.tailroom(), 10);
        b.append(10);
        assert_eq!(b.tailroom(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds tailroom")]
    fn pooled_append_respects_logical_capacity() {
        let mut b = MutIoBuf::with_capacity(8);
        b.append(9);
    }

    #[test]
    fn copy_counters_track_explicit_copies() {
        let before = stats::bytes_copied();
        let b = IoBuf::copy_from(b"12345");
        assert_eq!(stats::bytes_copied(), before + 5);
        let chain = Chain::single(b);
        let _ = chain.copy_to_vec();
        assert_eq!(stats::bytes_copied(), before + 10);
        let mut cur = chain.cursor();
        let _ = cur.read_vec(5);
        assert_eq!(stats::bytes_copied(), before + 15);
        // Descriptor moves are free.
        let clone = chain.clone();
        let mut c2 = clone.clone();
        let _ = c2.split_to(2);
        assert_eq!(stats::bytes_copied(), before + 15);
    }

    #[test]
    fn compact_releases_pinned_regions() {
        // Many 1-byte views over pool-sized regions: heavily pinned.
        let mut chain: Chain<IoBuf> = Chain::new();
        for i in 0..8u8 {
            let mut b = MutIoBuf::with_capacity(16);
            b.append(1)[0] = i;
            chain.push_back(b.freeze());
        }
        assert_eq!(chain.len(), 8);
        assert!(chain.pinned_bytes() >= 8 * pool::BUF_CAPACITY);
        chain.compact();
        assert_eq!(chain.len(), 8);
        assert_eq!(chain.segment_count(), 1);
        assert_eq!(chain.pinned_bytes(), 8);
        assert_eq!(chain.copy_to_vec(), &[0, 1, 2, 3, 4, 5, 6, 7]);
        // Already-exact chains are left untouched (no copy, no alloc).
        let before = stats::snapshot();
        chain.compact();
        assert_eq!(stats::snapshot(), before);
    }

    #[test]
    fn prewarm_fills_local_list() {
        let free0 = pool::local_free();
        pool::prewarm(4);
        assert_eq!(pool::local_free(), free0 + 4);
        // Use them up so other tests see a predictable pool.
        let bufs: Vec<MutIoBuf> = (0..4).map(|_| MutIoBuf::with_capacity(32)).collect();
        drop(bufs);
    }
}
