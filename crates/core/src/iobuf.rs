//! IOBuf: the zero-copy buffer descriptor (§3.6 of the paper).
//!
//! An IOBuf *descriptor* manages ownership of a region of memory plus a
//! view (window) onto a portion of it. Data moves through the system by
//! moving descriptors, never by copying bytes:
//!
//! * A device driver fills a [`MutIoBuf`] and passes it up the stack.
//! * Each protocol layer *advances* the view past its header.
//! * On transmit, layers *prepend* headers into headroom reserved in
//!   front of the payload, so adding an Ethernet/IP/TCP header never
//!   reallocates or copies the payload.
//! * [`IoBuf`] is the frozen, shareable form (`Arc`-backed): TCP keeps a
//!   clone in its retransmit queue while the device reads another — one
//!   region, two descriptors, zero copies.
//! * [`Chain`] strings segments together for scatter/gather I/O, and
//!   [`Cursor`] parses across segment boundaries.

use std::fmt;
use std::sync::Arc;

/// Read access to a buffer segment's visible bytes.
pub trait Buf {
    /// The bytes currently inside the view window.
    fn bytes(&self) -> &[u8];

    /// Length of the view window.
    fn len(&self) -> usize {
        self.bytes().len()
    }

    /// Whether the view window is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A uniquely-owned, writable buffer segment with headroom and tailroom.
///
/// Layout: `[ headroom | view window | tailroom ]` over one allocation.
/// `prepend`/`append` grow the window into head/tailroom; `advance`/
/// `trim_end` shrink it.
pub struct MutIoBuf {
    storage: Box<[u8]>,
    /// Offset of the view window within `storage`.
    off: usize,
    /// Length of the view window.
    len: usize,
}

impl MutIoBuf {
    /// Default headroom reserved by [`MutIoBuf::for_payload`]: enough for
    /// Ethernet (14) + IPv4 (20) + TCP (up to 60) headers, rounded up.
    pub const DEFAULT_HEADROOM: usize = 128;

    /// Creates a buffer of `capacity` bytes with an empty view at offset 0
    /// (all capacity is tailroom).
    pub fn with_capacity(capacity: usize) -> Self {
        MutIoBuf {
            storage: vec![0u8; capacity].into_boxed_slice(),
            off: 0,
            len: 0,
        }
    }

    /// Creates a buffer whose view starts after `headroom` bytes and is
    /// initially empty; total capacity is `headroom + payload_capacity`.
    pub fn with_headroom(payload_capacity: usize, headroom: usize) -> Self {
        MutIoBuf {
            storage: vec![0u8; headroom + payload_capacity].into_boxed_slice(),
            off: headroom,
            len: 0,
        }
    }

    /// Creates a buffer holding a copy of `payload`, with
    /// [`Self::DEFAULT_HEADROOM`] bytes of headroom for protocol headers.
    pub fn for_payload(payload: &[u8]) -> Self {
        let mut b = Self::with_headroom(payload.len(), Self::DEFAULT_HEADROOM);
        b.append_slice(payload);
        b
    }

    /// Wraps an owned vector; the view covers the whole vector.
    pub fn from_vec(v: Vec<u8>) -> Self {
        let len = v.len();
        MutIoBuf {
            storage: v.into_boxed_slice(),
            off: 0,
            len,
        }
    }

    /// Bytes available in front of the view window.
    pub fn headroom(&self) -> usize {
        self.off
    }

    /// Bytes available behind the view window.
    pub fn tailroom(&self) -> usize {
        self.storage.len() - self.off - self.len
    }

    /// Total capacity of the underlying region.
    pub fn capacity(&self) -> usize {
        self.storage.len()
    }

    /// Mutable access to the view window.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.storage[self.off..self.off + self.len]
    }

    /// Extends the window forward (into headroom) by `n` bytes and
    /// returns the newly exposed prefix for the caller to fill — this is
    /// how protocol layers add headers without copying the payload.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the available headroom.
    pub fn prepend(&mut self, n: usize) -> &mut [u8] {
        assert!(n <= self.off, "prepend({n}) exceeds headroom {}", self.off);
        self.off -= n;
        self.len += n;
        &mut self.storage[self.off..self.off + n]
    }

    /// Extends the window backward (into tailroom) by `n` bytes and
    /// returns the newly exposed suffix.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the available tailroom.
    pub fn append(&mut self, n: usize) -> &mut [u8] {
        assert!(
            n <= self.tailroom(),
            "append({n}) exceeds tailroom {}",
            self.tailroom()
        );
        let start = self.off + self.len;
        self.len += n;
        &mut self.storage[start..start + n]
    }

    /// Appends a copy of `src` into tailroom.
    pub fn append_slice(&mut self, src: &[u8]) {
        self.append(src.len()).copy_from_slice(src);
    }

    /// Shrinks the window from the front by `n` bytes (consumed bytes
    /// become headroom) — used to strip parsed headers.
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.len, "advance({n}) exceeds length {}", self.len);
        self.off += n;
        self.len -= n;
    }

    /// Shrinks the window from the back by `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn trim_end(&mut self, n: usize) {
        assert!(n <= self.len, "trim_end({n}) exceeds length {}", self.len);
        self.len -= n;
    }

    /// Freezes into a shareable, immutable [`IoBuf`] without copying.
    pub fn freeze(self) -> IoBuf {
        IoBuf {
            storage: Arc::from(self.storage),
            off: self.off,
            len: self.len,
        }
    }
}

impl Buf for MutIoBuf {
    fn bytes(&self) -> &[u8] {
        &self.storage[self.off..self.off + self.len]
    }
}

impl fmt::Debug for MutIoBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MutIoBuf")
            .field("headroom", &self.headroom())
            .field("len", &self.len)
            .field("tailroom", &self.tailroom())
            .finish()
    }
}

/// An immutable, reference-counted buffer segment.
///
/// Clones share the underlying region; each clone has an independent
/// view window, so slicing is free.
#[derive(Clone)]
pub struct IoBuf {
    storage: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl IoBuf {
    /// Creates a buffer holding a copy of `data`.
    pub fn copy_from(data: &[u8]) -> Self {
        MutIoBuf::from_vec(data.to_vec()).freeze()
    }

    /// An empty buffer.
    pub fn empty() -> Self {
        IoBuf {
            storage: Arc::from(Vec::new().into_boxed_slice()),
            off: 0,
            len: 0,
        }
    }

    /// Returns a new descriptor viewing `range` of this view, sharing the
    /// same storage (no copy).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the current view.
    pub fn slice(&self, start: usize, len: usize) -> IoBuf {
        assert!(
            start + len <= self.len,
            "slice({start}, {len}) exceeds view length {}",
            self.len
        );
        IoBuf {
            storage: Arc::clone(&self.storage),
            off: self.off + start,
            len,
        }
    }

    /// Shrinks the view from the front by `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.len, "advance({n}) exceeds length {}", self.len);
        self.off += n;
        self.len -= n;
    }

    /// Shrinks the view from the back by `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn trim_end(&mut self, n: usize) {
        assert!(n <= self.len, "trim_end({n}) exceeds length {}", self.len);
        self.len -= n;
    }

    /// Number of descriptors sharing this storage (diagnostic; used by
    /// tests to assert zero-copy behaviour).
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.storage)
    }
}

impl Buf for IoBuf {
    fn bytes(&self) -> &[u8] {
        &self.storage[self.off..self.off + self.len]
    }
}

impl fmt::Debug for IoBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IoBuf")
            .field("off", &self.off)
            .field("len", &self.len)
            .field("refs", &self.ref_count())
            .finish()
    }
}

impl From<MutIoBuf> for IoBuf {
    fn from(b: MutIoBuf) -> Self {
        b.freeze()
    }
}

/// A chain of buffer segments presented as one logical byte sequence —
/// the scatter/gather unit accepted by the network stack's send path and
/// produced by its receive path.
pub struct Chain<B: Buf> {
    segments: Vec<B>,
    total: usize,
}

impl<B: Buf + Clone> Clone for Chain<B> {
    /// Clones the descriptor chain; for [`IoBuf`] segments this shares
    /// the underlying storage (no bytes are copied).
    fn clone(&self) -> Self {
        Chain {
            segments: self.segments.clone(),
            total: self.total,
        }
    }
}

impl<B: Buf> Default for Chain<B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<B: Buf> Chain<B> {
    /// An empty chain.
    pub fn new() -> Self {
        Chain {
            segments: Vec::new(),
            total: 0,
        }
    }

    /// A chain with a single segment.
    pub fn single(seg: B) -> Self {
        let total = seg.len();
        Chain {
            segments: vec![seg],
            total,
        }
    }

    /// Appends a segment to the back.
    pub fn push_back(&mut self, seg: B) {
        self.total += seg.len();
        self.segments.push(seg);
    }

    /// Prepends a segment to the front.
    pub fn push_front(&mut self, seg: B) {
        self.total += seg.len();
        self.segments.insert(0, seg);
    }

    /// Appends all segments of `other`.
    pub fn append_chain(&mut self, other: Chain<B>) {
        self.total += other.total;
        self.segments.extend(other.segments);
    }

    /// Total logical length across all segments.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the chain holds zero bytes.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The segments, in order.
    pub fn segments(&self) -> &[B] {
        &self.segments
    }

    /// Consumes the chain, yielding its segments.
    pub fn into_segments(self) -> Vec<B> {
        self.segments
    }

    /// Copies the entire logical contents into one `Vec` (explicitly *not*
    /// zero-copy; used at simulation edges and in tests).
    pub fn copy_to_vec(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.total);
        for s in &self.segments {
            out.extend_from_slice(s.bytes());
        }
        out
    }

    /// A parsing cursor positioned at the logical start.
    pub fn cursor(&self) -> Cursor<'_, B> {
        Cursor {
            chain: self,
            seg: 0,
            off: 0,
            consumed: 0,
        }
    }
}

impl Chain<IoBuf> {
    /// Drops `n` bytes from the logical front, discarding exhausted
    /// segments and advancing into partial ones (no data copied).
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn advance(&mut self, mut n: usize) {
        assert!(n <= self.total, "advance({n}) exceeds chain length");
        self.total -= n;
        while n > 0 {
            let first_len = self.segments[0].len();
            if n >= first_len {
                self.segments.remove(0);
                n -= first_len;
            } else {
                self.segments[0].advance(n);
                n = 0;
            }
        }
    }

    /// Splits off the first `n` logical bytes into a new chain, sharing
    /// storage with this one (segments are sliced, not copied).
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn split_to(&mut self, n: usize) -> Chain<IoBuf> {
        assert!(n <= self.total, "split_to({n}) exceeds chain length");
        let mut out = Chain::new();
        let mut remaining = n;
        while remaining > 0 {
            let first_len = self.segments[0].len();
            if remaining >= first_len {
                let seg = self.segments.remove(0);
                remaining -= first_len;
                out.push_back(seg);
            } else {
                let head = self.segments[0].slice(0, remaining);
                self.segments[0].advance(remaining);
                out.push_back(head);
                remaining = 0;
            }
        }
        self.total -= n;
        out
    }
}

/// Converts a chain of mutable segments into a shareable immutable chain.
impl From<Chain<MutIoBuf>> for Chain<IoBuf> {
    fn from(chain: Chain<MutIoBuf>) -> Self {
        let mut out = Chain::new();
        for seg in chain.into_segments() {
            out.push_back(seg.freeze());
        }
        out
    }
}

/// A read cursor over a [`Chain`], crossing segment boundaries
/// transparently — the analogue of EbbRT's `DataPointer`.
pub struct Cursor<'a, B: Buf> {
    chain: &'a Chain<B>,
    seg: usize,
    off: usize,
    consumed: usize,
}

impl<'a, B: Buf> Cursor<'a, B> {
    /// Bytes remaining after the cursor.
    pub fn remaining(&self) -> usize {
        self.chain.len() - self.consumed
    }

    /// Bytes consumed so far.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Reads one byte.
    pub fn read_u8(&mut self) -> Option<u8> {
        let mut b = [0u8; 1];
        self.read_exact(&mut b)?;
        Some(b[0])
    }

    /// Reads a big-endian u16 (network order).
    pub fn read_u16_be(&mut self) -> Option<u16> {
        let mut b = [0u8; 2];
        self.read_exact(&mut b)?;
        Some(u16::from_be_bytes(b))
    }

    /// Reads a big-endian u32 (network order).
    pub fn read_u32_be(&mut self) -> Option<u32> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b)?;
        Some(u32::from_be_bytes(b))
    }

    /// Reads a big-endian u64 (network order).
    pub fn read_u64_be(&mut self) -> Option<u64> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b)?;
        Some(u64::from_be_bytes(b))
    }

    /// Fills `dst` from the cursor position, crossing segments as needed.
    /// Returns `None` (consuming nothing) if fewer than `dst.len()` bytes
    /// remain.
    pub fn read_exact(&mut self, dst: &mut [u8]) -> Option<()> {
        if self.remaining() < dst.len() {
            return None;
        }
        let mut written = 0;
        while written < dst.len() {
            let seg = &self.chain.segments()[self.seg];
            let avail = &seg.bytes()[self.off..];
            let take = avail.len().min(dst.len() - written);
            dst[written..written + take].copy_from_slice(&avail[..take]);
            written += take;
            self.off += take;
            self.consumed += take;
            if self.off == seg.len() && self.seg + 1 < self.chain.segment_count() {
                self.seg += 1;
                self.off = 0;
            }
        }
        Some(())
    }

    /// Skips `n` bytes.
    ///
    /// Returns `None` (consuming nothing) if fewer than `n` bytes remain.
    pub fn skip(&mut self, n: usize) -> Option<()> {
        if self.remaining() < n {
            return None;
        }
        let mut left = n;
        while left > 0 {
            let seg_len = self.chain.segments()[self.seg].len();
            let avail = seg_len - self.off;
            let take = avail.min(left);
            self.off += take;
            self.consumed += take;
            left -= take;
            if self.off == seg_len && self.seg + 1 < self.chain.segment_count() {
                self.seg += 1;
                self.off = 0;
            }
        }
        Some(())
    }

    /// Reads `n` bytes into a fresh vector.
    pub fn read_vec(&mut self, n: usize) -> Option<Vec<u8>> {
        let mut v = vec![0u8; n];
        self.read_exact(&mut v)?;
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mut_iobuf_headroom_prepend() {
        let mut b = MutIoBuf::with_headroom(100, 64);
        assert_eq!(b.headroom(), 64);
        assert_eq!(b.len(), 0);
        b.append_slice(b"payload");
        assert_eq!(b.bytes(), b"payload");
        b.prepend(4).copy_from_slice(b"HDR:");
        assert_eq!(b.bytes(), b"HDR:payload");
        assert_eq!(b.headroom(), 60);
    }

    #[test]
    #[should_panic(expected = "exceeds headroom")]
    fn prepend_past_headroom_panics() {
        let mut b = MutIoBuf::with_headroom(10, 2);
        b.prepend(3);
    }

    #[test]
    fn advance_and_trim() {
        let mut b = MutIoBuf::from_vec(b"ethipv4payload".to_vec());
        b.advance(3);
        assert_eq!(b.bytes(), b"ipv4payload");
        b.advance(4);
        assert_eq!(b.bytes(), b"payload");
        b.trim_end(3);
        assert_eq!(b.bytes(), b"payl");
        // Consumed header space became headroom again.
        assert_eq!(b.headroom(), 7);
    }

    #[test]
    fn freeze_shares_storage() {
        let b = MutIoBuf::from_vec(vec![1, 2, 3, 4]).freeze();
        let c = b.clone();
        assert_eq!(b.ref_count(), 2);
        let s = c.slice(1, 2);
        assert_eq!(s.bytes(), &[2, 3]);
        assert_eq!(b.ref_count(), 3);
        assert_eq!(b.bytes(), &[1, 2, 3, 4]);
    }

    #[test]
    fn chain_accounting() {
        let mut chain: Chain<IoBuf> = Chain::new();
        assert!(chain.is_empty());
        chain.push_back(IoBuf::copy_from(b"hello "));
        chain.push_back(IoBuf::copy_from(b"world"));
        chain.push_front(IoBuf::copy_from(b">> "));
        assert_eq!(chain.len(), 14);
        assert_eq!(chain.segment_count(), 3);
        assert_eq!(chain.copy_to_vec(), b">> hello world");
    }

    #[test]
    fn chain_advance_across_segments() {
        let mut chain: Chain<IoBuf> = Chain::new();
        chain.push_back(IoBuf::copy_from(b"abc"));
        chain.push_back(IoBuf::copy_from(b"defg"));
        chain.advance(4);
        assert_eq!(chain.len(), 3);
        assert_eq!(chain.copy_to_vec(), b"efg");
        assert_eq!(chain.segment_count(), 1);
    }

    #[test]
    fn chain_split_to_shares_storage() {
        let base = IoBuf::copy_from(b"0123456789");
        let mut chain = Chain::single(base.clone());
        let head = chain.split_to(4);
        assert_eq!(head.copy_to_vec(), b"0123");
        assert_eq!(chain.copy_to_vec(), b"456789");
        // Same storage: base + head segment + chain remainder.
        assert_eq!(base.ref_count(), 3);
    }

    #[test]
    fn cursor_reads_across_boundaries() {
        let mut chain: Chain<IoBuf> = Chain::new();
        chain.push_back(IoBuf::copy_from(&[0x12]));
        chain.push_back(IoBuf::copy_from(&[0x34, 0xAB]));
        chain.push_back(IoBuf::copy_from(&[0xCD, 0xEF, 0x01, 0x02, 0x03]));
        let mut cur = chain.cursor();
        assert_eq!(cur.read_u16_be(), Some(0x1234));
        assert_eq!(cur.read_u32_be(), Some(0xABCD_EF01));
        assert_eq!(cur.remaining(), 2);
        cur.skip(1).unwrap();
        assert_eq!(cur.read_u8(), Some(0x03));
        assert_eq!(cur.read_u8(), None);
    }

    #[test]
    fn cursor_read_exact_insufficient_consumes_nothing() {
        let chain = Chain::single(IoBuf::copy_from(b"ab"));
        let mut cur = chain.cursor();
        let mut buf = [0u8; 3];
        assert!(cur.read_exact(&mut buf).is_none());
        assert_eq!(cur.consumed(), 0);
        assert_eq!(cur.read_u16_be(), Some(u16::from_be_bytes(*b"ab")));
    }

    #[test]
    fn mut_chain_freezes_into_shared_chain() {
        let mut chain: Chain<MutIoBuf> = Chain::new();
        let mut a = MutIoBuf::with_headroom(8, 16);
        a.append_slice(b"data");
        a.prepend(2).copy_from_slice(b"h:");
        chain.push_back(a);
        let frozen: Chain<IoBuf> = chain.into();
        assert_eq!(frozen.copy_to_vec(), b"h:data");
    }

    #[test]
    fn for_payload_has_default_headroom() {
        let b = MutIoBuf::for_payload(b"x");
        assert_eq!(b.headroom(), MutIoBuf::DEFAULT_HEADROOM);
        assert_eq!(b.bytes(), b"x");
    }
}
