//! Core (CPU) identity and per-core ownership primitives.
//!
//! EbbRT's execution model binds every event, Ebb representative and
//! per-core data structure to exactly one core. On real hardware that
//! binding is physical; here a *core* is a logical execution context that
//! is either backed by a dedicated OS thread (the threaded backend) or
//! multiplexed onto a discrete-event-scheduler thread (the simulated
//! backend). In both cases the invariant is the same: **at any instant at
//! most one thread executes on behalf of a given core**, and that thread
//! has the core's identity installed in thread-local storage.
//!
//! [`CoreLocal`] exploits this invariant to hand out `&mut` access to
//! per-core state without atomic read-modify-write operations, mirroring
//! the paper's claim (§3.2) that non-preemptive per-core execution lets
//! components "use non-atomic operations to access per-core data
//! structures".

use core::cell::{Cell, UnsafeCell};
use core::fmt;

/// Identifier of a logical core within one EbbRT instance (machine).
///
/// Core ids are dense: a machine with `n` cores uses ids `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CoreId(pub u32);

impl CoreId {
    /// Returns the id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

thread_local! {
    static CURRENT_CORE: Cell<Option<CoreId>> = const { Cell::new(None) };
}

/// Returns the core the calling thread is currently executing on behalf
/// of, or `None` if the thread is not bound to any core (e.g. a plain
/// test thread or a hosted-environment thread outside the event loop).
#[inline]
pub fn try_current() -> Option<CoreId> {
    CURRENT_CORE.with(|c| c.get())
}

/// Returns the current core.
///
/// # Panics
///
/// Panics if the calling thread is not bound to a core. Use
/// [`try_current`] for a fallible variant.
#[inline]
pub fn current() -> CoreId {
    try_current().expect("thread is not bound to an EbbRT core")
}

/// Binds the calling thread to `core` for the duration of the returned
/// guard. Used by the threaded backend when a core thread starts, and by
/// the simulated backend around each delivered event.
///
/// Bindings nest: the guard restores the previous binding on drop.
pub fn bind(core: CoreId) -> CoreBinding {
    let prev = CURRENT_CORE.with(|c| c.replace(Some(core)));
    CoreBinding { prev }
}

/// Guard returned by [`bind`]; restores the previous core binding on drop.
pub struct CoreBinding {
    prev: Option<CoreId>,
}

impl Drop for CoreBinding {
    fn drop(&mut self) {
        CURRENT_CORE.with(|c| c.set(self.prev));
    }
}

/// A fixed array of per-core values, each accessible mutably only from
/// its owning core.
///
/// This is the Rust rendering of EbbRT's per-core data structures: access
/// is checked dynamically (the calling thread must be bound to the slot's
/// core, and access must not re-enter), after which no synchronization is
/// performed. The check is two thread-local reads and two `Cell`
/// operations — no atomic read-modify-write, in the spirit of the paper.
pub struct CoreLocal<T> {
    slots: Box<[CoreSlot<T>]>,
}

struct CoreSlot<T> {
    value: UnsafeCell<T>,
    /// Re-entrancy flag: set while a `with` borrow is live.
    borrowed: Cell<bool>,
}

// SAFETY: `CoreSlot` values are only ever accessed by the thread that is
// currently bound to the slot's core (checked in `CoreLocal::with`), and
// the `borrowed` flag prevents re-entrant aliasing on that thread. The
// runtime guarantees at most one thread is bound to a core at a time.
unsafe impl<T: Send> Sync for CoreLocal<T> {}
// SAFETY: Sending the whole table moves all values; per-value access rules
// are unchanged.
unsafe impl<T: Send> Send for CoreLocal<T> {}

impl<T> CoreLocal<T> {
    /// Creates a table with one value per core, produced by `init`.
    pub fn new(ncores: usize, mut init: impl FnMut(CoreId) -> T) -> Self {
        let slots = (0..ncores)
            .map(|i| CoreSlot {
                value: UnsafeCell::new(init(CoreId(i as u32))),
                borrowed: Cell::new(false),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        CoreLocal { slots }
    }

    /// Number of cores covered by this table.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if the table covers zero cores.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Runs `f` with mutable access to the calling core's value.
    ///
    /// # Panics
    ///
    /// Panics if the calling thread is not bound to a core covered by this
    /// table, or if the calling core's value is already borrowed (i.e. the
    /// call re-enters through `f`).
    #[inline]
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        self.with_on(current(), f)
    }

    /// Runs `f` with mutable access to `core`'s value.
    ///
    /// # Panics
    ///
    /// Panics unless the calling thread is currently bound to `core`, or
    /// on re-entrant access.
    #[inline]
    pub fn with_on<R>(&self, core: CoreId, f: impl FnOnce(&mut T) -> R) -> R {
        assert_eq!(
            try_current(),
            Some(core),
            "CoreLocal accessed from a thread not bound to {core}",
        );
        let slot = &self.slots[core.index()];
        assert!(
            !slot.borrowed.get(),
            "re-entrant CoreLocal access on {core}"
        );
        slot.borrowed.set(true);
        // Ensure the flag is cleared even if `f` panics.
        struct Reset<'a>(&'a Cell<bool>);
        impl Drop for Reset<'_> {
            fn drop(&mut self) {
                self.0.set(false);
            }
        }
        let _reset = Reset(&slot.borrowed);
        // SAFETY: the thread is bound to `core` (asserted above) and the
        // runtime guarantees only one thread is bound to a core at a time;
        // the `borrowed` flag excludes re-entrant aliasing on this thread.
        let value = unsafe { &mut *slot.value.get() };
        f(value)
    }

    /// Consumes the table, returning all per-core values in core order.
    pub fn into_values(self) -> Vec<T> {
        self.slots
            .into_vec()
            .into_iter()
            .map(|s| s.value.into_inner())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bind_nests_and_restores() {
        assert_eq!(try_current(), None);
        {
            let _b0 = bind(CoreId(0));
            assert_eq!(current(), CoreId(0));
            {
                let _b1 = bind(CoreId(1));
                assert_eq!(current(), CoreId(1));
            }
            assert_eq!(current(), CoreId(0));
        }
        assert_eq!(try_current(), None);
    }

    #[test]
    fn core_local_per_core_values() {
        let cl = CoreLocal::new(4, |c| c.0 * 10);
        for i in 0..4u32 {
            let _b = bind(CoreId(i));
            cl.with(|v| *v += 1);
            cl.with(|v| assert_eq!(*v, i * 10 + 1));
        }
        assert_eq!(cl.into_values(), vec![1, 11, 21, 31]);
    }

    #[test]
    #[should_panic(expected = "not bound")]
    fn core_local_unbound_panics() {
        let cl = CoreLocal::new(1, |_| 0u32);
        cl.with(|_| ());
    }

    #[test]
    #[should_panic(expected = "re-entrant")]
    fn core_local_reentry_panics() {
        let cl = CoreLocal::new(1, |_| 0u32);
        let _b = bind(CoreId(0));
        cl.with(|_| cl.with(|_| ()));
    }

    #[test]
    #[should_panic(expected = "not bound to core1")]
    fn core_local_wrong_core_panics() {
        let cl = CoreLocal::new(2, |_| 0u32);
        let _b = bind(CoreId(0));
        cl.with_on(CoreId(1), |_| ());
    }

    #[test]
    fn core_local_cross_thread() {
        let cl = Arc::new(CoreLocal::new(2, |_| 0u64));
        let handles: Vec<_> = (0..2u32)
            .map(|i| {
                let cl = Arc::clone(&cl);
                std::thread::spawn(move || {
                    let _b = bind(CoreId(i));
                    for _ in 0..1000 {
                        cl.with(|v| *v += 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let _b = bind(CoreId(0));
        cl.with(|v| assert_eq!(*v, 1000));
    }
}
