//! Non-preemptive event-driven execution (§3.2 of the paper).
//!
//! Each core runs one event loop. Handlers run to completion — never
//! preempted, never migrated — which is what lets per-core data
//! structures be accessed without synchronization throughout the system.
//!
//! The dispatch algorithm reproduces the paper's starvation-avoidance
//! loop. After an event completes the manager:
//!
//! 1. handles any pending hardware interrupts (and expired timers),
//! 2. dispatches *one* synthetic (spawned) event, if any,
//! 3. invokes all registered idle handlers,
//! 4. halts (parks) — unless any of the above ran a handler, in which
//!    case it starts again at 1.
//!
//! Hardware interrupts and synthetic events therefore get priority over
//! repeatedly-invoked idle handlers, while idle handlers (the mechanism
//! behind adaptive device polling) still run whenever the core would
//! otherwise idle.
//!
//! Cooperative blocking (§3.2 "save and restore event state"): an event
//! may [`EventManager::save_context`], which suspends its stack, hands
//! the event loop to a successor thread, and resumes when another event
//! [`EventContext::activate`]s it. [`block_on`] packages this into
//! blocking semantics over [`crate::future::Future`].

use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use crate::rcu::CoreEpoch;

use crossbeam::queue::SegQueue;
use parking_lot::{Condvar, Mutex};

use crate::clock::{Clock, Ns, DEFAULT_TIMER_TICK_SHIFT};
use crate::cpu::{self, CoreId};
use crate::future::{FutResult, Future};
use crate::timer::{TimerWheel, TimerWheelStats};

pub use crate::timer::TimerToken;

/// A one-shot event handler, local to a core.
pub type EventHandler = Box<dyn FnOnce() + 'static>;
/// A one-shot event handler that may cross cores.
pub type SendEventHandler = Box<dyn FnOnce() + Send + 'static>;

/// An interrupt vector number allocated from an [`EventManager`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct InterruptVector(pub u32);

/// Token identifying a registered idle handler.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IdleToken(u64);

/// What a single dispatch pass accomplished.
#[derive(Clone, Copy, Default, Debug)]
pub struct Progress {
    /// Hardware interrupts (and expired timers) handled.
    pub interrupts: usize,
    /// Whether a synthetic event was dispatched.
    pub synthetic: bool,
    /// Idle handlers that reported doing useful work.
    pub idle_work: usize,
    /// Idle handlers invoked.
    pub idle_invoked: usize,
}

impl Progress {
    /// Whether any handler was invoked at all.
    pub fn any(&self) -> bool {
        self.interrupts > 0 || self.synthetic || self.idle_invoked > 0
    }

    /// Whether any non-idle handler ran (interrupts get priority; the
    /// run loop restarts its pass when this is true).
    pub fn any_priority(&self) -> bool {
        self.interrupts > 0 || self.synthetic
    }
}

/// Cumulative dispatch statistics, readable from any thread.
#[derive(Default)]
pub struct EventStats {
    /// Hardware interrupt handlers invoked.
    pub interrupts: AtomicU64,
    /// Synthetic events dispatched.
    pub synthetic: AtomicU64,
    /// Timer handlers fired.
    pub timers: AtomicU64,
    /// Idle handler invocations.
    pub idle: AtomicU64,
}

/// The timer wheel's handler payload: a one-shot boxed closure
/// (consumed when the timer fires) or a persistent `Rc` closure that
/// survives firings and is re-armed with [`EventManager::reset_timer`].
enum TimerFn {
    Once(EventHandler),
    Persistent(Rc<dyn Fn()>),
}

/// A lock-free slot holding at most one `Arc<T>`, swapped with single
/// atomic operations — no mutex on the reader or writer path.
///
/// `Arc<dyn Fn>` is a fat pointer, so the slot stores a thin pointer to
/// a boxed `Arc` (the standard double-indirection trick). Ownership is
/// always exclusive: every access *takes* the value out with a `swap`,
/// so no thread ever dereferences a pointer another thread might free.
/// Callers take, use, and put the value back with a compare-exchange
/// that fails harmlessly if somebody registered a new value meanwhile.
///
/// The liveness contract for wakers: a caller that takes the slot and
/// finds it empty may skip the wake *only because* whoever holds the
/// value always invokes it before restoring, and the event loop
/// re-registers its waker and re-checks its queues before parking (the
/// classic register-then-check pattern), so a push that raced an
/// in-flight wake is observed either by that wake or by the pre-park
/// check.
pub(crate) struct AtomicArcCell<T: ?Sized> {
    ptr: AtomicPtr<Arc<T>>,
}

impl<T: ?Sized> AtomicArcCell<T> {
    fn new() -> Self {
        AtomicArcCell {
            ptr: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Installs `value`, dropping whatever was in the slot.
    fn store(&self, value: Arc<T>) {
        let new = Box::into_raw(Box::new(value));
        let old = self.ptr.swap(new, Ordering::AcqRel);
        if !old.is_null() {
            // SAFETY: the swap transferred exclusive ownership of `old`
            // to us; no other thread can still reach it.
            drop(unsafe { Box::from_raw(old) });
        }
    }

    /// Takes the value out, leaving the slot empty.
    fn take(&self) -> Option<Arc<T>> {
        let p = self.ptr.swap(std::ptr::null_mut(), Ordering::AcqRel);
        if p.is_null() {
            None
        } else {
            // SAFETY: as in `store` — the swap made us the sole owner.
            Some(*unsafe { Box::from_raw(p) })
        }
    }

    /// Puts a previously taken value back if the slot is still empty;
    /// if a new value was registered meanwhile, the old one is dropped.
    fn restore(&self, value: Arc<T>) {
        let new = Box::into_raw(Box::new(value));
        if self
            .ptr
            .compare_exchange(
                std::ptr::null_mut(),
                new,
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_err()
        {
            // SAFETY: the CAS failed, so `new` never became reachable
            // by any other thread; we still own it.
            drop(unsafe { Box::from_raw(new) });
        }
    }
}

impl<T: ?Sized> Drop for AtomicArcCell<T> {
    fn drop(&mut self) {
        self.take();
    }
}

// SAFETY: the cell hands out the Arc only through ownership-transferring
// swaps; Arc<T> with T: Send + Sync is itself Send + Sync.
unsafe impl<T: ?Sized + Send + Sync> Send for AtomicArcCell<T> {}
// SAFETY: as above.
unsafe impl<T: ?Sized + Send + Sync> Sync for AtomicArcCell<T> {}

/// State shared between the owning core and remote producers.
pub(crate) struct EmShared {
    core: CoreId,
    remote: SegQueue<SendEventHandler>,
    interrupts: SegQueue<u32>,
    /// Wake callback for a halted core. Lock-free: the cross-core spawn
    /// path takes the `Arc` with one atomic swap, invokes it, and CASes
    /// it back — the last mutex on that path is gone (ROADMAP item).
    waker: AtomicArcCell<dyn Fn() + Send + Sync>,
    successor: AtomicArcCell<dyn Fn() + Send + Sync>,
    /// Quiescence state shared with the machine's RCU domain: bumped at
    /// every event boundary, flagged during handler execution.
    epoch: Arc<CoreEpoch>,
    exit: AtomicBool,
}

impl EmShared {
    fn wake(&self) {
        if let Some(w) = self.waker.take() {
            w();
            self.waker.restore(w);
        }
        // Empty slot: either no waker was ever registered, or another
        // thread is mid-wake / the owner is mid-re-register — both end
        // with a wake delivered or the owner re-checking its queues
        // before parking (see AtomicArcCell's liveness contract).
    }

    fn push_remote(&self, f: SendEventHandler) {
        self.remote.push(f);
        self.wake();
    }
}

/// Owner-only state: touched exclusively by the thread currently bound
/// to this manager's core.
struct EmOwned {
    local: VecDeque<EventHandler>,
    vectors: Vec<Option<Rc<dyn Fn()>>>,
    free_vectors: Vec<u32>,
    idle: Vec<(u64, Rc<dyn Fn() -> bool>)>,
    /// One-shot callbacks run at the next idle dispatch stage, then
    /// discarded — deferred housekeeping (the buffer-pool mailbox
    /// sweep) that must not keep the core polling afterwards.
    idle_once: Vec<EventHandler>,
    next_idle_token: u64,
    timers: TimerWheel<TimerFn>,
    pending_handoff: Option<EventContext>,
}

/// Cell holding owner-only state with a dynamic single-core ownership
/// check (see [`crate::cpu::CoreLocal`] for the access rules).
struct OwnedByCore<T> {
    core: CoreId,
    value: UnsafeCell<T>,
    borrowed: Cell<bool>,
}

// SAFETY: the contents are deliberately non-Send (Rc handlers, local
// closures) yet move between loop-runner threads across cooperative-
// blocking handoffs. This is sound because the handoff protocol
// guarantees (a) at most one thread is dispatching for the core at any
// instant, so no two threads ever touch the value concurrently, and (b)
// every transfer of the dispatching role synchronizes through
// EventContext's mutex (successor spawn / signal), establishing
// happens-before between the old and new runner's accesses. Access is
// additionally gated on the calling thread being bound to `core`, and
// the `borrowed` flag excludes re-entrant aliasing.
unsafe impl<T> Sync for OwnedByCore<T> {}
// SAFETY: as above — transfers are synchronized by the handoff protocol.
unsafe impl<T> Send for OwnedByCore<T> {}

impl<T> OwnedByCore<T> {
    fn new(core: CoreId, value: T) -> Self {
        OwnedByCore {
            core,
            value: UnsafeCell::new(value),
            borrowed: Cell::new(false),
        }
    }

    #[inline]
    fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        assert_eq!(
            cpu::try_current(),
            Some(self.core),
            "EventManager owner state accessed off-core"
        );
        assert!(!self.borrowed.get(), "re-entrant EventManager access");
        self.borrowed.set(true);
        struct Reset<'a>(&'a Cell<bool>);
        impl Drop for Reset<'_> {
            fn drop(&mut self) {
                self.0.set(false);
            }
        }
        let _r = Reset(&self.borrowed);
        // SAFETY: see the `Sync` impl above; checks just performed.
        let v = unsafe { &mut *self.value.get() };
        f(v)
    }
}

/// Per-core event manager: dispatch loop state, interrupt vectors,
/// synthetic event queues, timers and idle handlers.
pub struct EventManager {
    clock: Arc<dyn Clock>,
    shared: Arc<EmShared>,
    owned: OwnedByCore<EmOwned>,
    /// Dispatch statistics.
    pub stats: EventStats,
}

impl EventManager {
    /// Creates the manager for `core`, reading time from `clock` and
    /// reporting event boundaries to `epoch` (the core's slice of the
    /// machine's RCU domain).
    pub fn new(core: CoreId, clock: Arc<dyn Clock>, epoch: Arc<CoreEpoch>) -> Self {
        EventManager {
            clock,
            shared: Arc::new(EmShared {
                core,
                remote: SegQueue::new(),
                interrupts: SegQueue::new(),
                waker: AtomicArcCell::new(),
                successor: AtomicArcCell::new(),
                epoch,
                exit: AtomicBool::new(false),
            }),
            owned: OwnedByCore::new(
                core,
                EmOwned {
                    local: VecDeque::new(),
                    vectors: Vec::new(),
                    free_vectors: Vec::new(),
                    idle: Vec::new(),
                    idle_once: Vec::new(),
                    next_idle_token: 0,
                    timers: {
                        // Stamp the wheel with its core so that, in
                        // debug builds, a token used against another
                        // core's manager asserts instead of silently
                        // no-opping or colliding.
                        let mut w = TimerWheel::new(DEFAULT_TIMER_TICK_SHIFT);
                        w.set_owner(core.0);
                        w
                    },
                    pending_handoff: None,
                },
            ),
            stats: EventStats::default(),
        }
    }

    /// The core this manager serves.
    pub fn core(&self) -> CoreId {
        self.shared.core
    }

    /// Current time according to this manager's clock.
    pub fn now_ns(&self) -> Ns {
        self.clock.now_ns()
    }

    // --- Spawning ------------------------------------------------------

    /// Queues a synthetic event on this core from the owning core itself
    /// (non-`Send` handlers allowed). Spawned events run exactly once.
    pub fn spawn_local(&self, f: impl FnOnce() + 'static) {
        self.owned.with(|o| o.local.push_back(Box::new(f)));
    }

    /// Queues a synthetic event on this core from any thread.
    ///
    /// The owner-core fast path keys on the bound core id alone, so this
    /// must only be called when a matching core id implies *this*
    /// manager — i.e. from this manager's own machine. Cross-machine
    /// callers go through [`Runtime::spawn`](crate::runtime::Runtime),
    /// which also checks runtime identity (under the simulated backend
    /// every machine has a `CoreId(0)`, and misclassifying a remote
    /// spawn as local would enqueue it without waking the target).
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) {
        if cpu::try_current() == Some(self.shared.core) {
            self.spawn_local(f);
        } else {
            self.spawn_remote(f);
        }
    }

    /// Queues a synthetic event on this core via the cross-thread path
    /// unconditionally: always lands in the remote queue and wakes the
    /// owner, even when the caller's bound core id happens to match.
    pub fn spawn_remote(&self, f: impl FnOnce() + Send + 'static) {
        self.shared.push_remote(Box::new(f));
    }

    /// Handle for cross-thread spawning without holding `&EventManager`.
    pub fn spawner(&self) -> Spawner {
        Spawner {
            shared: Arc::clone(&self.shared),
        }
    }

    // --- Interrupts ----------------------------------------------------

    /// Allocates an interrupt vector and binds `handler` to it (the
    /// paper's `EventManager` device-interrupt registration). Owner-core
    /// only.
    pub fn allocate_vector(&self, handler: impl Fn() + 'static) -> InterruptVector {
        self.owned.with(|o| {
            let h: Rc<dyn Fn()> = Rc::new(handler);
            if let Some(v) = o.free_vectors.pop() {
                o.vectors[v as usize] = Some(h);
                InterruptVector(v)
            } else {
                o.vectors.push(Some(h));
                InterruptVector((o.vectors.len() - 1) as u32)
            }
        })
    }

    /// Unbinds `vector`, allowing its number to be reused.
    pub fn free_vector(&self, vector: InterruptVector) {
        self.owned.with(|o| {
            o.vectors[vector.0 as usize] = None;
            o.free_vectors.push(vector.0);
        });
    }

    /// Returns a cross-thread handle that raises `vector` on this core —
    /// what a (simulated) device holds.
    pub fn interrupt_line(&self, vector: InterruptVector) -> InterruptLine {
        InterruptLine {
            shared: Arc::clone(&self.shared),
            vector,
        }
    }

    // --- Idle handlers --------------------------------------------------

    /// Registers a handler invoked whenever the core would otherwise
    /// idle; it returns whether it performed useful work. This is the
    /// polling primitive behind the adaptive NIC driver.
    pub fn add_idle_handler(&self, f: impl Fn() -> bool + 'static) -> IdleToken {
        self.owned.with(|o| {
            let token = o.next_idle_token;
            o.next_idle_token += 1;
            o.idle.push((token, Rc::new(f)));
            IdleToken(token)
        })
    }

    /// Removes a previously registered idle handler.
    pub fn remove_idle_handler(&self, token: IdleToken) {
        self.owned.with(|o| {
            o.idle.retain(|(t, _)| *t != token.0);
        });
    }

    /// Queues `f` to run **once**, at this core's next idle dispatch
    /// stage (after all pending interrupts, timers and synthetic events
    /// of that pass). Unlike [`Self::add_idle_handler`], the callback
    /// does not persist, so it never turns the core into a poller — the
    /// shape for deferred housekeeping such as the buffer pool's
    /// mailbox sweep. Owner-core only.
    pub fn add_idle_once(&self, f: impl FnOnce() + 'static) {
        self.owned.with(|o| o.idle_once.push(Box::new(f)));
    }

    /// Depth of this core's event backlog: synthetic events queued
    /// locally and from other cores, plus pending interrupt
    /// deliveries — not counting the event currently executing. The
    /// overload-control signal: a core whose backlog stays non-zero
    /// across passes is falling behind its arrival rate; deadline
    /// shedders consult this when choosing LIFO service order.
    pub fn backlog_depth(&self) -> usize {
        self.owned.with(|o| o.local.len()) + self.shared.remote.len() + self.shared.interrupts.len()
    }

    /// Whether any idle handlers are installed (a polling core must spin
    /// rather than halt) or one-shot idle callbacks are still queued.
    pub fn has_idle_handlers(&self) -> bool {
        self.owned
            .with(|o| !o.idle.is_empty() || !o.idle_once.is_empty())
    }

    // --- Timers ---------------------------------------------------------
    //
    // Timers live in a hashed hierarchical wheel ([`crate::timer`]):
    // arm, cancel and re-arm are all O(1), and cancellation frees the
    // entry (and its handler) immediately — there is no tombstone set.

    /// Arms a one-shot timer `delay_ns` from now. The handler is
    /// consumed when it fires; the token then goes stale.
    pub fn set_timer(&self, delay_ns: Ns, f: impl FnOnce() + 'static) -> TimerToken {
        let deadline = self.clock.now_ns() + delay_ns;
        self.owned
            .with(|o| o.timers.schedule(deadline, TimerFn::Once(Box::new(f))))
    }

    /// Creates a *persistent* timer armed `delay_ns` from now. Firing
    /// parks it (handler retained) instead of destroying it; re-arm it
    /// with [`Self::reset_timer`] — an O(1), allocation-free operation —
    /// and free it with [`Self::cancel_timer`]. This is what lets the
    /// TCP layer keep one timer per connection and reset it per ACK
    /// instead of boxing a fresh closure per segment.
    pub fn set_persistent_timer(&self, delay_ns: Ns, f: impl Fn() + 'static) -> TimerToken {
        let deadline = self.clock.now_ns() + delay_ns;
        self.owned
            .with(|o| o.timers.schedule(deadline, TimerFn::Persistent(Rc::new(f))))
    }

    /// Re-arms `token` to fire `delay_ns` from now, whether it is
    /// currently pending, already due (pulled back out), or parked
    /// after a persistent firing. O(1); no allocation. Returns `false`
    /// if the token is stale (one-shot already fired, or cancelled).
    pub fn reset_timer(&self, token: TimerToken, delay_ns: Ns) -> bool {
        let deadline = self.clock.now_ns() + delay_ns;
        self.owned.with(|o| o.timers.arm(token, deadline))
    }

    /// The reset-or-create idiom for owner-managed persistent timers:
    /// re-arms `token` if it is still live (the steady state — O(1),
    /// no allocation; `f` goes unused), otherwise creates a fresh
    /// persistent timer from `f`. Returns the token the caller should
    /// hold, which equals `token` whenever the reset succeeded.
    pub fn arm_persistent_timer(
        &self,
        token: Option<TimerToken>,
        delay_ns: Ns,
        f: impl Fn() + 'static,
    ) -> TimerToken {
        if let Some(tok) = token {
            if self.reset_timer(tok, delay_ns) {
                return tok;
            }
        }
        self.set_persistent_timer(delay_ns, f)
    }

    /// Unschedules `token` without freeing it: the handler is retained
    /// and the timer can be re-armed with [`Self::reset_timer`].
    /// Returns `false` if the token is stale.
    pub fn disarm_timer(&self, token: TimerToken) -> bool {
        self.owned.with(|o| o.timers.disarm(token))
    }

    /// Cancels a timer, freeing its entry and handler immediately; a
    /// stale token (timer already fired and one-shot) is a no-op.
    pub fn cancel_timer(&self, token: TimerToken) {
        self.owned.with(|o| {
            o.timers.remove(token);
        });
    }

    /// Whether `token` is scheduled to fire.
    pub fn timer_armed(&self, token: TimerToken) -> bool {
        self.owned.with(|o| o.timers.is_scheduled(token))
    }

    /// Timer-subsystem counters (pending/live entries, slab size,
    /// cascade count) — used by tests and benches to assert the
    /// no-tombstone and one-entry-per-connection properties.
    pub fn timer_stats(&self) -> TimerWheelStats {
        self.owned.with(|o| o.timers.stats())
    }

    /// Per-entry slab cost of this core's timer wheel (hot SoA entry
    /// plus cold handler slot) — the figure per-connection memory
    /// accounting charges for each parked persistent timer.
    pub fn timer_entry_bytes() -> usize {
        TimerWheel::<TimerFn>::entry_bytes()
    }

    /// A lower bound on the next timer firing time: exact for a due
    /// timer or one within the wheel's finest level, otherwise the
    /// start of the slot holding the earliest timer (the halt/park
    /// decision needs only a bound that is sound and strictly in the
    /// future; the scan reads one occupancy word per level). `None` if
    /// no timer is pending.
    pub fn next_timer_deadline(&self) -> Option<Ns> {
        let now = self.clock.now_ns();
        self.owned.with(|o| o.timers.next_deadline(now))
    }

    // --- Dispatch --------------------------------------------------------

    /// Runs one pass of the dispatch algorithm (steps 1–3 of the module
    /// docs). The caller loops while [`Progress::any`] and halts/parks
    /// otherwise.
    pub fn run_once(&self) -> Progress {
        let mut progress = Progress {
            interrupts: self.dispatch_interrupts() + self.dispatch_expired_timers(),
            ..Progress::default()
        };
        progress.synthetic = self.dispatch_one_synthetic();
        if !progress.any_priority() {
            let (invoked, worked) = self.dispatch_idle();
            progress.idle_invoked = invoked;
            progress.idle_work = worked;
        }
        progress
    }

    /// Drains every immediately runnable event (interrupts, timers,
    /// synthetic). Used by tests and the simulated backend to reach
    /// quiescence after an injection. Returns handlers run.
    pub fn drain(&self) -> usize {
        let mut total = 0;
        loop {
            let mut ran = self.dispatch_interrupts();
            ran += self.dispatch_expired_timers();
            if self.dispatch_one_synthetic() {
                ran += 1;
            }
            if ran == 0 {
                return total;
            }
            total += ran;
        }
    }

    fn dispatch_interrupts(&self) -> usize {
        let mut n = 0;
        while let Some(v) = self.shared.interrupts.pop() {
            let handler = self
                .owned
                .with(|o| o.vectors.get(v as usize).and_then(|h| h.clone()));
            if let Some(h) = handler {
                self.invoke(|| h());
                self.stats.interrupts.fetch_add(1, Ordering::Relaxed);
                n += 1;
            }
        }
        n
    }

    fn dispatch_expired_timers(&self) -> usize {
        let now = self.clock.now_ns();
        let mut n = 0;
        loop {
            // Pop under the owner borrow, invoke outside it (handlers
            // re-enter the manager to arm/cancel timers). A handler
            // arming a past-deadline timer queues it for this same
            // loop, in (deadline, arm-order) order — exactly the old
            // heap's semantics.
            enum Fire {
                Once(EventHandler),
                Persistent(Rc<dyn Fn()>),
            }
            let fired = self.owned.with(|o| {
                o.timers.advance(now);
                let (token, _deadline) = o.timers.pop_expired()?;
                match o.timers.handler(token) {
                    Some(TimerFn::Persistent(f)) => Some(Fire::Persistent(Rc::clone(f))),
                    Some(TimerFn::Once(_)) => match o.timers.remove(token) {
                        Some(TimerFn::Once(h)) => Some(Fire::Once(h)),
                        _ => unreachable!("one-shot entry changed kind"),
                    },
                    None => unreachable!("expired entry has no handler"),
                }
            });
            match fired {
                None => return n,
                Some(Fire::Once(h)) => self.invoke(h),
                Some(Fire::Persistent(f)) => self.invoke(move || f()),
            }
            self.stats.timers.fetch_add(1, Ordering::Relaxed);
            n += 1;
        }
    }

    fn dispatch_one_synthetic(&self) -> bool {
        // Local (same-core) events first, then remote arrivals.
        let ev = self
            .owned
            .with(|o| o.local.pop_front())
            .map(|f| f as EventHandler)
            .or_else(|| self.shared.remote.pop().map(|f| f as EventHandler));
        match ev {
            Some(f) => {
                self.invoke(f);
                self.stats.synthetic.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    fn dispatch_idle(&self) -> (usize, usize) {
        // One-shot callbacks first: they run exactly once and count as
        // useful work (they exist to move state, not to poll).
        let once = self.owned.with(|o| std::mem::take(&mut o.idle_once));
        let mut worked = once.len();
        let mut invoked = once.len();
        for h in once {
            self.invoke(h);
            self.stats.idle.fetch_add(1, Ordering::Relaxed);
        }
        let handlers = self.owned.with(|o| o.idle.clone());
        invoked += handlers.len();
        for (_, h) in &handlers {
            let did = {
                let mut result = false;
                self.invoke(|| result = h());
                result
            };
            if did {
                worked += 1;
            }
            self.stats.idle.fetch_add(1, Ordering::Relaxed);
        }
        (invoked, worked)
    }

    /// Runs one handler with event bookkeeping (in-event flag for RCU,
    /// quiescence bump at the boundary).
    fn invoke(&self, f: impl FnOnce()) {
        self.shared.epoch.enter();
        f();
        // Event boundary: quiescent state for RCU.
        self.shared.epoch.exit_quiescent();
    }

    // --- Loop control ----------------------------------------------------

    /// Installs the callback used to wake a halted core (threaded
    /// backend: unpark; simulated backend: schedule a poll event).
    /// Lock-free; re-registering the same `Arc` (which the loop runner
    /// does every pass) is recognized and costs two atomic ops, no
    /// allocation.
    pub fn register_waker(&self, waker: Arc<dyn Fn() + Send + Sync>) {
        if let Some(current) = self.shared.waker.take() {
            if Arc::ptr_eq(&current, &waker) {
                self.shared.waker.restore(current);
                return;
            }
        }
        self.shared.waker.store(waker);
    }

    /// Installs the callback that spawns a successor loop runner,
    /// enabling [`Self::save_context`]. Only the threaded backend sets
    /// this.
    pub fn register_successor_spawner(&self, spawner: Arc<dyn Fn() + Send + Sync>) {
        self.shared.successor.store(spawner);
    }

    /// Requests loop exit (machine shutdown) and wakes the core.
    pub fn request_exit(&self) {
        self.shared.exit.store(true, Ordering::Release);
        self.shared.wake();
    }

    /// Whether exit has been requested.
    pub fn exit_requested(&self) -> bool {
        self.shared.exit.load(Ordering::Acquire)
    }

    /// Whether any immediately runnable work is queued. Cross-core
    /// callers see only the shared queues (interrupts, remote spawns);
    /// the owning core additionally sees local events and due timers.
    pub fn pending_work(&self) -> bool {
        if !self.shared.interrupts.is_empty() || !self.shared.remote.is_empty() {
            return true;
        }
        if cpu::try_current() != Some(self.shared.core) {
            return false;
        }
        let timer_due = self
            .next_timer_deadline()
            .is_some_and(|d| d <= self.clock.now_ns());
        timer_due || self.owned.with(|o| !o.local.is_empty())
    }

    /// Event-boundary counter (used by RCU grace-period detection).
    pub fn quiescent_count(&self) -> u64 {
        self.shared.epoch.count()
    }

    /// Whether a handler is currently executing on this core.
    pub fn in_event(&self) -> bool {
        self.shared.epoch.in_event()
    }

    // --- Cooperative blocking (save/restore event state) -----------------

    /// Suspends the current event, handing the loop to a successor
    /// thread. `setup` receives the [`EventContext`] and must arrange for
    /// [`EventContext::activate`] to be called eventually; `save_context`
    /// returns when that happens.
    ///
    /// # Panics
    ///
    /// Panics if called off the owning core or on a backend without a
    /// successor spawner (the simulated backend — use futures there).
    pub fn save_context(&self, setup: impl FnOnce(EventContext)) {
        assert_eq!(
            cpu::try_current(),
            Some(self.shared.core),
            "save_context off-core"
        );
        let spawner =
            self.shared.successor.take().expect(
                "save_context requires the threaded backend (no successor spawner installed)",
            );
        // Put it straight back: save_context runs on the owning core,
        // so the only concurrent access is a (boot-time) re-register,
        // which `restore` yields to.
        self.shared.successor.restore(Arc::clone(&spawner));
        let ctx = EventContext {
            inner: Arc::new(CtxInner {
                resumed: Mutex::new(false),
                cv: Condvar::new(),
            }),
            shared: Arc::clone(&self.shared),
        };
        setup(ctx.clone());
        // Hand the loop to a successor; this thread stops dispatching
        // until resumed.
        spawner();
        ctx.wait();
    }

    /// Called (on the owning core) by the resume event to transfer the
    /// loop back to a saved context after the current pass.
    fn set_pending_handoff(&self, ctx: EventContext) {
        self.owned.with(|o| {
            assert!(o.pending_handoff.is_none(), "double handoff");
            o.pending_handoff = Some(ctx);
        });
    }

    /// Takes a pending handoff, if any; the loop runner signals it and
    /// stops dispatching.
    pub fn take_handoff(&self) -> Option<EventContext> {
        self.owned.with(|o| o.pending_handoff.take())
    }
}

/// Cross-thread handle for queueing synthetic events on a core.
#[derive(Clone)]
pub struct Spawner {
    shared: Arc<EmShared>,
}

impl Spawner {
    /// Queues `f` on the target core.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) {
        self.shared.push_remote(Box::new(f));
    }

    /// The core this spawner targets.
    pub fn core(&self) -> CoreId {
        self.shared.core
    }
}

/// Cross-thread handle a device uses to raise an interrupt on a core.
#[derive(Clone)]
pub struct InterruptLine {
    shared: Arc<EmShared>,
    vector: InterruptVector,
}

impl InterruptLine {
    /// Raises the interrupt: queues the vector and wakes the core.
    pub fn raise(&self) {
        self.shared.interrupts.push(self.vector.0);
        self.shared.wake();
    }

    /// The vector this line raises.
    pub fn vector(&self) -> InterruptVector {
        self.vector
    }
}

struct CtxInner {
    resumed: Mutex<bool>,
    cv: Condvar,
}

/// A saved event context: the suspended state of an event that called
/// [`EventManager::save_context`].
#[derive(Clone)]
pub struct EventContext {
    inner: Arc<CtxInner>,
    shared: Arc<EmShared>,
}

impl EventContext {
    /// Schedules the saved event to resume on its owning core. May be
    /// called from any thread; the suspended stack continues executing
    /// once the core's current dispatch pass completes.
    pub fn activate(self) {
        let core = self.shared.core;
        let shared = Arc::clone(&self.shared);
        shared.push_remote(Box::new(move || {
            crate::runtime::with_current(|rt| {
                rt.event_manager(core).set_pending_handoff(self.clone());
            });
        }));
    }

    /// Signals the suspended thread to continue (runner side).
    pub fn signal(&self) {
        let mut resumed = self.inner.resumed.lock();
        *resumed = true;
        self.inner.cv.notify_all();
    }

    fn wait(&self) {
        let mut resumed = self.inner.resumed.lock();
        while !*resumed {
            self.inner.cv.wait(&mut resumed);
        }
    }
}

/// Blocks the current *event* (not the thread) until `fut` completes,
/// using context save/restore; outside an event loop it falls back to
/// thread blocking. This provides the Go-like concurrency model the
/// paper layers over events.
pub fn block_on<T: Send + 'static>(fut: Future<T>) -> FutResult<T> {
    // Fast path: already complete.
    let fut = match fut.try_take() {
        Ok(r) => return r,
        Err(f) => f,
    };
    let on_core = cpu::try_current().is_some() && crate::runtime::is_entered();
    if !on_core {
        return fut.block();
    }
    let result: Arc<Mutex<Option<FutResult<T>>>> = Arc::new(Mutex::new(None));
    let result2 = Arc::clone(&result);
    crate::runtime::with_current(|rt| {
        let em = rt.event_manager(cpu::current());
        em.save_context(move |ctx| {
            fut.then(move |ff| {
                *result2.lock() = Some(ff.get());
                ctx.activate();
                Ok(())
            });
        });
    });
    let r = result.lock().take();
    r.expect("context resumed without a result")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use std::sync::atomic::AtomicUsize;

    fn em() -> (EventManager, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let epoch = Arc::new(CoreEpoch::new());
        (EventManager::new(CoreId(0), clock.clone(), epoch), clock)
    }

    #[test]
    fn spawned_events_run_once_fifo() {
        let (em, _) = em();
        let _b = cpu::bind(CoreId(0));
        let log = Rc::new(std::cell::RefCell::new(Vec::new()));
        for i in 0..3 {
            let log = Rc::clone(&log);
            em.spawn_local(move || log.borrow_mut().push(i));
        }
        // One synthetic per pass.
        assert!(em.run_once().synthetic);
        assert_eq!(*log.borrow(), vec![0]);
        em.drain();
        assert_eq!(*log.borrow(), vec![0, 1, 2]);
        assert_eq!(em.drain(), 0);
    }

    #[test]
    fn backlog_depth_tracks_queued_events_across_sources() {
        let (em, _) = em();
        let _b = cpu::bind(CoreId(0));
        assert_eq!(em.backlog_depth(), 0);
        em.spawn_local(|| ());
        em.spawn_local(|| ());
        em.spawn_remote(|| ());
        assert_eq!(em.backlog_depth(), 3);
        em.drain();
        assert_eq!(em.backlog_depth(), 0);
    }

    #[test]
    fn interrupts_preempt_synthetic_in_pass_order() {
        let (em, _) = em();
        let _b = cpu::bind(CoreId(0));
        let log = Rc::new(std::cell::RefCell::new(Vec::new()));
        let l2 = Rc::clone(&log);
        let vec = em.allocate_vector(move || l2.borrow_mut().push("irq"));
        let l3 = Rc::clone(&log);
        em.spawn_local(move || l3.borrow_mut().push("synth"));
        em.interrupt_line(vec).raise();
        em.run_once();
        // The interrupt ran before the synthetic event in the same pass.
        assert_eq!(*log.borrow(), vec!["irq", "synth"]);
    }

    #[test]
    fn idle_handlers_only_when_nothing_else() {
        let (em, _) = em();
        let _b = cpu::bind(CoreId(0));
        let idles = Rc::new(Cell::new(0));
        let i2 = Rc::clone(&idles);
        em.add_idle_handler(move || {
            i2.set(i2.get() + 1);
            false
        });
        em.spawn_local(|| ());
        let p = em.run_once();
        assert!(p.synthetic);
        assert_eq!(p.idle_invoked, 0, "idle must not run when events pending");
        let p = em.run_once();
        assert!(!p.synthetic);
        assert_eq!(p.idle_invoked, 1);
        assert_eq!(idles.get(), 1);
    }

    #[test]
    fn idle_once_runs_once_and_does_not_turn_core_into_poller() {
        let (em, _) = em();
        let _b = cpu::bind(CoreId(0));
        let hits = Rc::new(Cell::new(0));
        let h2 = Rc::clone(&hits);
        em.add_idle_once(move || h2.set(h2.get() + 1));
        assert!(
            em.has_idle_handlers(),
            "queued one-shot keeps the core serviced"
        );
        // Pending synthetic events take priority; the one-shot waits.
        em.spawn_local(|| ());
        let p = em.run_once();
        assert!(p.synthetic);
        assert_eq!(hits.get(), 0, "idle stage skipped while events pend");
        let p = em.run_once();
        assert_eq!(p.idle_invoked, 1);
        assert_eq!(p.idle_work, 1);
        assert_eq!(hits.get(), 1);
        assert!(!em.has_idle_handlers(), "consumed: the core may halt again");
        assert_eq!(em.run_once().idle_invoked, 0);
        assert_eq!(hits.get(), 1, "one-shot must not repeat");
    }

    #[test]
    fn idle_handler_remove() {
        let (em, _) = em();
        let _b = cpu::bind(CoreId(0));
        let token = em.add_idle_handler(|| false);
        assert!(em.has_idle_handlers());
        em.remove_idle_handler(token);
        assert!(!em.has_idle_handlers());
        assert_eq!(em.run_once().idle_invoked, 0);
    }

    #[test]
    fn timers_fire_in_deadline_order() {
        let (em, clock) = em();
        let _b = cpu::bind(CoreId(0));
        let log = Rc::new(std::cell::RefCell::new(Vec::new()));
        let (l1, l2) = (Rc::clone(&log), Rc::clone(&log));
        em.set_timer(200, move || l1.borrow_mut().push("late"));
        em.set_timer(100, move || l2.borrow_mut().push("early"));
        assert_eq!(em.next_timer_deadline(), Some(100));
        em.run_once();
        assert!(log.borrow().is_empty());
        clock.set(150);
        em.run_once();
        assert_eq!(*log.borrow(), vec!["early"]);
        clock.set(250);
        em.run_once();
        assert_eq!(*log.borrow(), vec!["early", "late"]);
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let (em, clock) = em();
        let _b = cpu::bind(CoreId(0));
        let fired = Rc::new(Cell::new(false));
        let f2 = Rc::clone(&fired);
        let t = em.set_timer(100, move || f2.set(true));
        em.cancel_timer(t);
        clock.set(200);
        em.run_once();
        assert!(!fired.get());
        assert_eq!(em.next_timer_deadline(), None);
    }

    #[test]
    fn reset_timer_pushes_deadline_out() {
        let (em, clock) = em();
        let _b = cpu::bind(CoreId(0));
        let fired = Rc::new(Cell::new(0u32));
        let f2 = Rc::clone(&fired);
        let t = em.set_timer(100, move || f2.set(f2.get() + 1));
        clock.set(50);
        assert!(em.reset_timer(t, 100)); // new deadline: 150
        clock.set(120);
        em.run_once();
        assert_eq!(fired.get(), 0, "old deadline must not fire");
        clock.set(150);
        em.run_once();
        assert_eq!(fired.get(), 1);
        // One-shot: the token is stale after firing.
        assert!(!em.reset_timer(t, 100));
        assert!(!em.timer_armed(t));
    }

    #[test]
    fn persistent_timer_survives_firing_and_rearms_without_alloc() {
        let (em, clock) = em();
        let _b = cpu::bind(CoreId(0));
        let fired = Rc::new(Cell::new(0u32));
        let f2 = Rc::clone(&fired);
        let t = em.set_persistent_timer(100, move || f2.set(f2.get() + 1));
        clock.set(100);
        em.run_once();
        assert_eq!(fired.get(), 1);
        // Still live (parked), not armed; the same entry re-arms.
        assert!(!em.timer_armed(t));
        assert_eq!(em.timer_stats().live, 1);
        assert!(em.reset_timer(t, 50));
        assert!(em.timer_armed(t));
        clock.set(150);
        em.run_once();
        assert_eq!(fired.get(), 2);
        em.cancel_timer(t);
        assert_eq!(em.timer_stats().live, 0);
        assert!(!em.reset_timer(t, 10), "cancelled token is stale");
    }

    #[test]
    fn disarm_suspends_without_freeing() {
        let (em, clock) = em();
        let _b = cpu::bind(CoreId(0));
        let fired = Rc::new(Cell::new(false));
        let f2 = Rc::clone(&fired);
        let t = em.set_persistent_timer(100, move || f2.set(true));
        assert!(em.disarm_timer(t));
        clock.set(500);
        em.run_once();
        assert!(!fired.get());
        assert_eq!(em.timer_stats().live, 1, "handler retained while parked");
        assert!(em.reset_timer(t, 100)); // deadline 600
        clock.set(600);
        em.run_once();
        assert!(fired.get());
        em.cancel_timer(t);
    }

    #[test]
    fn cancelled_timers_leave_no_tombstones() {
        // The old heap kept cancelled entries (and their boxed
        // handlers) until their deadline passed; the wheel frees them
        // on the spot — the leak class is gone by construction.
        let (em, clock) = em();
        let _b = cpu::bind(CoreId(0));
        let tokens: Vec<_> = (0..1000)
            .map(|i| em.set_timer(1_000_000 + i, move || ()))
            .collect();
        assert_eq!(em.timer_stats().live, 1000);
        for t in tokens {
            em.cancel_timer(t);
        }
        let stats = em.timer_stats();
        assert_eq!(stats.live, 0, "no entry survives its cancellation");
        assert_eq!(stats.pending, 0);
        assert_eq!(em.next_timer_deadline(), None);
        clock.set(2_000_000);
        assert_eq!(em.run_once().interrupts, 0, "nothing fires");
        // The freed entries are reused, not re-allocated.
        let _t = em.set_timer(10, || ());
        assert_eq!(em.timer_stats().slab, 1000);
    }

    #[test]
    fn timer_handler_can_arm_due_timer_for_same_drain() {
        // A handler arming an already-due timer gets it dispatched in
        // the same drain, in deadline order — the heap's semantics.
        let clock = Arc::new(ManualClock::new());
        let epoch = Arc::new(CoreEpoch::new());
        let em = Rc::new(EventManager::new(CoreId(0), clock.clone(), epoch));
        let _b = cpu::bind(CoreId(0));
        let log = Rc::new(std::cell::RefCell::new(Vec::new()));
        let (em2, l2) = (Rc::clone(&em), Rc::clone(&log));
        em.set_timer(100, move || {
            l2.borrow_mut().push(1);
            let l3 = Rc::clone(&l2);
            em2.set_timer(0, move || l3.borrow_mut().push(2));
        });
        clock.set(100);
        em.run_once();
        assert_eq!(*log.borrow(), vec![1, 2]);
    }

    #[test]
    fn waker_slot_swaps_without_locks() {
        let (em, _) = em();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let w: Arc<dyn Fn() + Send + Sync> = Arc::new(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        em.register_waker(Arc::clone(&w));
        // Re-registering the same Arc is the loop's per-pass pattern.
        em.register_waker(Arc::clone(&w));
        let spawner = em.spawner();
        spawner.spawn(|| ());
        assert_eq!(hits.load(Ordering::SeqCst), 1, "push wakes exactly once");
        // Replace with a fresh waker; the old one must not fire again.
        let h2 = Arc::new(AtomicUsize::new(0));
        let h3 = Arc::clone(&h2);
        em.register_waker(Arc::new(move || {
            h3.fetch_add(1, Ordering::SeqCst);
        }));
        spawner.spawn(|| ());
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(h2.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_wakes_and_registers_are_safe() {
        let (em, _) = em();
        let hits = Arc::new(AtomicUsize::new(0));
        let spawner = em.spawner();
        let mut threads = Vec::new();
        for _ in 0..4 {
            let s = spawner.clone();
            threads.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    s.spawn(|| ());
                }
            }));
        }
        for _ in 0..4 {
            let h = Arc::clone(&hits);
            let em_waker: Arc<dyn Fn() + Send + Sync> = Arc::new(move || {
                h.fetch_add(1, Ordering::SeqCst);
            });
            // Racing re-registration against the wakers.
            em.register_waker(Arc::clone(&em_waker));
        }
        for t in threads {
            t.join().unwrap();
        }
        let _b = cpu::bind(CoreId(0));
        assert_eq!(em.drain(), 2000, "no spawn lost despite waker races");
    }

    #[test]
    fn quiescent_counter_bumps_per_event() {
        let (em, _) = em();
        let _b = cpu::bind(CoreId(0));
        let q0 = em.quiescent_count();
        em.spawn_local(|| ());
        em.spawn_local(|| ());
        em.drain();
        assert_eq!(em.quiescent_count(), q0 + 2);
    }

    #[test]
    fn remote_spawn_crosses_threads() {
        let (em, _) = em();
        let spawner = em.spawner();
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        std::thread::spawn(move || {
            spawner.spawn(move || {
                c2.fetch_add(1, Ordering::SeqCst);
            });
        })
        .join()
        .unwrap();
        let _b = cpu::bind(CoreId(0));
        em.drain();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn interrupt_line_from_device_thread() {
        let (em, _) = em();
        let _b = cpu::bind(CoreId(0));
        let hits = Rc::new(Cell::new(0));
        let h2 = Rc::clone(&hits);
        let v = em.allocate_vector(move || h2.set(h2.get() + 1));
        let line = em.interrupt_line(v);
        std::thread::spawn(move || {
            line.raise();
            line.raise();
        })
        .join()
        .unwrap();
        em.drain();
        assert_eq!(hits.get(), 2);
    }

    #[test]
    fn freed_vector_is_reused_and_unbound() {
        let (em, _) = em();
        let _b = cpu::bind(CoreId(0));
        let v1 = em.allocate_vector(|| ());
        em.free_vector(v1);
        let line = em.interrupt_line(v1);
        line.raise();
        // No handler bound: raising is harmless and dispatches nothing.
        assert_eq!(em.run_once().interrupts, 0);
        let v2 = em.allocate_vector(|| ());
        assert_eq!(v1, v2);
    }

    #[test]
    fn nested_spawn_from_handler() {
        let (em, _) = em();
        let _b = cpu::bind(CoreId(0));
        let done = Arc::new(AtomicBool::new(false));
        let d = Arc::clone(&done);
        let spawner = em.spawner();
        em.spawn_local(move || {
            let d = Arc::clone(&d);
            spawner.spawn(move || d.store(true, Ordering::SeqCst));
        });
        em.drain();
        assert!(done.load(Ordering::SeqCst));
    }

    #[test]
    fn pending_work_reflects_queues_and_timers() {
        let (em, clock) = em();
        let _b = cpu::bind(CoreId(0));
        assert!(!em.pending_work());
        em.spawn_local(|| ());
        assert!(em.pending_work());
        em.drain();
        assert!(!em.pending_work());
        em.set_timer(100, || ());
        assert!(!em.pending_work());
        clock.set(100);
        assert!(em.pending_work());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "cross-core timer use")]
    fn cross_core_timer_token_asserts_in_debug() {
        // The ARP-continuation class of bug: a timer token minted on
        // one core's manager used against another core's. Must assert,
        // not silently no-op or collide.
        let clock = Arc::new(ManualClock::new());
        let em0 = EventManager::new(CoreId(0), clock.clone(), Arc::new(CoreEpoch::new()));
        let em1 = EventManager::new(CoreId(1), clock, Arc::new(CoreEpoch::new()));
        let token = {
            let _b = cpu::bind(CoreId(0));
            em0.set_persistent_timer(100, || ())
        };
        let _b = cpu::bind(CoreId(1));
        em1.reset_timer(token, 100);
    }

    #[test]
    fn exit_flag() {
        let (em, _) = em();
        assert!(!em.exit_requested());
        em.request_exit();
        assert!(em.exit_requested());
    }
}
