//! Non-preemptive event-driven execution (§3.2 of the paper).
//!
//! Each core runs one event loop. Handlers run to completion — never
//! preempted, never migrated — which is what lets per-core data
//! structures be accessed without synchronization throughout the system.
//!
//! The dispatch algorithm reproduces the paper's starvation-avoidance
//! loop. After an event completes the manager:
//!
//! 1. handles any pending hardware interrupts (and expired timers),
//! 2. dispatches *one* synthetic (spawned) event, if any,
//! 3. invokes all registered idle handlers,
//! 4. halts (parks) — unless any of the above ran a handler, in which
//!    case it starts again at 1.
//!
//! Hardware interrupts and synthetic events therefore get priority over
//! repeatedly-invoked idle handlers, while idle handlers (the mechanism
//! behind adaptive device polling) still run whenever the core would
//! otherwise idle.
//!
//! Cooperative blocking (§3.2 "save and restore event state"): an event
//! may [`EventManager::save_context`], which suspends its stack, hands
//! the event loop to a successor thread, and resumes when another event
//! [`EventContext::activate`]s it. [`block_on`] packages this into
//! blocking semantics over [`crate::future::Future`].

use std::cell::{Cell, UnsafeCell};
use std::collections::{BinaryHeap, HashSet, VecDeque};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::rcu::CoreEpoch;

use crossbeam::queue::SegQueue;
use parking_lot::{Condvar, Mutex};

use crate::clock::{Clock, Ns};
use crate::cpu::{self, CoreId};
use crate::future::{FutResult, Future};

/// A one-shot event handler, local to a core.
pub type EventHandler = Box<dyn FnOnce() + 'static>;
/// A one-shot event handler that may cross cores.
pub type SendEventHandler = Box<dyn FnOnce() + Send + 'static>;

/// An interrupt vector number allocated from an [`EventManager`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct InterruptVector(pub u32);

/// Token identifying a registered idle handler.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IdleToken(u64);

/// Token identifying a pending timer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TimerToken(u64);

/// What a single dispatch pass accomplished.
#[derive(Clone, Copy, Default, Debug)]
pub struct Progress {
    /// Hardware interrupts (and expired timers) handled.
    pub interrupts: usize,
    /// Whether a synthetic event was dispatched.
    pub synthetic: bool,
    /// Idle handlers that reported doing useful work.
    pub idle_work: usize,
    /// Idle handlers invoked.
    pub idle_invoked: usize,
}

impl Progress {
    /// Whether any handler was invoked at all.
    pub fn any(&self) -> bool {
        self.interrupts > 0 || self.synthetic || self.idle_invoked > 0
    }

    /// Whether any non-idle handler ran (interrupts get priority; the
    /// run loop restarts its pass when this is true).
    pub fn any_priority(&self) -> bool {
        self.interrupts > 0 || self.synthetic
    }
}

/// Cumulative dispatch statistics, readable from any thread.
#[derive(Default)]
pub struct EventStats {
    /// Hardware interrupt handlers invoked.
    pub interrupts: AtomicU64,
    /// Synthetic events dispatched.
    pub synthetic: AtomicU64,
    /// Timer handlers fired.
    pub timers: AtomicU64,
    /// Idle handler invocations.
    pub idle: AtomicU64,
}

struct TimerEntry {
    deadline: Ns,
    seq: u64,
    token: u64,
    handler: EventHandler,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse order: BinaryHeap is a max-heap, we want earliest first.
        other
            .deadline
            .cmp(&self.deadline)
            .then(other.seq.cmp(&self.seq))
    }
}

/// State shared between the owning core and remote producers.
pub(crate) struct EmShared {
    core: CoreId,
    remote: SegQueue<SendEventHandler>,
    interrupts: SegQueue<u32>,
    waker: Mutex<Option<Arc<dyn Fn() + Send + Sync>>>,
    successor: Mutex<Option<Arc<dyn Fn() + Send + Sync>>>,
    /// Quiescence state shared with the machine's RCU domain: bumped at
    /// every event boundary, flagged during handler execution.
    epoch: Arc<CoreEpoch>,
    exit: AtomicBool,
}

impl EmShared {
    fn wake(&self) {
        let waker = self.waker.lock().clone();
        if let Some(w) = waker {
            w();
        }
    }

    fn push_remote(&self, f: SendEventHandler) {
        self.remote.push(f);
        self.wake();
    }
}

/// Owner-only state: touched exclusively by the thread currently bound
/// to this manager's core.
struct EmOwned {
    local: VecDeque<EventHandler>,
    vectors: Vec<Option<Rc<dyn Fn()>>>,
    free_vectors: Vec<u32>,
    idle: Vec<(u64, Rc<dyn Fn() -> bool>)>,
    next_idle_token: u64,
    timers: BinaryHeap<TimerEntry>,
    cancelled_timers: HashSet<u64>,
    next_timer_token: u64,
    timer_seq: u64,
    pending_handoff: Option<EventContext>,
}

/// Cell holding owner-only state with a dynamic single-core ownership
/// check (see [`crate::cpu::CoreLocal`] for the access rules).
struct OwnedByCore<T> {
    core: CoreId,
    value: UnsafeCell<T>,
    borrowed: Cell<bool>,
}

// SAFETY: the contents are deliberately non-Send (Rc handlers, local
// closures) yet move between loop-runner threads across cooperative-
// blocking handoffs. This is sound because the handoff protocol
// guarantees (a) at most one thread is dispatching for the core at any
// instant, so no two threads ever touch the value concurrently, and (b)
// every transfer of the dispatching role synchronizes through
// EventContext's mutex (successor spawn / signal), establishing
// happens-before between the old and new runner's accesses. Access is
// additionally gated on the calling thread being bound to `core`, and
// the `borrowed` flag excludes re-entrant aliasing.
unsafe impl<T> Sync for OwnedByCore<T> {}
// SAFETY: as above — transfers are synchronized by the handoff protocol.
unsafe impl<T> Send for OwnedByCore<T> {}

impl<T> OwnedByCore<T> {
    fn new(core: CoreId, value: T) -> Self {
        OwnedByCore {
            core,
            value: UnsafeCell::new(value),
            borrowed: Cell::new(false),
        }
    }

    #[inline]
    fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        assert_eq!(
            cpu::try_current(),
            Some(self.core),
            "EventManager owner state accessed off-core"
        );
        assert!(!self.borrowed.get(), "re-entrant EventManager access");
        self.borrowed.set(true);
        struct Reset<'a>(&'a Cell<bool>);
        impl Drop for Reset<'_> {
            fn drop(&mut self) {
                self.0.set(false);
            }
        }
        let _r = Reset(&self.borrowed);
        // SAFETY: see the `Sync` impl above; checks just performed.
        let v = unsafe { &mut *self.value.get() };
        f(v)
    }
}

/// Per-core event manager: dispatch loop state, interrupt vectors,
/// synthetic event queues, timers and idle handlers.
pub struct EventManager {
    clock: Arc<dyn Clock>,
    shared: Arc<EmShared>,
    owned: OwnedByCore<EmOwned>,
    /// Dispatch statistics.
    pub stats: EventStats,
}

impl EventManager {
    /// Creates the manager for `core`, reading time from `clock` and
    /// reporting event boundaries to `epoch` (the core's slice of the
    /// machine's RCU domain).
    pub fn new(core: CoreId, clock: Arc<dyn Clock>, epoch: Arc<CoreEpoch>) -> Self {
        EventManager {
            clock,
            shared: Arc::new(EmShared {
                core,
                remote: SegQueue::new(),
                interrupts: SegQueue::new(),
                waker: Mutex::new(None),
                successor: Mutex::new(None),
                epoch,
                exit: AtomicBool::new(false),
            }),
            owned: OwnedByCore::new(
                core,
                EmOwned {
                    local: VecDeque::new(),
                    vectors: Vec::new(),
                    free_vectors: Vec::new(),
                    idle: Vec::new(),
                    next_idle_token: 0,
                    timers: BinaryHeap::new(),
                    cancelled_timers: HashSet::new(),
                    next_timer_token: 0,
                    timer_seq: 0,
                    pending_handoff: None,
                },
            ),
            stats: EventStats::default(),
        }
    }

    /// The core this manager serves.
    pub fn core(&self) -> CoreId {
        self.shared.core
    }

    /// Current time according to this manager's clock.
    pub fn now_ns(&self) -> Ns {
        self.clock.now_ns()
    }

    // --- Spawning ------------------------------------------------------

    /// Queues a synthetic event on this core from the owning core itself
    /// (non-`Send` handlers allowed). Spawned events run exactly once.
    pub fn spawn_local(&self, f: impl FnOnce() + 'static) {
        self.owned.with(|o| o.local.push_back(Box::new(f)));
    }

    /// Queues a synthetic event on this core from any thread.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) {
        if cpu::try_current() == Some(self.shared.core) {
            self.spawn_local(f);
        } else {
            self.shared.push_remote(Box::new(f));
        }
    }

    /// Handle for cross-thread spawning without holding `&EventManager`.
    pub fn spawner(&self) -> Spawner {
        Spawner {
            shared: Arc::clone(&self.shared),
        }
    }

    // --- Interrupts ----------------------------------------------------

    /// Allocates an interrupt vector and binds `handler` to it (the
    /// paper's `EventManager` device-interrupt registration). Owner-core
    /// only.
    pub fn allocate_vector(&self, handler: impl Fn() + 'static) -> InterruptVector {
        self.owned.with(|o| {
            let h: Rc<dyn Fn()> = Rc::new(handler);
            if let Some(v) = o.free_vectors.pop() {
                o.vectors[v as usize] = Some(h);
                InterruptVector(v)
            } else {
                o.vectors.push(Some(h));
                InterruptVector((o.vectors.len() - 1) as u32)
            }
        })
    }

    /// Unbinds `vector`, allowing its number to be reused.
    pub fn free_vector(&self, vector: InterruptVector) {
        self.owned.with(|o| {
            o.vectors[vector.0 as usize] = None;
            o.free_vectors.push(vector.0);
        });
    }

    /// Returns a cross-thread handle that raises `vector` on this core —
    /// what a (simulated) device holds.
    pub fn interrupt_line(&self, vector: InterruptVector) -> InterruptLine {
        InterruptLine {
            shared: Arc::clone(&self.shared),
            vector,
        }
    }

    // --- Idle handlers --------------------------------------------------

    /// Registers a handler invoked whenever the core would otherwise
    /// idle; it returns whether it performed useful work. This is the
    /// polling primitive behind the adaptive NIC driver.
    pub fn add_idle_handler(&self, f: impl Fn() -> bool + 'static) -> IdleToken {
        self.owned.with(|o| {
            let token = o.next_idle_token;
            o.next_idle_token += 1;
            o.idle.push((token, Rc::new(f)));
            IdleToken(token)
        })
    }

    /// Removes a previously registered idle handler.
    pub fn remove_idle_handler(&self, token: IdleToken) {
        self.owned.with(|o| {
            o.idle.retain(|(t, _)| *t != token.0);
        });
    }

    /// Whether any idle handlers are installed (a polling core must spin
    /// rather than halt).
    pub fn has_idle_handlers(&self) -> bool {
        self.owned.with(|o| !o.idle.is_empty())
    }

    // --- Timers ---------------------------------------------------------

    /// Arms a one-shot timer `delay_ns` from now.
    pub fn set_timer(&self, delay_ns: Ns, f: impl FnOnce() + 'static) -> TimerToken {
        let deadline = self.clock.now_ns() + delay_ns;
        self.owned.with(|o| {
            let token = o.next_timer_token;
            o.next_timer_token += 1;
            let seq = o.timer_seq;
            o.timer_seq += 1;
            o.timers.push(TimerEntry {
                deadline,
                seq,
                token,
                handler: Box::new(f),
            });
            TimerToken(token)
        })
    }

    /// Cancels a pending timer; a timer that already fired is a no-op.
    pub fn cancel_timer(&self, token: TimerToken) {
        self.owned.with(|o| {
            o.cancelled_timers.insert(token.0);
        });
    }

    /// Earliest pending timer deadline, if any.
    pub fn next_timer_deadline(&self) -> Option<Ns> {
        self.owned.with(|o| {
            // Skip cancelled entries without firing them.
            while let Some(top) = o.timers.peek() {
                if o.cancelled_timers.remove(&top.token) {
                    o.timers.pop();
                } else {
                    return Some(top.deadline);
                }
            }
            None
        })
    }

    // --- Dispatch --------------------------------------------------------

    /// Runs one pass of the dispatch algorithm (steps 1–3 of the module
    /// docs). The caller loops while [`Progress::any`] and halts/parks
    /// otherwise.
    pub fn run_once(&self) -> Progress {
        let mut progress = Progress {
            interrupts: self.dispatch_interrupts() + self.dispatch_expired_timers(),
            ..Progress::default()
        };
        progress.synthetic = self.dispatch_one_synthetic();
        if !progress.any_priority() {
            let (invoked, worked) = self.dispatch_idle();
            progress.idle_invoked = invoked;
            progress.idle_work = worked;
        }
        progress
    }

    /// Drains every immediately runnable event (interrupts, timers,
    /// synthetic). Used by tests and the simulated backend to reach
    /// quiescence after an injection. Returns handlers run.
    pub fn drain(&self) -> usize {
        let mut total = 0;
        loop {
            let mut ran = self.dispatch_interrupts();
            ran += self.dispatch_expired_timers();
            if self.dispatch_one_synthetic() {
                ran += 1;
            }
            if ran == 0 {
                return total;
            }
            total += ran;
        }
    }

    fn dispatch_interrupts(&self) -> usize {
        let mut n = 0;
        while let Some(v) = self.shared.interrupts.pop() {
            let handler = self
                .owned
                .with(|o| o.vectors.get(v as usize).and_then(|h| h.clone()));
            if let Some(h) = handler {
                self.invoke(|| h());
                self.stats.interrupts.fetch_add(1, Ordering::Relaxed);
                n += 1;
            }
        }
        n
    }

    fn dispatch_expired_timers(&self) -> usize {
        let now = self.clock.now_ns();
        let mut n = 0;
        loop {
            let entry = self.owned.with(|o| {
                match o.timers.peek() {
                    Some(top) if top.deadline <= now => {}
                    _ => return None,
                }
                let e = o.timers.pop().expect("peeked entry vanished");
                if o.cancelled_timers.remove(&e.token) {
                    Some(None)
                } else {
                    Some(Some(e.handler))
                }
            });
            match entry {
                None => return n,
                Some(None) => continue,
                Some(Some(h)) => {
                    self.invoke(h);
                    self.stats.timers.fetch_add(1, Ordering::Relaxed);
                    n += 1;
                }
            }
        }
    }

    fn dispatch_one_synthetic(&self) -> bool {
        // Local (same-core) events first, then remote arrivals.
        let ev = self
            .owned
            .with(|o| o.local.pop_front())
            .map(|f| f as EventHandler)
            .or_else(|| self.shared.remote.pop().map(|f| f as EventHandler));
        match ev {
            Some(f) => {
                self.invoke(f);
                self.stats.synthetic.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    fn dispatch_idle(&self) -> (usize, usize) {
        let handlers = self.owned.with(|o| o.idle.clone());
        let mut worked = 0;
        for (_, h) in &handlers {
            let did = {
                let mut result = false;
                self.invoke(|| result = h());
                result
            };
            if did {
                worked += 1;
            }
            self.stats.idle.fetch_add(1, Ordering::Relaxed);
        }
        (handlers.len(), worked)
    }

    /// Runs one handler with event bookkeeping (in-event flag for RCU,
    /// quiescence bump at the boundary).
    fn invoke(&self, f: impl FnOnce()) {
        self.shared.epoch.enter();
        f();
        // Event boundary: quiescent state for RCU.
        self.shared.epoch.exit_quiescent();
    }

    // --- Loop control ----------------------------------------------------

    /// Installs the callback used to wake a halted core (threaded
    /// backend: unpark; simulated backend: schedule a poll event).
    pub fn register_waker(&self, waker: Arc<dyn Fn() + Send + Sync>) {
        *self.shared.waker.lock() = Some(waker);
    }

    /// Installs the callback that spawns a successor loop runner,
    /// enabling [`Self::save_context`]. Only the threaded backend sets
    /// this.
    pub fn register_successor_spawner(&self, spawner: Arc<dyn Fn() + Send + Sync>) {
        *self.shared.successor.lock() = Some(spawner);
    }

    /// Requests loop exit (machine shutdown) and wakes the core.
    pub fn request_exit(&self) {
        self.shared.exit.store(true, Ordering::Release);
        self.shared.wake();
    }

    /// Whether exit has been requested.
    pub fn exit_requested(&self) -> bool {
        self.shared.exit.load(Ordering::Acquire)
    }

    /// Whether any immediately runnable work is queued. Cross-core
    /// callers see only the shared queues (interrupts, remote spawns);
    /// the owning core additionally sees local events and due timers.
    pub fn pending_work(&self) -> bool {
        if !self.shared.interrupts.is_empty() || !self.shared.remote.is_empty() {
            return true;
        }
        if cpu::try_current() != Some(self.shared.core) {
            return false;
        }
        let timer_due = self
            .next_timer_deadline()
            .is_some_and(|d| d <= self.clock.now_ns());
        timer_due || self.owned.with(|o| !o.local.is_empty())
    }

    /// Event-boundary counter (used by RCU grace-period detection).
    pub fn quiescent_count(&self) -> u64 {
        self.shared.epoch.count()
    }

    /// Whether a handler is currently executing on this core.
    pub fn in_event(&self) -> bool {
        self.shared.epoch.in_event()
    }

    // --- Cooperative blocking (save/restore event state) -----------------

    /// Suspends the current event, handing the loop to a successor
    /// thread. `setup` receives the [`EventContext`] and must arrange for
    /// [`EventContext::activate`] to be called eventually; `save_context`
    /// returns when that happens.
    ///
    /// # Panics
    ///
    /// Panics if called off the owning core or on a backend without a
    /// successor spawner (the simulated backend — use futures there).
    pub fn save_context(&self, setup: impl FnOnce(EventContext)) {
        assert_eq!(
            cpu::try_current(),
            Some(self.shared.core),
            "save_context off-core"
        );
        let spawner =
            self.shared.successor.lock().clone().expect(
                "save_context requires the threaded backend (no successor spawner installed)",
            );
        let ctx = EventContext {
            inner: Arc::new(CtxInner {
                resumed: Mutex::new(false),
                cv: Condvar::new(),
            }),
            shared: Arc::clone(&self.shared),
        };
        setup(ctx.clone());
        // Hand the loop to a successor; this thread stops dispatching
        // until resumed.
        spawner();
        ctx.wait();
    }

    /// Called (on the owning core) by the resume event to transfer the
    /// loop back to a saved context after the current pass.
    fn set_pending_handoff(&self, ctx: EventContext) {
        self.owned.with(|o| {
            assert!(o.pending_handoff.is_none(), "double handoff");
            o.pending_handoff = Some(ctx);
        });
    }

    /// Takes a pending handoff, if any; the loop runner signals it and
    /// stops dispatching.
    pub fn take_handoff(&self) -> Option<EventContext> {
        self.owned.with(|o| o.pending_handoff.take())
    }
}

/// Cross-thread handle for queueing synthetic events on a core.
#[derive(Clone)]
pub struct Spawner {
    shared: Arc<EmShared>,
}

impl Spawner {
    /// Queues `f` on the target core.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) {
        self.shared.push_remote(Box::new(f));
    }

    /// The core this spawner targets.
    pub fn core(&self) -> CoreId {
        self.shared.core
    }
}

/// Cross-thread handle a device uses to raise an interrupt on a core.
#[derive(Clone)]
pub struct InterruptLine {
    shared: Arc<EmShared>,
    vector: InterruptVector,
}

impl InterruptLine {
    /// Raises the interrupt: queues the vector and wakes the core.
    pub fn raise(&self) {
        self.shared.interrupts.push(self.vector.0);
        self.shared.wake();
    }

    /// The vector this line raises.
    pub fn vector(&self) -> InterruptVector {
        self.vector
    }
}

struct CtxInner {
    resumed: Mutex<bool>,
    cv: Condvar,
}

/// A saved event context: the suspended state of an event that called
/// [`EventManager::save_context`].
#[derive(Clone)]
pub struct EventContext {
    inner: Arc<CtxInner>,
    shared: Arc<EmShared>,
}

impl EventContext {
    /// Schedules the saved event to resume on its owning core. May be
    /// called from any thread; the suspended stack continues executing
    /// once the core's current dispatch pass completes.
    pub fn activate(self) {
        let core = self.shared.core;
        let shared = Arc::clone(&self.shared);
        shared.push_remote(Box::new(move || {
            crate::runtime::with_current(|rt| {
                rt.event_manager(core).set_pending_handoff(self.clone());
            });
        }));
    }

    /// Signals the suspended thread to continue (runner side).
    pub fn signal(&self) {
        let mut resumed = self.inner.resumed.lock();
        *resumed = true;
        self.inner.cv.notify_all();
    }

    fn wait(&self) {
        let mut resumed = self.inner.resumed.lock();
        while !*resumed {
            self.inner.cv.wait(&mut resumed);
        }
    }
}

/// Blocks the current *event* (not the thread) until `fut` completes,
/// using context save/restore; outside an event loop it falls back to
/// thread blocking. This provides the Go-like concurrency model the
/// paper layers over events.
pub fn block_on<T: Send + 'static>(fut: Future<T>) -> FutResult<T> {
    // Fast path: already complete.
    let fut = match fut.try_take() {
        Ok(r) => return r,
        Err(f) => f,
    };
    let on_core = cpu::try_current().is_some() && crate::runtime::is_entered();
    if !on_core {
        return fut.block();
    }
    let result: Arc<Mutex<Option<FutResult<T>>>> = Arc::new(Mutex::new(None));
    let result2 = Arc::clone(&result);
    crate::runtime::with_current(|rt| {
        let em = rt.event_manager(cpu::current());
        em.save_context(move |ctx| {
            fut.then(move |ff| {
                *result2.lock() = Some(ff.get());
                ctx.activate();
                Ok(())
            });
        });
    });
    let r = result.lock().take();
    r.expect("context resumed without a result")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use std::sync::atomic::AtomicUsize;

    fn em() -> (EventManager, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let epoch = Arc::new(CoreEpoch::new());
        (EventManager::new(CoreId(0), clock.clone(), epoch), clock)
    }

    #[test]
    fn spawned_events_run_once_fifo() {
        let (em, _) = em();
        let _b = cpu::bind(CoreId(0));
        let log = Rc::new(std::cell::RefCell::new(Vec::new()));
        for i in 0..3 {
            let log = Rc::clone(&log);
            em.spawn_local(move || log.borrow_mut().push(i));
        }
        // One synthetic per pass.
        assert!(em.run_once().synthetic);
        assert_eq!(*log.borrow(), vec![0]);
        em.drain();
        assert_eq!(*log.borrow(), vec![0, 1, 2]);
        assert_eq!(em.drain(), 0);
    }

    #[test]
    fn interrupts_preempt_synthetic_in_pass_order() {
        let (em, _) = em();
        let _b = cpu::bind(CoreId(0));
        let log = Rc::new(std::cell::RefCell::new(Vec::new()));
        let l2 = Rc::clone(&log);
        let vec = em.allocate_vector(move || l2.borrow_mut().push("irq"));
        let l3 = Rc::clone(&log);
        em.spawn_local(move || l3.borrow_mut().push("synth"));
        em.interrupt_line(vec).raise();
        em.run_once();
        // The interrupt ran before the synthetic event in the same pass.
        assert_eq!(*log.borrow(), vec!["irq", "synth"]);
    }

    #[test]
    fn idle_handlers_only_when_nothing_else() {
        let (em, _) = em();
        let _b = cpu::bind(CoreId(0));
        let idles = Rc::new(Cell::new(0));
        let i2 = Rc::clone(&idles);
        em.add_idle_handler(move || {
            i2.set(i2.get() + 1);
            false
        });
        em.spawn_local(|| ());
        let p = em.run_once();
        assert!(p.synthetic);
        assert_eq!(p.idle_invoked, 0, "idle must not run when events pending");
        let p = em.run_once();
        assert!(!p.synthetic);
        assert_eq!(p.idle_invoked, 1);
        assert_eq!(idles.get(), 1);
    }

    #[test]
    fn idle_handler_remove() {
        let (em, _) = em();
        let _b = cpu::bind(CoreId(0));
        let token = em.add_idle_handler(|| false);
        assert!(em.has_idle_handlers());
        em.remove_idle_handler(token);
        assert!(!em.has_idle_handlers());
        assert_eq!(em.run_once().idle_invoked, 0);
    }

    #[test]
    fn timers_fire_in_deadline_order() {
        let (em, clock) = em();
        let _b = cpu::bind(CoreId(0));
        let log = Rc::new(std::cell::RefCell::new(Vec::new()));
        let (l1, l2) = (Rc::clone(&log), Rc::clone(&log));
        em.set_timer(200, move || l1.borrow_mut().push("late"));
        em.set_timer(100, move || l2.borrow_mut().push("early"));
        assert_eq!(em.next_timer_deadline(), Some(100));
        em.run_once();
        assert!(log.borrow().is_empty());
        clock.set(150);
        em.run_once();
        assert_eq!(*log.borrow(), vec!["early"]);
        clock.set(250);
        em.run_once();
        assert_eq!(*log.borrow(), vec!["early", "late"]);
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let (em, clock) = em();
        let _b = cpu::bind(CoreId(0));
        let fired = Rc::new(Cell::new(false));
        let f2 = Rc::clone(&fired);
        let t = em.set_timer(100, move || f2.set(true));
        em.cancel_timer(t);
        clock.set(200);
        em.run_once();
        assert!(!fired.get());
        assert_eq!(em.next_timer_deadline(), None);
    }

    #[test]
    fn quiescent_counter_bumps_per_event() {
        let (em, _) = em();
        let _b = cpu::bind(CoreId(0));
        let q0 = em.quiescent_count();
        em.spawn_local(|| ());
        em.spawn_local(|| ());
        em.drain();
        assert_eq!(em.quiescent_count(), q0 + 2);
    }

    #[test]
    fn remote_spawn_crosses_threads() {
        let (em, _) = em();
        let spawner = em.spawner();
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        std::thread::spawn(move || {
            spawner.spawn(move || {
                c2.fetch_add(1, Ordering::SeqCst);
            });
        })
        .join()
        .unwrap();
        let _b = cpu::bind(CoreId(0));
        em.drain();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn interrupt_line_from_device_thread() {
        let (em, _) = em();
        let _b = cpu::bind(CoreId(0));
        let hits = Rc::new(Cell::new(0));
        let h2 = Rc::clone(&hits);
        let v = em.allocate_vector(move || h2.set(h2.get() + 1));
        let line = em.interrupt_line(v);
        std::thread::spawn(move || {
            line.raise();
            line.raise();
        })
        .join()
        .unwrap();
        em.drain();
        assert_eq!(hits.get(), 2);
    }

    #[test]
    fn freed_vector_is_reused_and_unbound() {
        let (em, _) = em();
        let _b = cpu::bind(CoreId(0));
        let v1 = em.allocate_vector(|| ());
        em.free_vector(v1);
        let line = em.interrupt_line(v1);
        line.raise();
        // No handler bound: raising is harmless and dispatches nothing.
        assert_eq!(em.run_once().interrupts, 0);
        let v2 = em.allocate_vector(|| ());
        assert_eq!(v1, v2);
    }

    #[test]
    fn nested_spawn_from_handler() {
        let (em, _) = em();
        let _b = cpu::bind(CoreId(0));
        let done = Arc::new(AtomicBool::new(false));
        let d = Arc::clone(&done);
        let spawner = em.spawner();
        em.spawn_local(move || {
            let d = Arc::clone(&d);
            spawner.spawn(move || d.store(true, Ordering::SeqCst));
        });
        em.drain();
        assert!(done.load(Ordering::SeqCst));
    }

    #[test]
    fn pending_work_reflects_queues_and_timers() {
        let (em, clock) = em();
        let _b = cpu::bind(CoreId(0));
        assert!(!em.pending_work());
        em.spawn_local(|| ());
        assert!(em.pending_work());
        em.drain();
        assert!(!em.pending_work());
        em.set_timer(100, || ());
        assert!(!em.pending_work());
        clock.set(100);
        assert!(em.pending_work());
    }

    #[test]
    fn exit_flag() {
        let (em, _) = em();
        assert!(!em.exit_requested());
        em.request_exit();
        assert!(em.exit_requested());
    }
}
