//! Overload control & QoS primitives: the named per-core counter
//! registry and the per-class fair transmit scheduler.
//!
//! Two building blocks live here, both per-core in the EbbRT sense and
//! both deliberately transport-agnostic (the network stack wires them
//! to frames, the applications to requests):
//!
//! * [`CounterRegistryEbb`] — the generalization of the half-built
//!   `NetStats` pattern: counters are **registered by name** against a
//!   machine-wide root, bumped through plain per-core `Cell`s (no
//!   atomics on the hot path — the interior-mutability contract of
//!   [`MulticoreEbb`]), and read as a **cross-core snapshot** at
//!   quiescence. Lives under the well-known [`SystemEbb::Counters`]
//!   id with a `Default` root, so no setup call is needed anywhere:
//!   the first `register`/`add` on a machine faults everything in.
//! * [`FairScheduler`] — an HFSC-style two-criteria scheduler over a
//!   paced virtual link: every class carries a linear **real-time
//!   service curve** (`rt_bps` — a rate guarantee, honored by earliest
//!   eligible deadline) and a **link-share weight** (`ls_weight` —
//!   proportional division of excess capacity by virtual time). A
//!   [`QosMode::Fifo`] mode paces the identical link with no fairness
//!   at all — the control arm of the overload bench.
//!
//! The surrounding policy vocabulary ([`QosConfig`], [`ClassConfig`],
//! [`ClassId`]) is shared by the network stack's admission control and
//! the applications' shedding configuration, so "class" means the same
//! thing at every layer a request crosses.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::Arc;

use crate::clock::Ns;
use crate::cpu::CoreId;
use crate::ebb::{EbbManager, MulticoreEbb, SystemEbb};
use crate::runtime::{self, Runtime};
use crate::spinlock::SpinLock;

/// Hard cap on traffic classes: class ids index small fixed arrays on
/// hot paths (per-class budgets, per-class deadlines), and eight is
/// far beyond any tenant taxonomy this system models.
pub const MAX_CLASSES: usize = 8;

/// A traffic class, assigned to a connection at accept/connect time
/// and carried by everything the connection produces (frames on the tx
/// path, requests in the application). Class 0 is the default class —
/// unclassified traffic and control frames land there unless a
/// classifier rule says otherwise.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct ClassId(pub u8);

impl ClassId {
    /// The default class.
    pub const DEFAULT: ClassId = ClassId(0);

    /// The class's index into per-class tables, clamped to the
    /// configured class count.
    pub fn index(self, nclasses: usize) -> usize {
        (self.0 as usize).min(nclasses.saturating_sub(1))
    }
}

/// Scheduler discipline for the paced transmit link.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QosMode {
    /// HFSC-style two-criteria fair scheduling: real-time curves
    /// first (earliest eligible deadline), link-share virtual time
    /// for the excess.
    Fair,
    /// One global FIFO over the same paced link — no isolation. The
    /// control run of the overload bench: identical pacing, so any
    /// p99 difference is the scheduler's doing, not the link model's.
    Fifo,
}

/// One traffic class's service parameters.
#[derive(Clone, Debug)]
pub struct ClassConfig {
    /// Class name (counter names derive from it).
    pub name: String,
    /// Real-time curve slope: bits/second this class is *guaranteed*
    /// when backlogged (0 = no guarantee, link-share only).
    pub rt_bps: u64,
    /// Link-share weight: the class's proportional claim on capacity
    /// left over after real-time guarantees (≥ 1).
    pub ls_weight: u64,
    /// Admission budget: maximum concurrently admitted (accepted)
    /// connections of this class; further SYNs are rejected fast with
    /// an RST. `None` = unbounded.
    pub conn_budget: Option<usize>,
    /// Request service deadline for application-level shedding: a
    /// queued request older than this when service would begin is
    /// answered with an error instead of served. `None` = never shed.
    pub deadline_ns: Option<u64>,
    /// Syncache budget: maximum *embryonic* (handshake not yet
    /// complete) inbound connections of this class. At the cap a new
    /// SYN either evicts the class's oldest stale embryonic entry or
    /// is shed with an RST — established connections are never
    /// touched, so a SYN flood cannot displace live service.
    /// `None` = unbounded. Sits *below* `conn_budget` in the shed
    /// ladder: admission bounds total live conns, this bounds the
    /// handshake backlog within that.
    pub syn_budget: Option<usize>,
}

impl ClassConfig {
    /// A class with no guarantee, weight 1, no budget, no deadline.
    pub fn new(name: impl Into<String>) -> ClassConfig {
        ClassConfig {
            name: name.into(),
            rt_bps: 0,
            ls_weight: 1,
            conn_budget: None,
            deadline_ns: None,
            syn_budget: None,
        }
    }

    /// Sets the real-time (guaranteed-rate) curve slope.
    pub fn rt_bps(mut self, bps: u64) -> Self {
        self.rt_bps = bps;
        self
    }

    /// Sets the link-share weight (clamped to ≥ 1).
    pub fn ls_weight(mut self, w: u64) -> Self {
        self.ls_weight = w.max(1);
        self
    }

    /// Sets the admission budget.
    pub fn conn_budget(mut self, conns: usize) -> Self {
        self.conn_budget = Some(conns);
        self
    }

    /// Sets the shedding deadline.
    pub fn deadline_ns(mut self, ns: u64) -> Self {
        self.deadline_ns = Some(ns);
        self
    }

    /// Sets the syncache (embryonic-connection) budget.
    pub fn syn_budget(mut self, conns: usize) -> Self {
        self.syn_budget = Some(conns);
        self
    }
}

/// The QoS policy for one machine: link model, discipline, classes.
#[derive(Clone, Debug)]
pub struct QosConfig {
    /// Paced transmit link capacity in bits/second.
    pub link_bps: u64,
    /// Scheduling discipline.
    pub mode: QosMode,
    /// Classes, indexed by [`ClassId`]; class 0 is the default class
    /// and always exists.
    pub classes: Vec<ClassConfig>,
}

impl QosConfig {
    /// A fair-mode config with the default class only.
    pub fn new(link_bps: u64) -> QosConfig {
        assert!(link_bps > 0, "a paced link needs a rate");
        QosConfig {
            link_bps,
            mode: QosMode::Fair,
            classes: vec![ClassConfig::new("default")],
        }
    }

    /// Adds a class, returning its [`ClassId`] implicitly by position.
    pub fn class(mut self, c: ClassConfig) -> Self {
        assert!(self.classes.len() < MAX_CLASSES, "too many classes");
        self.classes.push(c);
        self
    }

    /// Switches to the no-isolation FIFO discipline (control runs).
    pub fn fifo(mut self) -> Self {
        self.mode = QosMode::Fifo;
        self
    }

    /// Looks a class up by name.
    pub fn class_id(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c.name == name)
            .map(|i| ClassId(i as u8))
    }
}

// --- CounterRegistry ------------------------------------------------------

/// A handle to one registered counter: an index into every core's cell
/// vector. `Copy + Send` — register once, bump from anywhere on the
/// machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CounterHandle(usize);

/// The registry's cross-core root: the name table. Registration is
/// idempotent by name — re-registering returns the existing handle —
/// so independent subsystems (the network stack, an application, a
/// bench) can all "register" the counters they touch without
/// coordinating who goes first.
#[derive(Default)]
pub struct CounterRoot {
    names: SpinLock<Vec<String>>,
}

impl CounterRoot {
    /// Registers `name` (or finds it), returning its handle.
    pub fn register(&self, name: &str) -> CounterHandle {
        let mut names = self.names.lock();
        if let Some(i) = names.iter().position(|n| n == name) {
            return CounterHandle(i);
        }
        names.push(name.to_string());
        CounterHandle(names.len() - 1)
    }

    /// The registered names, in handle order.
    pub fn names(&self) -> Vec<String> {
        self.names.lock().clone()
    }
}

/// The per-core representative of the counter registry
/// ([`SystemEbb::Counters`]): a growable vector of plain `Cell`
/// counters, indexed by [`CounterHandle`]. Bumps are two loads and a
/// store — no atomics, per the rep interior-mutability contract.
pub struct CounterRegistryEbb {
    root: Arc<CounterRoot>,
    cells: RefCell<Vec<Cell<u64>>>,
}

impl MulticoreEbb for CounterRegistryEbb {
    type Root = CounterRoot;

    fn create_rep(root: &Arc<CounterRoot>, _core: CoreId) -> Self {
        CounterRegistryEbb {
            root: Arc::clone(root),
            cells: RefCell::new(Vec::new()),
        }
    }
}

impl CounterRegistryEbb {
    /// The shared name table.
    pub fn root(&self) -> &Arc<CounterRoot> {
        &self.root
    }

    /// Adds `n` to this core's cell for `h`, growing the vector on
    /// first touch of a newly registered handle.
    pub fn add(&self, h: CounterHandle, n: u64) {
        let cells = self.cells.borrow();
        if let Some(c) = cells.get(h.0) {
            c.set(c.get() + n);
            return;
        }
        drop(cells);
        let mut cells = self.cells.borrow_mut();
        if cells.len() <= h.0 {
            cells.resize_with(h.0 + 1, || Cell::new(0));
        }
        let c = &cells[h.0];
        c.set(c.get() + n);
    }

    /// Subtracts `n` from this core's cell for `h` (wrapping).
    ///
    /// Gauge support: a handle used as a gauge (live counts, queue
    /// depths) increments on one core and may decrement on another,
    /// so an individual core's cell can dip "below zero" — it wraps,
    /// and the modular cross-core sum in [`read_total`] recovers the
    /// exact value as long as the true total is non-negative.
    pub fn sub(&self, h: CounterHandle, n: u64) {
        let cells = self.cells.borrow();
        if let Some(c) = cells.get(h.0) {
            c.set(c.get().wrapping_sub(n));
            return;
        }
        drop(cells);
        let mut cells = self.cells.borrow_mut();
        if cells.len() <= h.0 {
            cells.resize_with(h.0 + 1, || Cell::new(0));
        }
        let c = &cells[h.0];
        c.set(c.get().wrapping_sub(n));
    }

    /// This core's value for `h`.
    pub fn get(&self, h: CounterHandle) -> u64 {
        self.cells.borrow().get(h.0).map(Cell::get).unwrap_or(0)
    }
}

fn registry_root(ebbs: &EbbManager) -> Arc<CounterRoot> {
    ebbs.root_or_default::<CounterRegistryEbb>(SystemEbb::Counters.id())
}

/// Registers (or finds) `name` on the current machine, returning its
/// `Copy + Send` handle. Works from any context — an entered runtime
/// or the ambient one — and needs no prior setup (the registry root
/// lazily self-registers).
pub fn register(name: &str) -> CounterHandle {
    runtime::with_context(|rt, _core| register_in(rt, name))
}

/// As [`register`] against an explicit runtime (machine) — the form
/// used by setup code that has a machine handle but is not executing
/// inside one of its events.
pub fn register_in(rt: &Runtime, name: &str) -> CounterHandle {
    registry_root(rt.ebbs()).register(name)
}

/// Adds `n` to `h` on the calling core.
pub fn add(h: CounterHandle, n: u64) {
    runtime::with_context(|rt, core| {
        rt.ebbs()
            .with_rep_lazy::<CounterRegistryEbb, _>(core, SystemEbb::Counters.id(), |rep| {
                rep.add(h, n)
            })
    });
}

/// Adds 1 to `h` on the calling core.
pub fn bump(h: CounterHandle) {
    add(h, 1);
}

/// Subtracts `n` from `h` on the calling core (gauge decrement; see
/// [`CounterRegistryEbb::sub`] for the wrapping contract).
pub fn sub(h: CounterHandle, n: u64) {
    runtime::with_context(|rt, core| {
        rt.ebbs()
            .with_rep_lazy::<CounterRegistryEbb, _>(core, SystemEbb::Counters.id(), |rep| {
                rep.sub(h, n)
            })
    });
}

/// As [`add`] against an explicit runtime — the form for setup code
/// (e.g. `NetIf::attach`) that has a machine handle but is not inside
/// one of its events. Enters core 0 for the touch; totals are
/// unaffected by which core carries the value.
pub fn add_in(rt: &Arc<Runtime>, h: CounterHandle, n: u64) {
    let core = CoreId(0);
    let _guard = runtime::enter(Arc::clone(rt), core);
    rt.ebbs()
        .with_rep_lazy::<CounterRegistryEbb, _>(core, SystemEbb::Counters.id(), |rep| {
            rep.add(h, n)
        });
}

/// Sums `h` across every core of `rt`.
///
/// # Caller contract
///
/// Inherits [`EbbManager::for_each_rep`]'s quiescence contract: call
/// at a point where no core is concurrently bumping (always true on
/// the simulation backend, where one thread drives every core).
pub fn read_total(rt: &Runtime, h: CounterHandle) -> u64 {
    let mut total = 0u64;
    rt.ebbs()
        .for_each_rep::<CounterRegistryEbb>(SystemEbb::Counters.id(), |_core, rep| {
            // Wrapping: a gauge's per-core cell may have wrapped
            // negative (incremented here, decremented there); the
            // modular sum is still exact.
            total = total.wrapping_add(rep.get(h));
        });
    total
}

/// A cross-core snapshot of every registered counter on one machine.
#[derive(Clone, Debug, Default)]
pub struct CounterSnapshot {
    names: Vec<String>,
    totals: Vec<u64>,
}

impl CounterSnapshot {
    /// The total for `name` (0 if never registered).
    pub fn get(&self, name: &str) -> u64 {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.totals[i])
            .unwrap_or(0)
    }

    /// Sums every counter whose name starts with `prefix`.
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.names
            .iter()
            .zip(&self.totals)
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, t)| *t)
            .sum()
    }

    /// Iterates `(name, total)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.totals.iter().copied())
    }
}

/// Snapshots every counter of `rt` across its cores (the central
/// cross-core read; same quiescence contract as [`read_total`]).
pub fn snapshot(rt: &Runtime) -> CounterSnapshot {
    let Some(root) = rt
        .ebbs()
        .root::<CounterRegistryEbb>(SystemEbb::Counters.id())
    else {
        return CounterSnapshot::default();
    };
    let names = root.names();
    let mut totals = vec![0u64; names.len()];
    rt.ebbs()
        .for_each_rep::<CounterRegistryEbb>(SystemEbb::Counters.id(), |_core, rep| {
            for (i, t) in totals.iter_mut().enumerate() {
                *t = t.wrapping_add(rep.get(CounterHandle(i)));
            }
        });
    CounterSnapshot { names, totals }
}

/// Canonical per-class counter names: every layer that counts per
/// class derives names from one place, so a snapshot reads coherently.
pub mod names {
    /// Connections admitted at accept time.
    pub fn admitted(class: &str) -> String {
        format!("qos.{class}.admitted")
    }
    /// Connections rejected fast (budget saturated) at accept time.
    pub fn rejected(class: &str) -> String {
        format!("qos.{class}.rejected")
    }
    /// Requests served to completion.
    pub fn served(class: &str) -> String {
        format!("qos.{class}.served")
    }
    /// Requests shed (answered with an error, not silently dropped).
    pub fn shed(class: &str) -> String {
        format!("qos.{class}.shed")
    }
    /// Requests observed past their deadline at service time.
    pub fn deadline_missed(class: &str) -> String {
        format!("qos.{class}.deadline_missed")
    }
}

// --- The fair scheduler ---------------------------------------------------

/// Virtual-time scale for link-share accounting (bits are multiplied
/// by this before dividing by the weight, so small weights keep
/// integer resolution).
const V_SCALE: u64 = 1 << 10;

const NS_PER_S: u64 = 1_000_000_000;

/// Nanoseconds to serialize `len` bytes at `bps`.
fn tx_ns(len: usize, bps: u64) -> u64 {
    ((len as u64) * 8 * NS_PER_S) / bps.max(1)
}

struct ClassState<T> {
    rt_bps: u64,
    ls_weight: u64,
    q: VecDeque<(usize, T)>,
    /// Real-time eligible time of the next grant (advances by the
    /// curve's serialization time on each real-time service).
    e: Ns,
    /// Link-share virtual time: weighted service received.
    v: u64,
}

/// An HFSC-style per-class scheduler over a paced virtual link,
/// generic over the queued item (the network stack queues frames, the
/// unit tests queue markers).
///
/// Service discipline in [`QosMode::Fair`]:
///
/// 1. **Real-time criterion** — among backlogged classes with a
///    guarantee (`rt_bps > 0`) whose eligible time has arrived
///    (`e ≤ now`), serve the earliest deadline (`e +` head
///    serialization time at `rt_bps`). This is what makes `rt_bps` a
///    *guarantee*: a class with 10% of the link configured gets 10%
///    under any competing load.
/// 2. **Link-share criterion** — otherwise serve the backlogged class
///    with the least weighted virtual time, advancing its `v` by
///    `bits × scale / weight`. Excess capacity divides by weight.
///
/// A class becoming backlogged re-bases: `e` to `max(e, now)` (no
/// banked real-time credit) and `v` to at least the virtual time the
/// link has reached (no catching up on service it never queued for).
///
/// The link itself is paced: each dequeue occupies the wire for the
/// frame's serialization time at `link_bps`, and [`Self::pop`]
/// refuses until the wire is free — [`Self::next_ready`] says when to
/// come back (the caller arms a timer-wheel entry).
pub struct FairScheduler<T> {
    mode: QosMode,
    link_bps: u64,
    classes: Vec<ClassState<T>>,
    fifo_q: VecDeque<(ClassId, usize, T)>,
    /// The paced link is busy until this instant.
    next_free: Ns,
    /// Global link-share virtual time (the `v` of the last class
    /// served; newly backlogged classes re-base to it).
    global_v: u64,
    queued: usize,
}

impl<T> FairScheduler<T> {
    /// Builds a scheduler from `cfg` (class states mirror
    /// `cfg.classes` by index).
    pub fn new(cfg: &QosConfig) -> FairScheduler<T> {
        FairScheduler {
            mode: cfg.mode,
            link_bps: cfg.link_bps,
            classes: cfg
                .classes
                .iter()
                .map(|c| ClassState {
                    rt_bps: c.rt_bps,
                    ls_weight: c.ls_weight.max(1),
                    q: VecDeque::new(),
                    e: 0,
                    v: 0,
                })
                .collect(),
            fifo_q: VecDeque::new(),
            next_free: 0,
            global_v: 0,
            queued: 0,
        }
    }

    /// Queued items across all classes.
    pub fn len(&self) -> usize {
        self.queued
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// Enqueues `item` of wire length `len` for `class`.
    pub fn push(&mut self, class: ClassId, len: usize, item: T, now: Ns) {
        self.queued += 1;
        if self.mode == QosMode::Fifo {
            self.fifo_q.push_back((class, len, item));
            return;
        }
        let i = class.index(self.classes.len());
        let newly_backlogged = self.classes[i].q.is_empty();
        if newly_backlogged {
            let cs = &mut self.classes[i];
            cs.e = cs.e.max(now);
            cs.v = cs.v.max(self.global_v);
        }
        self.classes[i].q.push_back((len, item));
    }

    /// Dequeues the next item the discipline grants, if the paced link
    /// is free. `None` means either nothing is queued or the wire is
    /// busy — disambiguate with [`Self::next_ready`].
    pub fn pop(&mut self, now: Ns) -> Option<(ClassId, T)> {
        if self.queued == 0 || self.next_free > now {
            return None;
        }
        let (class, len, item) = match self.mode {
            QosMode::Fifo => self.fifo_q.pop_front()?,
            QosMode::Fair => self.pop_fair(now)?,
        };
        self.queued -= 1;
        self.next_free = self.next_free.max(now) + tx_ns(len, self.link_bps);
        Some((class, item))
    }

    fn pop_fair(&mut self, now: Ns) -> Option<(ClassId, usize, T)> {
        // Real-time pass: earliest eligible deadline.
        let mut best: Option<(usize, Ns)> = None;
        for (i, cs) in self.classes.iter().enumerate() {
            if cs.rt_bps == 0 || cs.q.is_empty() || cs.e > now {
                continue;
            }
            let d = cs.e + tx_ns(cs.q.front().map(|(l, _)| *l).unwrap_or(0), cs.rt_bps);
            if best.map(|(_, bd)| d < bd).unwrap_or(true) {
                best = Some((i, d));
            }
        }
        let i = match best {
            Some((i, d)) => {
                let cs = &mut self.classes[i];
                // The grant consumes the curve up to its deadline.
                cs.e = d;
                i
            }
            None => {
                // Link-share pass: least weighted virtual time.
                let i = self
                    .classes
                    .iter()
                    .enumerate()
                    .filter(|(_, cs)| !cs.q.is_empty())
                    .min_by_key(|(_, cs)| cs.v)
                    .map(|(i, _)| i)?;
                i
            }
        };
        let cs = &mut self.classes[i];
        let (len, item) = cs.q.pop_front().expect("class was backlogged");
        // Every grant — real-time or link-share — advances the class's
        // virtual time, so guaranteed service is not handed out twice.
        cs.v += (len as u64) * 8 * V_SCALE / cs.ls_weight;
        self.global_v = self.global_v.max(cs.v);
        Some((ClassId(i as u8), len, item))
    }

    /// When the caller should try [`Self::pop`] again: `Some(t)` if
    /// items are queued but the wire is busy until `t`; `None` when
    /// the backlog is empty (nothing to wait for) or a pop would
    /// succeed right now.
    pub fn next_ready(&self, now: Ns) -> Option<Ns> {
        if self.queued == 0 || self.next_free <= now {
            return None;
        }
        Some(self.next_free)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::cpu::CoreId;
    use crate::runtime::{enter, Runtime};

    // --- CounterRegistry ---------------------------------------------------

    #[test]
    fn register_is_idempotent_and_snapshot_sums_across_cores() {
        let rt = Runtime::new(3, Arc::new(ManualClock::new()));
        let h = register_in(&rt, "qos.t.served");
        assert_eq!(h, register_in(&rt, "qos.t.served"));
        let h2 = register_in(&rt, "qos.t.shed");
        assert_ne!(h, h2);
        for core in 0..3u32 {
            let g = enter(Arc::clone(&rt), CoreId(core));
            add(h, (core + 1) as u64);
            if core == 1 {
                bump(h2);
            }
            drop(g);
        }
        assert_eq!(read_total(&rt, h), 1 + 2 + 3);
        let snap = snapshot(&rt);
        assert_eq!(snap.get("qos.t.served"), 6);
        assert_eq!(snap.get("qos.t.shed"), 1);
        assert_eq!(snap.get("qos.t.never"), 0);
        assert_eq!(snap.sum_prefix("qos.t."), 7);
    }

    #[test]
    fn late_registration_reaches_cores_that_already_had_reps() {
        // A rep faulted in before a name existed must still count it:
        // cells grow on first touch of the new handle.
        let rt = Runtime::new(2, Arc::new(ManualClock::new()));
        let early = register_in(&rt, "a");
        let g = enter(Arc::clone(&rt), CoreId(0));
        bump(early); // faults the core-0 rep with one cell
        drop(g);
        let late = register_in(&rt, "b");
        let g = enter(Arc::clone(&rt), CoreId(0));
        add(late, 5);
        drop(g);
        assert_eq!(read_total(&rt, late), 5);
        assert_eq!(read_total(&rt, early), 1);
    }

    #[test]
    fn two_runtimes_keep_independent_registries() {
        let rt1 = Runtime::new(1, Arc::new(ManualClock::new()));
        let rt2 = Runtime::new(1, Arc::new(ManualClock::new()));
        let h1 = register_in(&rt1, "x");
        let h2 = register_in(&rt2, "x");
        let g = enter(Arc::clone(&rt1), CoreId(0));
        add(h1, 7);
        drop(g);
        assert_eq!(read_total(&rt1, h1), 7);
        assert_eq!(read_total(&rt2, h2), 0);
    }

    // --- FairScheduler -----------------------------------------------------

    fn cfg_two_classes(link_bps: u64) -> QosConfig {
        QosConfig::new(link_bps)
            .class(ClassConfig::new("gold").rt_bps(link_bps / 10).ls_weight(3))
            .class(ClassConfig::new("bulk").ls_weight(1))
    }

    /// Drains the scheduler completely, advancing virtual time along
    /// the paced link, and returns bytes served per class.
    fn drain_all(s: &mut FairScheduler<u32>, mut now: Ns) -> Vec<u64> {
        let mut served = vec![0u64; 4];
        loop {
            match s.pop(now) {
                Some((c, item)) => served[c.0 as usize] += item as u64,
                None => match s.next_ready(now) {
                    Some(t) => now = t,
                    None => break,
                },
            }
        }
        served
    }

    #[test]
    fn fifo_mode_preserves_global_order_and_paces_the_link() {
        let cfg = cfg_two_classes(8_000_000_000).fifo();
        let mut s: FairScheduler<u32> = FairScheduler::new(&cfg);
        s.push(ClassId(2), 1000, 1, 0);
        s.push(ClassId(0), 1000, 2, 0);
        s.push(ClassId(1), 1000, 3, 0);
        assert_eq!(s.pop(0).map(|(_, x)| x), Some(1));
        // 1000 B at 8 Gb/s = 1 µs of wire time.
        assert_eq!(s.pop(0), None);
        assert_eq!(s.next_ready(0), Some(1000));
        assert_eq!(s.pop(1000).map(|(_, x)| x), Some(2));
        assert_eq!(s.pop(2000).map(|(_, x)| x), Some(3));
        assert!(s.is_empty());
        assert_eq!(s.next_ready(2000), None);
    }

    #[test]
    fn link_share_divides_excess_by_weight() {
        // No real-time curves: pure link share, weights 3:1.
        let cfg = QosConfig::new(8_000_000_000)
            .class(ClassConfig::new("a").ls_weight(3))
            .class(ClassConfig::new("b").ls_weight(1));
        let mut s: FairScheduler<u32> = FairScheduler::new(&cfg);
        for _ in 0..400 {
            s.push(ClassId(1), 1000, 1000, 0);
            s.push(ClassId(2), 1000, 1000, 0);
        }
        let served = drain_all(&mut s, 0);
        // Everything drains eventually; fairness shows in the *order*.
        assert_eq!(served[1], 400_000);
        assert_eq!(served[2], 400_000);
        // Check the ratio over the first quarter of the drain instead.
        let mut s: FairScheduler<u32> = FairScheduler::new(&cfg);
        for _ in 0..400 {
            s.push(ClassId(1), 1000, 1000, 0);
            s.push(ClassId(2), 1000, 1000, 0);
        }
        let mut now = 0;
        let (mut a, mut b) = (0u64, 0u64);
        for _ in 0..200 {
            loop {
                if let Some((c, x)) = s.pop(now) {
                    if c == ClassId(1) {
                        a += x as u64;
                    } else {
                        b += x as u64;
                    }
                    break;
                }
                now = s.next_ready(now).unwrap();
            }
        }
        // Weight 3:1 → a gets ~3× b's bytes while both stay backlogged.
        assert!(a >= 2 * b, "link share not weight-proportional: {a} vs {b}");
    }

    #[test]
    fn real_time_curve_guarantees_rate_under_flood() {
        // gold guarantees 10% of an 8 Gb/s link; bulk floods with a
        // huge weight. gold must still see ≥ its guaranteed share.
        let link = 8_000_000_000u64;
        let cfg = QosConfig::new(link)
            .class(ClassConfig::new("gold").rt_bps(link / 10).ls_weight(1))
            .class(ClassConfig::new("bulk").ls_weight(100));
        let mut s: FairScheduler<u32> = FairScheduler::new(&cfg);
        for _ in 0..100 {
            s.push(ClassId(1), 1000, 1, 0);
        }
        for _ in 0..2000 {
            s.push(ClassId(2), 1000, 1, 0);
        }
        // Serve for exactly 1 ms of virtual link time (= 1 MB of wire
        // capacity at 8 Gb/s = 1000 frames).
        let mut now = 0;
        let mut gold = 0u64;
        let mut total = 0u64;
        while now < 1_000_000 {
            match s.pop(now) {
                Some((c, _)) => {
                    total += 1;
                    if c == ClassId(1) {
                        gold += 1;
                    }
                }
                None => match s.next_ready(now) {
                    Some(t) => now = t,
                    None => break,
                },
            }
        }
        // 10% guarantee of 1000 frames ≈ 100 frames; all of gold's
        // backlog clears within the window despite bulk's 100× weight.
        assert!(total >= 900, "link under-served: {total}");
        assert!(
            gold >= 95,
            "real-time guarantee violated: {gold}/{total} frames"
        );
    }

    #[test]
    fn newly_backlogged_class_gets_no_banked_credit() {
        // b idles while a consumes the link, then wakes: b must not
        // burst ahead on "saved up" virtual time — service from the
        // wake point divides by weight (1:1 here).
        let cfg = QosConfig::new(8_000_000_000)
            .class(ClassConfig::new("a").ls_weight(1))
            .class(ClassConfig::new("b").ls_weight(1));
        let mut s: FairScheduler<u32> = FairScheduler::new(&cfg);
        for _ in 0..100 {
            s.push(ClassId(1), 1000, 1, 0);
        }
        let mut now = 0;
        for _ in 0..100 {
            loop {
                if s.pop(now).is_some() {
                    break;
                }
                now = s.next_ready(now).unwrap();
            }
        }
        // b wakes with a deep backlog; a still has traffic arriving.
        for _ in 0..50 {
            s.push(ClassId(1), 1000, 1, now);
            s.push(ClassId(2), 1000, 1, now);
        }
        let mut a = 0;
        let mut b = 0;
        for _ in 0..50 {
            loop {
                if let Some((c, _)) = s.pop(now) {
                    if c == ClassId(1) {
                        a += 1;
                    } else {
                        b += 1;
                    }
                    break;
                }
                now = s.next_ready(now).unwrap();
            }
        }
        // Interleaved ~1:1, not b-first.
        assert!(a >= 20 && b >= 20, "wake-up burst broke fairness: {a}/{b}");
    }

    #[test]
    fn class_id_clamps_to_configured_classes() {
        let cfg = QosConfig::new(1_000_000);
        let mut s: FairScheduler<u32> = FairScheduler::new(&cfg);
        s.push(ClassId(250), 100, 9, 0);
        assert_eq!(s.pop(0), Some((ClassId(0), 9)));
    }
}
