//! An RCU hash map (§3.6 of the paper).
//!
//! The EbbRT network stack "stores connection state in an RCU hash table
//! which allows common connection lookup operations to proceed without
//! any atomic operations", and the memcached port keeps its key-value
//! pairs in the same structure. This module provides that map:
//!
//! * **Readers** ([`RcuHashMap::get`], [`RcuHashMap::for_each`]) walk
//!   bucket chains with plain acquire loads — no locks, no atomic RMW.
//! * **Writers** serialize on an internal spinlock; removal unlinks the
//!   node and *retires* it to the machine's [`RcuDomain`], so readers
//!   that already hold the node keep a valid reference until the grace
//!   period ends.
//! * **Resize** builds a fresh table (cloning the `Arc`ed entries) and
//!   swaps it in; the old table and nodes are retired wholesale.
//!
//! # Read-side contract
//!
//! Callers of the read operations must be inside an event (the event
//! loop itself brackets the critical section) or hold a
//! [`crate::rcu::RcuDomain::read_guard`] for a core of the same domain.
//! References must not be retained after the closure returns — the
//! closure-based API makes escape impossible for borrows.

use std::borrow::Borrow;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::rcu::RcuDomain;
use crate::spinlock::SpinLock;

struct Node<K, V> {
    hash: u64,
    data: Arc<(K, V)>,
    next: AtomicPtr<Node<K, V>>,
}

struct Table<K, V> {
    mask: usize,
    buckets: Box<[AtomicPtr<Node<K, V>>]>,
}

impl<K, V> Table<K, V> {
    fn new(capacity: usize) -> Self {
        debug_assert!(capacity.is_power_of_two());
        Table {
            mask: capacity - 1,
            buckets: (0..capacity)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        }
    }

    fn bucket(&self, hash: u64) -> &AtomicPtr<Node<K, V>> {
        &self.buckets[(hash as usize) & self.mask]
    }
}

/// Deferred destructor for an unlinked node.
struct NodeGarbage<K, V>(*mut Node<K, V>);

// SAFETY: the node is unlinked and owned solely by the garbage wrapper;
// K and V are Send, and the Arc<(K, V)> inside is dropped on one thread.
unsafe impl<K: Send, V: Send> Send for NodeGarbage<K, V> {}

impl<K, V> Drop for NodeGarbage<K, V> {
    fn drop(&mut self) {
        // SAFETY: `0` came from `Box::into_raw` and was unlinked from the
        // table before being retired; the grace period has elapsed.
        drop(unsafe { Box::from_raw(self.0) });
    }
}

/// Deferred destructor for a replaced table *and all its nodes* (the
/// resize path clones entries into the new table, so old nodes are
/// exclusively owned by the old table).
struct TableGarbage<K, V>(*mut Table<K, V>);

// SAFETY: as for NodeGarbage; the table and its chain are exclusively
// owned once unlinked.
unsafe impl<K: Send, V: Send> Send for TableGarbage<K, V> {}

impl<K, V> Drop for TableGarbage<K, V> {
    fn drop(&mut self) {
        // SAFETY: the table pointer came from `Box::into_raw`, was
        // replaced in the map before retirement, and its nodes were
        // cloned (not moved) into the successor table.
        let table = unsafe { Box::from_raw(self.0) };
        for bucket in table.buckets.iter() {
            let mut p = bucket.load(Ordering::Relaxed);
            while !p.is_null() {
                // SAFETY: chain nodes of the retired table are owned by
                // it exclusively.
                let node = unsafe { Box::from_raw(p) };
                p = node.next.load(Ordering::Relaxed);
            }
        }
    }
}

/// A concurrent hash map with lock-free readers and RCU-deferred
/// reclamation. See the module docs for the read-side contract.
pub struct RcuHashMap<K, V> {
    domain: Arc<RcuDomain>,
    table: AtomicPtr<Table<K, V>>,
    writer: SpinLock<()>,
    len: AtomicUsize,
}

// SAFETY: readers use acquire loads on shared pointers; writers are
// serialized by `writer`; reclamation is deferred through `domain`.
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for RcuHashMap<K, V> {}
unsafe impl<K: Send, V: Send> Send for RcuHashMap<K, V> {}

impl<K, V> RcuHashMap<K, V>
where
    K: Hash + Eq + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    /// Default initial bucket count.
    pub const DEFAULT_CAPACITY: usize = 64;

    /// Creates an empty map whose reclamation is governed by `domain`.
    pub fn new(domain: Arc<RcuDomain>) -> Self {
        Self::with_capacity(domain, Self::DEFAULT_CAPACITY)
    }

    /// As [`Self::new`] with an explicit initial bucket count (rounded up
    /// to a power of two).
    pub fn with_capacity(domain: Arc<RcuDomain>, capacity: usize) -> Self {
        let capacity = capacity.next_power_of_two().max(4);
        RcuHashMap {
            domain,
            table: AtomicPtr::new(Box::into_raw(Box::new(Table::new(capacity)))),
            writer: SpinLock::new(()),
            len: AtomicUsize::new(0),
        }
    }

    fn hash_of<Q: Hash + ?Sized>(key: &Q) -> u64 {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        h.finish()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `key` and applies `f` to the value, without locks or
    /// atomic read-modify-write operations.
    pub fn get<Q, R>(&self, key: &Q, f: impl FnOnce(&V) -> R) -> Option<R>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let hash = Self::hash_of(key);
        // SAFETY: the table pointer is valid — replaced tables are only
        // freed after a grace period, and the caller is inside a
        // read-side critical section (module contract).
        let table = unsafe { &*self.table.load(Ordering::Acquire) };
        let mut p = table.bucket(hash).load(Ordering::Acquire);
        while !p.is_null() {
            // SAFETY: nodes reachable from a live table are either still
            // linked or retired-but-not-reclaimed; both outlive this
            // critical section.
            let node = unsafe { &*p };
            if node.hash == hash && node.data.0.borrow() == key {
                return Some(f(&node.data.1));
            }
            p = node.next.load(Ordering::Acquire);
        }
        None
    }

    /// Returns a clone of the entry `Arc` for `key`, allowing the caller
    /// to hold the pair beyond the critical section.
    pub fn get_entry<Q>(&self, key: &Q) -> Option<Arc<(K, V)>>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let hash = Self::hash_of(key);
        // SAFETY: as in `get`.
        let table = unsafe { &*self.table.load(Ordering::Acquire) };
        let mut p = table.bucket(hash).load(Ordering::Acquire);
        while !p.is_null() {
            // SAFETY: as in `get`.
            let node = unsafe { &*p };
            if node.hash == hash && node.data.0.borrow() == key {
                return Some(Arc::clone(&node.data));
            }
            p = node.next.load(Ordering::Acquire);
        }
        None
    }

    /// Whether `key` is present.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.get(key, |_| ()).is_some()
    }

    /// Inserts or replaces; returns `true` if an existing entry was
    /// replaced. Readers observe either the old or the new value, never
    /// neither (the new node is published before the old is unlinked).
    pub fn insert(&self, key: K, value: V) -> bool {
        let hash = Self::hash_of(&key);
        let _w = self.writer.lock();
        // SAFETY: the writer lock excludes concurrent table replacement.
        let table = unsafe { &*self.table.load(Ordering::Acquire) };
        let bucket = table.bucket(hash);

        // Publish the new node at the bucket head.
        let head = bucket.load(Ordering::Acquire);
        let new = Box::into_raw(Box::new(Node {
            hash,
            data: Arc::new((key, value)),
            next: AtomicPtr::new(head),
        }));
        bucket.store(new, Ordering::Release);

        // Unlink any previous entry for the key (now shadowed by `new`).
        // SAFETY: `new` was just created by us and is valid.
        let new_ref = unsafe { &*new };
        let key_ref = &new_ref.data.0;
        let mut prev: &AtomicPtr<Node<K, V>> = &new_ref.next;
        let mut p = prev.load(Ordering::Acquire);
        let mut replaced = false;
        while !p.is_null() {
            // SAFETY: chain traversal under the writer lock.
            let node = unsafe { &*p };
            if node.hash == hash && node.data.0 == *key_ref {
                prev.store(node.next.load(Ordering::Acquire), Ordering::Release);
                self.domain.retire(NodeGarbage(p));
                replaced = true;
                break;
            }
            prev = &node.next;
            p = node.next.load(Ordering::Acquire);
        }

        if !replaced {
            let len = self.len.fetch_add(1, Ordering::AcqRel) + 1;
            if len > table.buckets.len() {
                self.resize(table.buckets.len() * 2);
            }
        }
        replaced
    }

    /// Removes `key`, returning the entry if present. The node is
    /// retired, so concurrent readers finish safely.
    pub fn remove<Q>(&self, key: &Q) -> Option<Arc<(K, V)>>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let hash = Self::hash_of(key);
        let _w = self.writer.lock();
        // SAFETY: writer lock held.
        let table = unsafe { &*self.table.load(Ordering::Acquire) };
        let bucket = table.bucket(hash);
        let mut prev: &AtomicPtr<Node<K, V>> = bucket;
        let mut p = prev.load(Ordering::Acquire);
        while !p.is_null() {
            // SAFETY: chain traversal under the writer lock.
            let node = unsafe { &*p };
            if node.hash == hash && node.data.0.borrow() == key {
                let data = Arc::clone(&node.data);
                prev.store(node.next.load(Ordering::Acquire), Ordering::Release);
                self.domain.retire(NodeGarbage(p));
                self.len.fetch_sub(1, Ordering::AcqRel);
                return Some(data);
            }
            prev = &node.next;
            p = node.next.load(Ordering::Acquire);
        }
        None
    }

    /// Applies `f` to every entry (reader-side; sees a consistent chain
    /// per bucket but concurrent writers may add/remove around it).
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        // SAFETY: as in `get`.
        let table = unsafe { &*self.table.load(Ordering::Acquire) };
        for bucket in table.buckets.iter() {
            let mut p = bucket.load(Ordering::Acquire);
            while !p.is_null() {
                // SAFETY: as in `get`.
                let node = unsafe { &*p };
                f(&node.data.0, &node.data.1);
                p = node.next.load(Ordering::Acquire);
            }
        }
    }

    /// Current bucket count (diagnostic).
    pub fn capacity(&self) -> usize {
        // SAFETY: as in `get`.
        unsafe { &*self.table.load(Ordering::Acquire) }
            .buckets
            .len()
    }

    /// Grows the table to `new_capacity` buckets. Caller holds the
    /// writer lock.
    fn resize(&self, new_capacity: usize) {
        let old_ptr = self.table.load(Ordering::Acquire);
        // SAFETY: writer lock held; table valid.
        let old = unsafe { &*old_ptr };
        let new = Box::new(Table::new(new_capacity));
        for bucket in old.buckets.iter() {
            let mut p = bucket.load(Ordering::Acquire);
            while !p.is_null() {
                // SAFETY: chain traversal under the writer lock.
                let node = unsafe { &*p };
                let nb = new.bucket(node.hash);
                let head = nb.load(Ordering::Relaxed);
                let copy = Box::into_raw(Box::new(Node {
                    hash: node.hash,
                    data: Arc::clone(&node.data),
                    next: AtomicPtr::new(head),
                }));
                nb.store(copy, Ordering::Release);
                p = node.next.load(Ordering::Acquire);
            }
        }
        self.table.store(Box::into_raw(new), Ordering::Release);
        self.domain.retire(TableGarbage(old_ptr));
    }
}

impl<K, V> Drop for RcuHashMap<K, V> {
    fn drop(&mut self) {
        // `&mut self`: no readers can exist; free the table directly.
        let p = *self.table.get_mut();
        drop(TableGarbage(p));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CoreId;

    fn map() -> (Arc<RcuDomain>, RcuHashMap<String, u64>) {
        let domain = Arc::new(RcuDomain::new(2));
        let map = RcuHashMap::new(Arc::clone(&domain));
        (domain, map)
    }

    #[test]
    fn insert_get_remove() {
        let (domain, map) = map();
        let _g = domain.read_guard(CoreId(0));
        assert!(!map.insert("a".into(), 1));
        assert!(!map.insert("b".into(), 2));
        assert_eq!(map.get("a", |v| *v), Some(1));
        assert_eq!(map.get("b", |v| *v), Some(2));
        assert_eq!(map.get("c", |v| *v), None);
        assert_eq!(map.len(), 2);
        let removed = map.remove("a").unwrap();
        assert_eq!(removed.1, 1);
        assert_eq!(map.get("a", |v| *v), None);
        assert_eq!(map.len(), 1);
        assert!(map.remove("a").is_none());
    }

    #[test]
    fn replace_keeps_key_visible() {
        let (domain, map) = map();
        let _g = domain.read_guard(CoreId(0));
        map.insert("k".into(), 1);
        assert!(map.insert("k".into(), 2));
        assert_eq!(map.get("k", |v| *v), Some(2));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn resize_preserves_entries() {
        let (domain, map) = map();
        let _g = domain.read_guard(CoreId(0));
        let initial_cap = map.capacity();
        for i in 0..500u64 {
            map.insert(format!("key{i}"), i);
        }
        assert!(map.capacity() > initial_cap, "map should have resized");
        assert_eq!(map.len(), 500);
        for i in 0..500u64 {
            assert_eq!(map.get(format!("key{i}").as_str(), |v| *v), Some(i));
        }
    }

    #[test]
    fn retired_nodes_reclaimed_after_grace() {
        let (domain, map) = map();
        {
            let _g = domain.read_guard(CoreId(0));
            map.insert("x".into(), 1);
            map.remove("x");
            assert!(domain.pending_count() > 0);
            assert_eq!(domain.try_reclaim(), 0, "reader still live");
        }
        assert!(domain.try_reclaim() > 0);
        assert_eq!(domain.pending_count(), 0);
    }

    #[test]
    fn get_entry_outlives_critical_section() {
        let (domain, map) = map();
        let entry = {
            let _g = domain.read_guard(CoreId(0));
            map.insert("x".into(), 42);
            map.get_entry("x").unwrap()
        };
        map.remove("x");
        domain.try_reclaim();
        // The Arc keeps the data alive even after reclaim.
        assert_eq!(entry.1, 42);
    }

    #[test]
    fn for_each_visits_all() {
        let (domain, map) = map();
        let _g = domain.read_guard(CoreId(0));
        for i in 0..20u64 {
            map.insert(format!("k{i}"), i);
        }
        let mut sum = 0;
        map.for_each(|_, v| sum += *v);
        assert_eq!(sum, (0..20).sum::<u64>());
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let domain = Arc::new(RcuDomain::new(4));
        let map = Arc::new(RcuHashMap::<u64, u64>::new(Arc::clone(&domain)));
        // Pre-populate stable keys.
        {
            let _g = domain.read_guard(CoreId(0));
            for i in 0..100 {
                map.insert(i, i * 2);
            }
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (1..4u32)
            .map(|c| {
                let map = Arc::clone(&map);
                let domain = Arc::clone(&domain);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    // At least one full scan, even if the writer
                    // finishes before this thread is first scheduled —
                    // the `hits > 0` assertion below must not depend
                    // on scheduling luck.
                    let mut hits = 0u64;
                    loop {
                        let _g = domain.read_guard(CoreId(c));
                        for i in 0..100 {
                            if let Some(v) = map.get(&i, |v| *v) {
                                assert_eq!(v % 2, 0, "value must be a valid doubling");
                                hits += 1;
                            }
                        }
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    hits
                })
            })
            .collect();
        // Writer churns: replaces values and removes/reinserts keys.
        for round in 1..50u64 {
            for i in 0..100 {
                map.insert(i, i * 2 + round * 2);
            }
            for i in (0..100).step_by(7) {
                map.remove(&i);
                map.insert(i, i * 2);
            }
            domain.try_reclaim();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
        // All readers gone: everything reclaims.
        domain.try_reclaim();
        assert_eq!(domain.pending_count(), 0);
    }
}
