//! The threaded native backend: runs one EbbRT machine on real OS
//! threads, one per core.
//!
//! This backend plays the role of the paper's bare-metal environment for
//! everything that needs *real* parallelism — the allocator scalability
//! experiment (Figure 3), multi-core Ebb behaviour, cooperative blocking.
//! (The deterministic virtual-time backend used for the networked
//! experiments lives in the `ebbrt-sim` crate.)
//!
//! Each core thread runs the dispatch loop of
//! [`crate::event::EventManager`]: it drains interrupts, synthetic
//! events and timers; spins while idle handlers are installed (a polling
//! core genuinely burns its CPU, as on hardware); and otherwise parks
//! until a device raises an interrupt, a remote spawn arrives, or the
//! next timer is due.
//!
//! Cooperative blocking is implemented by *loop handoff*: when an event
//! calls [`crate::event::EventManager::save_context`], its thread keeps
//! the suspended stack and a successor thread takes over the loop; on
//! activation the roles reverse. At most one thread dispatches for a
//! given core at any time.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::sync::Parker;
use parking_lot::Mutex;

use crate::clock::{Clock, RealClock};
use crate::cpu::CoreId;
use crate::runtime::{self, Runtime};

/// A booted machine backed by OS threads.
pub struct NativeMachine {
    rt: Arc<Runtime>,
    threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl NativeMachine {
    /// Boots a machine with `ncores` cores on the wall clock.
    pub fn boot(ncores: usize) -> Self {
        Self::boot_with_clock(ncores, Arc::new(RealClock::new()))
    }

    /// Boots a machine with an explicit clock.
    pub fn boot_with_clock(ncores: usize, clock: Arc<dyn Clock>) -> Self {
        let rt = Runtime::new(ncores, clock);
        let threads = Arc::new(Mutex::new(Vec::new()));
        // Install successor spawners so save_context works, then start
        // the initial runner for every core.
        for i in 0..ncores {
            let core = CoreId(i as u32);
            let em = rt.event_manager(core);
            let spawn_rt = Arc::clone(&rt);
            let spawn_threads = Arc::clone(&threads);
            em.register_successor_spawner(Arc::new(move || {
                let rt = Arc::clone(&spawn_rt);
                let h = std::thread::Builder::new()
                    .name(format!("ebbrt-{core}-succ"))
                    .spawn(move || core_loop(rt, core))
                    .expect("failed to spawn successor core thread");
                spawn_threads.lock().push(h);
            }));
        }
        for i in 0..ncores {
            let core = CoreId(i as u32);
            let rt2 = Arc::clone(&rt);
            let h = std::thread::Builder::new()
                .name(format!("ebbrt-{core}"))
                .spawn(move || core_loop(rt2, core))
                .expect("failed to spawn core thread");
            threads.lock().push(h);
        }
        NativeMachine { rt, threads }
    }

    /// The machine's runtime.
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.rt
    }

    /// Queues `f` as an event on `core`.
    pub fn spawn(&self, core: CoreId, f: impl FnOnce() + Send + 'static) {
        self.rt.spawn(core, f);
    }

    /// Requests exit on all cores and joins every loop thread.
    ///
    /// All saved event contexts must have been resumed first; a context
    /// still parked in `save_context` would never exit.
    pub fn shutdown(self) {
        self.rt.request_exit_all();
        // Successor threads may still be registered while we join; drain
        // until the list stays empty.
        loop {
            let batch: Vec<_> = {
                let mut t = self.threads.lock();
                t.drain(..).collect()
            };
            if batch.is_empty() {
                break;
            }
            for h in batch {
                let _ = h.join();
            }
        }
    }

    /// Boots `ncores`, runs `main` as the first event on core 0, shuts
    /// the machine down when `main` returns, and yields its result.
    ///
    /// `main` runs inside the event loop: it may use Ebbs, spawn events
    /// on any core, and block on futures via [`crate::event::block_on`].
    pub fn run<R: Send + 'static>(ncores: usize, main: impl FnOnce() -> R + Send + 'static) -> R {
        let machine = Self::boot(ncores);
        let (tx, rx) = std::sync::mpsc::channel();
        machine.spawn(CoreId(0), move || {
            let result = main();
            runtime::with_current(|rt| rt.request_exit_all());
            let _ = tx.send(result);
        });
        let result = rx.recv().expect("main event panicked before returning");
        machine.shutdown();
        result
    }
}

/// The per-core dispatch loop (also run by successor threads during
/// cooperative-blocking handoffs).
fn core_loop(rt: Arc<Runtime>, core: CoreId) {
    let _guard = runtime::enter(Arc::clone(&rt), core);
    let em = rt.event_manager(core);
    let parker = Parker::new();
    let unparker = parker.unparker().clone();
    let waker: Arc<dyn Fn() + Send + Sync> = Arc::new(move || unparker.unpark());
    loop {
        if em.exit_requested() {
            return;
        }
        // (Re-)register our waker *before* checking for work so a raise
        // between the check and the park still wakes us. A previous
        // runner's waker may be installed after a handoff.
        em.register_waker(Arc::clone(&waker));
        let progress = em.run_once();
        if let Some(ctx) = em.take_handoff() {
            // A saved context resumes; this thread stops dispatching.
            ctx.signal();
            return;
        }
        if progress.any() {
            continue;
        }
        rt.rcu().try_reclaim();
        if em.pending_work() {
            continue;
        }
        if em.has_idle_handlers() {
            // A polling core spins (the paper's idle-handler semantics).
            core::hint::spin_loop();
            continue;
        }
        match em.next_timer_deadline() {
            Some(deadline) => {
                let now = rt.now_ns();
                if deadline > now {
                    parker.park_timeout(Duration::from_nanos(deadline - now));
                }
            }
            None => parker.park(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu;
    use crate::event::block_on;
    use crate::future;
    use crate::spinlock::SpinBarrier;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_executes_main_on_core0() {
        let core = NativeMachine::run(2, cpu::current);
        assert_eq!(core, CoreId(0));
    }

    #[test]
    fn events_run_on_all_cores_in_parallel() {
        let n = 4;
        let result = NativeMachine::run(n, move || {
            let rt = runtime::current();
            let barrier = Arc::new(SpinBarrier::new(n));
            let seen = Arc::new(AtomicUsize::new(0));
            let futures: Vec<_> = (0..n)
                .map(|i| {
                    let (p, f) = future::promise::<u32>();
                    let barrier = Arc::clone(&barrier);
                    let seen = Arc::clone(&seen);
                    rt.spawn(CoreId(i as u32), move || {
                        // All cores must be inside this event at once for
                        // the barrier to release: proves parallelism.
                        barrier.wait();
                        seen.fetch_add(1, Ordering::SeqCst);
                        p.set_value(cpu::current().0);
                    });
                    f
                })
                .collect();
            let cores = block_on(future::join_all(futures)).unwrap();
            (cores, seen.load(Ordering::SeqCst))
        });
        let (mut cores, seen) = result;
        cores.sort();
        assert_eq!(cores, vec![0, 1, 2, 3]);
        assert_eq!(seen, 4);
    }

    #[test]
    fn block_on_future_completed_by_remote_core() {
        let v = NativeMachine::run(2, || {
            let rt = runtime::current();
            let (p, f) = future::promise::<&'static str>();
            rt.spawn(CoreId(1), move || p.set_value("from core 1"));
            block_on(f).unwrap()
        });
        assert_eq!(v, "from core 1");
    }

    #[test]
    fn block_on_ready_future_is_fast_path() {
        let v = NativeMachine::run(1, || block_on(future::ready(7)).unwrap());
        assert_eq!(v, 7);
    }

    #[test]
    fn block_on_timer_on_same_core() {
        let v = NativeMachine::run(1, || {
            let rt = runtime::current();
            let (p, f) = future::promise::<u8>();
            rt.local_event_manager()
                .set_timer(1_000_000, move || p.set_value(9));
            block_on(f).unwrap()
        });
        assert_eq!(v, 9);
    }

    #[test]
    fn core_continues_dispatching_while_event_blocked() {
        // An event blocks on core 0; another event must still run on
        // core 0 (the successor thread keeps the loop alive) and resume
        // the blocked one.
        let log = NativeMachine::run(1, || {
            let rt = runtime::current();
            let (p, f) = future::promise::<()>();
            let order = Arc::new(Mutex::new(Vec::new()));
            let o2 = Arc::clone(&order);
            rt.spawn(CoreId(0), move || {
                o2.lock().push("other event ran");
                p.set_value(());
            });
            order.lock().push("blocking");
            block_on(f).unwrap();
            order.lock().push("resumed");
            Arc::try_unwrap(order).unwrap().into_inner()
        });
        assert_eq!(log, vec!["blocking", "other event ran", "resumed"]);
    }

    #[test]
    fn nested_blocking() {
        let v = NativeMachine::run(2, || {
            let rt = runtime::current();
            let (p_outer, f_outer) = future::promise::<u32>();
            rt.spawn(CoreId(1), move || {
                // The remote event itself blocks before completing.
                let (p_inner, f_inner) = future::promise::<u32>();
                let rt = runtime::current();
                rt.spawn(CoreId(0), move || p_inner.set_value(20));
                let inner = block_on(f_inner).unwrap();
                p_outer.set_value(inner + 1);
            });
            block_on(f_outer).unwrap()
        });
        assert_eq!(v, 21);
    }

    #[test]
    fn rcu_reclaim_driven_by_loop() {
        let pending = NativeMachine::run(1, || {
            let rt = runtime::current();
            rt.rcu().retire(vec![0u8; 16]);
            let domain = Arc::clone(rt.rcu());
            // Timer blocks give the loop idle passes (where it runs
            // try_reclaim). Under load a pass may be skipped, so retry.
            let mut pending = domain.pending_count();
            for _ in 0..50 {
                if pending == 0 {
                    break;
                }
                let (p, f) = future::promise::<()>();
                rt.local_event_manager()
                    .set_timer(1_000_000, move || p.set_value(()));
                block_on(f).unwrap();
                pending = domain.pending_count();
            }
            pending
        });
        assert_eq!(pending, 0);
    }

    #[test]
    fn many_cross_core_messages() {
        let total = NativeMachine::run(4, || {
            let rt = runtime::current();
            let counter = Arc::new(AtomicUsize::new(0));
            let futures: Vec<_> = (0..100)
                .map(|i| {
                    let (p, f) = future::promise::<()>();
                    let counter = Arc::clone(&counter);
                    rt.spawn(CoreId(i % 4), move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                        p.set_value(());
                    });
                    f
                })
                .collect();
            block_on(future::join_all(futures)).unwrap();
            counter.load(Ordering::Relaxed)
        });
        assert_eq!(total, 100);
    }
}
