//! Per-machine runtime instance.
//!
//! A [`Runtime`] bundles everything one EbbRT machine (native library OS
//! instance or hosted process) owns: the Ebb translation state, one
//! [`EventManager`] per core, the clock, and the RCU domain. Threads
//! *enter* a runtime on behalf of a core ([`enter`]); while entered,
//! [`crate::ebb::EbbRef`] calls and event APIs resolve against it.
//!
//! Multiple runtimes may coexist in one process — that is how the
//! simulated backend hosts a whole cluster (several native instances
//! plus a hosted instance) inside one deterministic simulation.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};

use crate::clock::{Clock, Ns};
use crate::cpu::{self, CoreBinding, CoreId};
use crate::ebb::{EbbManager, EbbRef, MulticoreEbb, SystemEbb};
use crate::event::EventManager;
use crate::rcu::RcuDomain;
use crate::spinlock::SpinLock;

/// Default Ebb id capacity per machine.
pub const DEFAULT_EBB_CAPACITY: usize = 4096;

/// Source of machine-unique runtime ids ([`Runtime::uid`]). Ids start
/// at 1 and are never reused, so a stale cached rep pointer (see
/// [`crate::ebb::CachedEbbRef`]) can never collide with a runtime
/// allocated later at the same address.
static NEXT_RUNTIME_UID: AtomicU64 = AtomicU64::new(1);

/// One EbbRT machine instance.
pub struct Runtime {
    ncores: usize,
    uid: u64,
    clock: Arc<dyn Clock>,
    ebbs: EbbManager,
    events: Box<[EventManager]>,
    rcu: Arc<RcuDomain>,
}

impl Runtime {
    /// Creates a runtime with `ncores` cores reading time from `clock`.
    pub fn new(ncores: usize, clock: Arc<dyn Clock>) -> Arc<Self> {
        Self::with_capacity(ncores, clock, DEFAULT_EBB_CAPACITY)
    }

    /// As [`Runtime::new`] with an explicit Ebb id capacity.
    pub fn with_capacity(ncores: usize, clock: Arc<dyn Clock>, capacity: usize) -> Arc<Self> {
        assert!(ncores > 0, "a machine needs at least one core");
        let rcu = Arc::new(RcuDomain::new(ncores));
        let events = (0..ncores)
            .map(|i| {
                let core = CoreId(i as u32);
                EventManager::new(core, Arc::clone(&clock), rcu.epoch(core))
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let rt = Arc::new(Runtime {
            ncores,
            uid: NEXT_RUNTIME_UID.fetch_add(1, Ordering::Relaxed),
            clock,
            ebbs: EbbManager::new(ncores, capacity),
            events,
            rcu,
        });
        // Seed the well-known-id table: the event system is reachable
        // through `SystemEbb::EventManager` from the moment the machine
        // exists (reps fault in lazily, per core, on first dispatch).
        rt.ebbs
            .register_root::<EventManagerEbb>(SystemEbb::EventManager.id(), Arc::downgrade(&rt));
        rt
    }

    /// Number of cores.
    pub fn ncores(&self) -> usize {
        self.ncores
    }

    /// This runtime's machine-unique id (never reused within the
    /// process). [`crate::ebb::CachedEbbRef`] tags memoized rep
    /// pointers with it so a cached pointer is never served across
    /// runtimes.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// The machine's clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Current time in nanoseconds.
    pub fn now_ns(&self) -> Ns {
        self.clock.now_ns()
    }

    /// The Ebb translation state.
    pub fn ebbs(&self) -> &EbbManager {
        &self.ebbs
    }

    /// The event manager for `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn event_manager(&self, core: CoreId) -> &EventManager {
        &self.events[core.index()]
    }

    /// The event manager for the calling core.
    pub fn local_event_manager(&self) -> &EventManager {
        self.event_manager(cpu::current())
    }

    /// All event managers, in core order.
    pub fn event_managers(&self) -> &[EventManager] {
        &self.events
    }

    /// The RCU domain (shared: `RcuHashMap`s hold a clone).
    pub fn rcu(&self) -> &Arc<RcuDomain> {
        &self.rcu
    }

    /// Queues `f` on `core`'s event loop from any thread.
    ///
    /// Takes the owner-core fast path (local queue, no wake) only when
    /// the caller is entered on **this runtime** and `core`. A bare core
    /// id comparison is not enough: under the simulated backend every
    /// machine has a `CoreId(0)`, and a spawn from machine A's core 0
    /// onto machine B's core 0 classified as "local" would sit in B's
    /// queue without a wake — an idle B would never run it.
    pub fn spawn(&self, core: CoreId, f: impl FnOnce() + Send + 'static) {
        let em = self.event_manager(core);
        let entered_here = CURRENT_FAST.with(|c| {
            let (rt, cur) = c.get();
            std::ptr::eq(rt, self) && cur == core.0
        });
        if entered_here {
            em.spawn_local(f);
        } else {
            em.spawn_remote(f);
        }
    }

    /// Requests every core's loop to exit (machine shutdown).
    pub fn request_exit_all(&self) {
        for em in self.events.iter() {
            em.request_exit();
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<(Arc<Runtime>, CoreId)>> = const { RefCell::new(Vec::new()) };
    /// Fast mirror of the stack top: (runtime pointer, core id). Null
    /// when no runtime is entered. Lets the Ebb-dispatch fast path do a
    /// single thread-local read with no RefCell accounting.
    static CURRENT_FAST: std::cell::Cell<(*const Runtime, u32)> =
        const { std::cell::Cell::new((std::ptr::null(), 0)) };
}

fn refresh_fast() {
    CURRENT.with(|c| {
        let stack = c.borrow();
        let top = match stack.last() {
            Some((rt, core)) => (Arc::as_ptr(rt), core.0),
            None => (std::ptr::null(), 0),
        };
        CURRENT_FAST.with(|f| f.set(top));
    });
}

/// Guard for an entered runtime; leaving restores the previous one.
pub struct EnterGuard {
    _core: CoreBinding,
}

impl Drop for EnterGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
        refresh_fast();
    }
}

/// Enters `rt` on behalf of `core`: binds the calling thread's core
/// identity and makes `rt` the target of [`with_current`] until the
/// guard drops. Entries nest (the simulated backend switches machines
/// per delivered event).
pub fn enter(rt: Arc<Runtime>, core: CoreId) -> EnterGuard {
    assert!(
        core.index() < rt.ncores(),
        "core {core} out of range for {}-core machine",
        rt.ncores()
    );
    CURRENT.with(|c| c.borrow_mut().push((rt, core)));
    refresh_fast();
    EnterGuard {
        _core: cpu::bind(core),
    }
}

/// Installs a hand-placed representative on **every core** of `rt`
/// under `id`, entering each core in turn. This is the registration
/// path for system objects whose state cannot live in a
/// `Send + Sync` root — a rep sharing one machine-wide `Rc`-owned
/// object (the network manager, the messenger) is *installed*, not
/// faulted from a root.
///
/// # Panics
///
/// Panics if any core already has a rep for `id` (one instance per
/// machine).
pub fn install_on_all_cores<T: 'static>(
    rt: &Arc<Runtime>,
    id: crate::ebb::EbbId,
    mut make: impl FnMut(CoreId) -> T,
) {
    for i in 0..rt.ncores() {
        let core = CoreId(i as u32);
        let guard = enter(Arc::clone(rt), core);
        rt.ebbs().install_rep(id, core, make(core));
        drop(guard);
    }
}

/// Whether the calling thread has entered a runtime.
pub fn is_entered() -> bool {
    CURRENT.with(|c| !c.borrow().is_empty())
}

/// Runs `f` against the current runtime.
///
/// # Panics
///
/// Panics if the thread has not [`enter`]ed a runtime.
#[inline]
pub fn with_current<R>(f: impl FnOnce(&Runtime) -> R) -> R {
    with_current_on(|rt, _core| f(rt))
}

/// Runs `f` with the current runtime *and* core in one thread-local
/// read — the Ebb invocation fast path.
///
/// # Panics
///
/// Panics if the thread has not [`enter`]ed a runtime.
#[inline]
pub fn with_current_on<R>(f: impl FnOnce(&Runtime, CoreId) -> R) -> R {
    let (p, core) = CURRENT_FAST.with(|c| c.get());
    assert!(!p.is_null(), "thread has not entered an EbbRT runtime");
    // SAFETY: `p` mirrors the top of the entry stack, whose Arc keeps
    // the runtime alive; it is cleared/retargeted whenever a guard is
    // created or dropped on this thread.
    let rt = unsafe { &*p };
    f(rt, CoreId(core))
}

// --- Ambient context ---------------------------------------------------
//
// System Ebbs (most importantly the buffer pool) are owned by a
// runtime. Code that touches buffers without having entered one — unit
// tests, benchmark setup on the harness thread — still needs a
// translation table to resolve against. The *ambient runtime* is a
// lazily created process-wide machine reserved for exactly that: each
// unentered thread is leased its own private ambient core, so ambient
// state is thread-isolated (the semantics the old `thread_local!` pool
// provided) and the per-core non-preemption invariant holds — two live
// threads never share an ambient core; a thread's lease returns to the
// free list when it exits.

/// Cores in the process-wide ambient runtime — the ceiling on
/// concurrently live threads using system Ebbs outside any entered
/// runtime.
pub const AMBIENT_CORES: usize = 128;

static AMBIENT: OnceLock<Arc<Runtime>> = OnceLock::new();

struct AmbientLeases {
    free: Vec<u32>,
    next: u32,
}

static AMBIENT_LEASES: SpinLock<AmbientLeases> = SpinLock::new(AmbientLeases {
    free: Vec::new(),
    next: 0,
});

/// A thread's leased ambient core; returned on thread exit.
struct AmbientLease(u32);

impl Drop for AmbientLease {
    fn drop(&mut self) {
        AMBIENT_LEASES.lock().free.push(self.0);
    }
}

/// A thread's resolved ambient context: the shared ambient runtime plus
/// this thread's leased private core. Holding the `Arc` here is what
/// keeps the fast-path raw pointer trivially valid for the thread's
/// lifetime (the runtime is additionally pinned forever by the
/// process-wide [`ambient`] `OnceLock`).
struct AmbientCtx {
    /// Held, not read: keeps the fast-path pointer alive.
    _rt: Arc<Runtime>,
    /// Held, not read: returns the core on thread exit.
    _lease: AmbientLease,
}

impl Drop for AmbientCtx {
    fn drop(&mut self) {
        // Clear the fast mirror before the lease returns to the free
        // list: a pool op running in a later thread-exit destructor
        // must re-lease (slow path) rather than alias a core another
        // thread may already have been handed.
        let _ = AMBIENT_FAST.try_with(|c| c.set((std::ptr::null(), 0)));
    }
}

thread_local! {
    static AMBIENT_CTX: RefCell<Option<AmbientCtx>> = const { RefCell::new(None) };
    /// Fast mirror of `AMBIENT_CTX`: (runtime pointer, leased core).
    /// Null until the thread's first ambient resolution. This is the
    /// unentered-thread pool fast path: one `Cell` read replaces the
    /// `OnceLock` + `Arc` clone + `RefCell` accounting per operation.
    static AMBIENT_FAST: std::cell::Cell<(*const Runtime, u32)> =
        const { std::cell::Cell::new((std::ptr::null(), 0)) };
}

/// The process-wide ambient runtime (created on first use).
pub fn ambient() -> Arc<Runtime> {
    Arc::clone(AMBIENT.get_or_init(|| {
        Runtime::with_capacity(
            AMBIENT_CORES,
            Arc::new(crate::clock::ManualClock::new()),
            crate::ebb::FIRST_DYNAMIC_ID as usize * 2,
        )
    }))
}

/// Leases an ambient core and populates this thread's context + fast
/// mirror. Runs once per thread (and again only after a thread-exit
/// destructor cleared the context).
#[cold]
fn init_ambient_ctx() -> (*const Runtime, u32) {
    let id = {
        let mut pool = AMBIENT_LEASES.lock();
        pool.free.pop().unwrap_or_else(|| {
            let id = pool.next;
            assert!(
                (id as usize) < AMBIENT_CORES,
                "more than {AMBIENT_CORES} concurrent threads using the ambient runtime"
            );
            pool.next = id + 1;
            id
        })
    };
    let rt = ambient();
    let fast = (Arc::as_ptr(&rt), id);
    AMBIENT_CTX.with(|c| {
        *c.borrow_mut() = Some(AmbientCtx {
            _rt: rt,
            _lease: AmbientLease(id),
        });
    });
    AMBIENT_FAST.with(|c| c.set(fast));
    fast
}

fn with_ambient<R>(f: impl FnOnce(&Runtime, CoreId) -> R) -> R {
    // Fast path (the unentered-thread pool op): one Cell read.
    let (p, core) = AMBIENT_FAST.with(|c| c.get());
    let (p, core) = if p.is_null() {
        init_ambient_ctx()
    } else {
        (p, core)
    };
    let core = CoreId(core);
    // Bind for the duration so per-core assertions (rep installation,
    // `CoreLocal`) see the ambient identity; nests over any explicit
    // `cpu::bind` the caller holds.
    let _bind = cpu::bind(core);
    // SAFETY: `p` mirrors `AMBIENT_CTX`, whose `Arc` lives until thread
    // exit (and the pointee is additionally pinned process-wide by the
    // `ambient()` OnceLock, so even a post-destructor reader could not
    // observe a dangling runtime — it re-leases instead, because the
    // ctx destructor nulls this mirror first).
    f(unsafe { &*p }, core)
}

/// Resolves the calling thread's *dispatch context*: the entered
/// runtime and core when inside one (the fast path — one thread-local
/// read), else the ambient runtime on the thread's private ambient
/// core. This is what system-Ebb dispatch (`iobuf::pool`, stats)
/// resolves through, so those subsystems work identically inside
/// events and in plain test code.
#[inline]
pub fn with_context<R>(f: impl FnOnce(&Runtime, CoreId) -> R) -> R {
    let (p, core) = CURRENT_FAST.with(|c| c.get());
    if !p.is_null() {
        // SAFETY: see `with_current_on`.
        let rt = unsafe { &*p };
        return f(rt, CoreId(core));
    }
    with_ambient(f)
}

// --- The event-manager system Ebb ---------------------------------------

/// Per-core representative of [`SystemEbb::EventManager`]: dispatching
/// through it resolves to the calling core's [`EventManager`] of the
/// current machine. Registered automatically by [`Runtime::new`]; reps
/// fault in lazily per core.
pub struct EventManagerEbb {
    rt: Weak<Runtime>,
    core: CoreId,
}

impl MulticoreEbb for EventManagerEbb {
    type Root = Weak<Runtime>;

    fn create_rep(root: &Arc<Weak<Runtime>>, core: CoreId) -> Self {
        EventManagerEbb {
            rt: Weak::clone(root),
            core,
        }
    }
}

impl EventManagerEbb {
    /// Runs `f` against this core's event manager.
    ///
    /// # Panics
    ///
    /// Panics if the owning runtime has been dropped.
    pub fn with_em<R>(&self, f: impl FnOnce(&EventManager) -> R) -> R {
        let rt = self.rt.upgrade().expect("runtime dropped under its Ebbs");
        f(rt.event_manager(self.core))
    }
}

/// The well-known [`EbbRef`] of the current machine's event system —
/// the Ebb-dispatch route to [`Runtime::local_event_manager`].
pub fn event_manager_ref() -> EbbRef<EventManagerEbb> {
    EbbRef::from_id(SystemEbb::EventManager.id())
}

/// Returns a handle to the current runtime.
///
/// # Panics
///
/// Panics if the thread has not [`enter`]ed a runtime.
pub fn current() -> Arc<Runtime> {
    CURRENT.with(|c| {
        c.borrow()
            .last()
            .map(|(rt, _)| Arc::clone(rt))
            .expect("thread has not entered an EbbRT runtime")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn enter_nests_and_restores() {
        let clock = Arc::new(ManualClock::new());
        let rt1 = Runtime::new(1, clock.clone());
        let rt2 = Runtime::new(2, clock);
        assert!(!is_entered());
        {
            let _g1 = enter(Arc::clone(&rt1), CoreId(0));
            assert!(is_entered());
            assert_eq!(with_current(|rt| rt.ncores()), 1);
            {
                let _g2 = enter(Arc::clone(&rt2), CoreId(1));
                assert_eq!(with_current(|rt| rt.ncores()), 2);
                assert_eq!(cpu::current(), CoreId(1));
            }
            assert_eq!(with_current(|rt| rt.ncores()), 1);
            assert_eq!(cpu::current(), CoreId(0));
        }
        assert!(!is_entered());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn enter_bad_core_panics() {
        let rt = Runtime::new(1, Arc::new(ManualClock::new()));
        let _g = enter(rt, CoreId(3));
    }

    #[test]
    fn event_manager_resolves_through_well_known_id() {
        let rt = Runtime::new(2, Arc::new(ManualClock::new()));
        let _g = enter(Arc::clone(&rt), CoreId(1));
        // The Ebb route reaches the *calling core's* manager.
        event_manager_ref().with(|e| e.with_em(|em| em.spawn(|| ())));
        assert!(rt.event_manager(CoreId(1)).pending_work());
        assert!(!rt.event_manager(CoreId(0)).pending_work());
    }

    #[test]
    fn ambient_context_serves_unentered_threads_privately() {
        // Two *concurrently live* threads resolve distinct ambient
        // cores: context state (the buffer pool rides on this) cannot
        // alias. The barrier keeps both leases held at once — a dead
        // thread's core may legitimately be recycled.
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let (a, b) = {
            let spawn_probe = |barrier: Arc<std::sync::Barrier>| {
                std::thread::spawn(move || {
                    let probe = with_context(|rt, core| (rt.uid(), core));
                    barrier.wait();
                    probe
                })
            };
            let t1 = spawn_probe(Arc::clone(&barrier));
            let t2 = spawn_probe(barrier);
            (t1.join().unwrap(), t2.join().unwrap())
        };
        assert_eq!(a.0, b.0, "one shared ambient runtime");
        assert_ne!(a.1, b.1, "distinct private cores per live thread");
        // Entered runtimes take precedence over the ambient context.
        let rt = Runtime::new(1, Arc::new(ManualClock::new()));
        let _g = enter(Arc::clone(&rt), CoreId(0));
        assert_eq!(with_context(|r, _| r.uid()), rt.uid());
    }

    #[test]
    fn spawn_routes_to_core_queue() {
        let rt = Runtime::new(2, Arc::new(ManualClock::new()));
        rt.spawn(CoreId(1), || ());
        assert!(rt.event_manager(CoreId(1)).pending_work());
        assert!(!rt.event_manager(CoreId(0)).pending_work());
    }
}
