//! Per-machine runtime instance.
//!
//! A [`Runtime`] bundles everything one EbbRT machine (native library OS
//! instance or hosted process) owns: the Ebb translation state, one
//! [`EventManager`] per core, the clock, and the RCU domain. Threads
//! *enter* a runtime on behalf of a core ([`enter`]); while entered,
//! [`crate::ebb::EbbRef`] calls and event APIs resolve against it.
//!
//! Multiple runtimes may coexist in one process — that is how the
//! simulated backend hosts a whole cluster (several native instances
//! plus a hosted instance) inside one deterministic simulation.

use std::cell::RefCell;
use std::sync::Arc;

use crate::clock::{Clock, Ns};
use crate::cpu::{self, CoreBinding, CoreId};
use crate::ebb::EbbManager;
use crate::event::EventManager;
use crate::rcu::RcuDomain;

/// Default Ebb id capacity per machine.
pub const DEFAULT_EBB_CAPACITY: usize = 4096;

/// One EbbRT machine instance.
pub struct Runtime {
    ncores: usize,
    clock: Arc<dyn Clock>,
    ebbs: EbbManager,
    events: Box<[EventManager]>,
    rcu: Arc<RcuDomain>,
}

impl Runtime {
    /// Creates a runtime with `ncores` cores reading time from `clock`.
    pub fn new(ncores: usize, clock: Arc<dyn Clock>) -> Arc<Self> {
        Self::with_capacity(ncores, clock, DEFAULT_EBB_CAPACITY)
    }

    /// As [`Runtime::new`] with an explicit Ebb id capacity.
    pub fn with_capacity(ncores: usize, clock: Arc<dyn Clock>, capacity: usize) -> Arc<Self> {
        assert!(ncores > 0, "a machine needs at least one core");
        let rcu = Arc::new(RcuDomain::new(ncores));
        let events = (0..ncores)
            .map(|i| {
                let core = CoreId(i as u32);
                EventManager::new(core, Arc::clone(&clock), rcu.epoch(core))
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Arc::new(Runtime {
            ncores,
            clock,
            ebbs: EbbManager::new(ncores, capacity),
            events,
            rcu,
        })
    }

    /// Number of cores.
    pub fn ncores(&self) -> usize {
        self.ncores
    }

    /// The machine's clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Current time in nanoseconds.
    pub fn now_ns(&self) -> Ns {
        self.clock.now_ns()
    }

    /// The Ebb translation state.
    pub fn ebbs(&self) -> &EbbManager {
        &self.ebbs
    }

    /// The event manager for `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn event_manager(&self, core: CoreId) -> &EventManager {
        &self.events[core.index()]
    }

    /// The event manager for the calling core.
    pub fn local_event_manager(&self) -> &EventManager {
        self.event_manager(cpu::current())
    }

    /// All event managers, in core order.
    pub fn event_managers(&self) -> &[EventManager] {
        &self.events
    }

    /// The RCU domain (shared: `RcuHashMap`s hold a clone).
    pub fn rcu(&self) -> &Arc<RcuDomain> {
        &self.rcu
    }

    /// Queues `f` on `core`'s event loop from any thread.
    pub fn spawn(&self, core: CoreId, f: impl FnOnce() + Send + 'static) {
        self.event_manager(core).spawn(f);
    }

    /// Requests every core's loop to exit (machine shutdown).
    pub fn request_exit_all(&self) {
        for em in self.events.iter() {
            em.request_exit();
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<(Arc<Runtime>, CoreId)>> = const { RefCell::new(Vec::new()) };
    /// Fast mirror of the stack top: (runtime pointer, core id). Null
    /// when no runtime is entered. Lets the Ebb-dispatch fast path do a
    /// single thread-local read with no RefCell accounting.
    static CURRENT_FAST: std::cell::Cell<(*const Runtime, u32)> =
        const { std::cell::Cell::new((std::ptr::null(), 0)) };
}

fn refresh_fast() {
    CURRENT.with(|c| {
        let stack = c.borrow();
        let top = match stack.last() {
            Some((rt, core)) => (Arc::as_ptr(rt), core.0),
            None => (std::ptr::null(), 0),
        };
        CURRENT_FAST.with(|f| f.set(top));
    });
}

/// Guard for an entered runtime; leaving restores the previous one.
pub struct EnterGuard {
    _core: CoreBinding,
}

impl Drop for EnterGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
        refresh_fast();
    }
}

/// Enters `rt` on behalf of `core`: binds the calling thread's core
/// identity and makes `rt` the target of [`with_current`] until the
/// guard drops. Entries nest (the simulated backend switches machines
/// per delivered event).
pub fn enter(rt: Arc<Runtime>, core: CoreId) -> EnterGuard {
    assert!(
        core.index() < rt.ncores(),
        "core {core} out of range for {}-core machine",
        rt.ncores()
    );
    CURRENT.with(|c| c.borrow_mut().push((rt, core)));
    refresh_fast();
    EnterGuard {
        _core: cpu::bind(core),
    }
}

/// Whether the calling thread has entered a runtime.
pub fn is_entered() -> bool {
    CURRENT.with(|c| !c.borrow().is_empty())
}

/// Runs `f` against the current runtime.
///
/// # Panics
///
/// Panics if the thread has not [`enter`]ed a runtime.
#[inline]
pub fn with_current<R>(f: impl FnOnce(&Runtime) -> R) -> R {
    with_current_on(|rt, _core| f(rt))
}

/// Runs `f` with the current runtime *and* core in one thread-local
/// read — the Ebb invocation fast path.
///
/// # Panics
///
/// Panics if the thread has not [`enter`]ed a runtime.
#[inline]
pub fn with_current_on<R>(f: impl FnOnce(&Runtime, CoreId) -> R) -> R {
    let (p, core) = CURRENT_FAST.with(|c| c.get());
    assert!(!p.is_null(), "thread has not entered an EbbRT runtime");
    // SAFETY: `p` mirrors the top of the entry stack, whose Arc keeps
    // the runtime alive; it is cleared/retargeted whenever a guard is
    // created or dropped on this thread.
    let rt = unsafe { &*p };
    f(rt, CoreId(core))
}

/// Returns a handle to the current runtime.
///
/// # Panics
///
/// Panics if the thread has not [`enter`]ed a runtime.
pub fn current() -> Arc<Runtime> {
    CURRENT.with(|c| {
        c.borrow()
            .last()
            .map(|(rt, _)| Arc::clone(rt))
            .expect("thread has not entered an EbbRT runtime")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn enter_nests_and_restores() {
        let clock = Arc::new(ManualClock::new());
        let rt1 = Runtime::new(1, clock.clone());
        let rt2 = Runtime::new(2, clock);
        assert!(!is_entered());
        {
            let _g1 = enter(Arc::clone(&rt1), CoreId(0));
            assert!(is_entered());
            assert_eq!(with_current(|rt| rt.ncores()), 1);
            {
                let _g2 = enter(Arc::clone(&rt2), CoreId(1));
                assert_eq!(with_current(|rt| rt.ncores()), 2);
                assert_eq!(cpu::current(), CoreId(1));
            }
            assert_eq!(with_current(|rt| rt.ncores()), 1);
            assert_eq!(cpu::current(), CoreId(0));
        }
        assert!(!is_entered());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn enter_bad_core_panics() {
        let rt = Runtime::new(1, Arc::new(ManualClock::new()));
        let _g = enter(rt, CoreId(3));
    }

    #[test]
    fn spawn_routes_to_core_queue() {
        let rt = Runtime::new(2, Arc::new(ManualClock::new()));
        rt.spawn(CoreId(1), || ());
        assert!(rt.event_manager(CoreId(1)).pending_work());
        assert!(!rt.event_manager(CoreId(0)).pending_work());
    }
}
