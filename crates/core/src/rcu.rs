//! Read-Copy-Update tied to event-loop quiescence (§3.6 of the paper).
//!
//! Because EbbRT events are non-preemptive, *every event boundary is a
//! quiescent state*: a reader cannot hold an RCU-protected pointer across
//! events, so once every core has passed an event boundary (or is idle),
//! retired memory is unreachable. Entering and exiting a read-side
//! critical section therefore costs nothing inside an event — the paper's
//! "entering and exiting RCU critical sections have no cost".
//!
//! Mechanics: each core has a [`CoreEpoch`] whose counter the event
//! manager bumps after every handler, plus an `in_event` flag. Retiring
//! memory snapshots all counters; the garbage is freed once every core
//! has either advanced past its snapshot or is outside any event.
//! (A core outside an event holds no RCU references, and new events
//! cannot reach memory that was unlinked before it was retired.)
//!
//! Code running outside an event loop (hosted threads, tests) brackets
//! its reads with [`RcuDomain::read_guard`], which sets the same
//! `in_event` flag.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::cpu::CoreId;
use crate::future::{self, Future};
use crate::spinlock::SpinLock;

/// Per-core quiescence state. The owning core's event loop bumps
/// `count` at each event boundary; `in_event` brackets handler (or
/// read-guard) execution.
pub struct CoreEpoch {
    count: AtomicU64,
    in_event: AtomicBool,
}

impl CoreEpoch {
    /// Creates an idle epoch.
    pub fn new() -> Self {
        CoreEpoch {
            count: AtomicU64::new(0),
            in_event: AtomicBool::new(false),
        }
    }

    /// Marks the start of an event / read-side critical section.
    #[inline]
    pub fn enter(&self) {
        self.in_event.store(true, Ordering::Release);
    }

    /// Marks the end of an event: clears `in_event` and passes a
    /// quiescent state.
    #[inline]
    pub fn exit_quiescent(&self) {
        self.in_event.store(false, Ordering::Release);
        // Only the owning core writes the counter; load+store avoids an
        // atomic RMW on the fast path.
        let c = self.count.load(Ordering::Relaxed);
        self.count.store(c + 1, Ordering::Release);
    }

    /// Current boundary count.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Acquire)
    }

    /// Whether a handler / read guard is live on this core.
    pub fn in_event(&self) -> bool {
        self.in_event.load(Ordering::Acquire)
    }
}

impl Default for CoreEpoch {
    fn default() -> Self {
        Self::new()
    }
}

/// Deferred-destruction item: dropped when its grace period elapses.
type Garbage = Box<dyn Send>;

struct Retired {
    /// Counter snapshot per core at retire time.
    snapshot: Box<[u64]>,
    /// Held only for its destructor, which runs at reclaim time.
    _garbage: Garbage,
}

/// An RCU domain: the epochs of one machine's cores plus the pending
/// garbage list.
pub struct RcuDomain {
    epochs: Box<[Arc<CoreEpoch>]>,
    pending: SpinLock<Vec<Retired>>,
}

impl RcuDomain {
    /// Creates a domain covering `ncores` cores.
    pub fn new(ncores: usize) -> Self {
        RcuDomain {
            epochs: (0..ncores)
                .map(|_| Arc::new(CoreEpoch::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            pending: SpinLock::new(Vec::new()),
        }
    }

    /// The epoch for `core` (shared with that core's event manager).
    pub fn epoch(&self, core: CoreId) -> Arc<CoreEpoch> {
        Arc::clone(&self.epochs[core.index()])
    }

    /// Number of cores covered.
    pub fn ncores(&self) -> usize {
        self.epochs.len()
    }

    /// Brackets a read-side critical section for code running outside an
    /// event loop (hosted threads, tests). Inside events this is
    /// unnecessary — the event itself is the critical section.
    pub fn read_guard(&self, core: CoreId) -> ReadGuard<'_> {
        let epoch = &self.epochs[core.index()];
        let was_in_event = epoch.in_event();
        epoch.enter();
        ReadGuard {
            epoch,
            was_in_event,
        }
    }

    /// Defers destruction of `garbage` until all current readers are
    /// done. The caller must already have unlinked it from any shared
    /// structure (publish the unlink *before* retiring).
    pub fn retire(&self, garbage: impl Send + 'static) {
        let snapshot = self
            .epochs
            .iter()
            .map(|e| e.count())
            .collect::<Vec<_>>()
            .into_boxed_slice();
        self.pending.lock().push(Retired {
            snapshot,
            _garbage: Box::new(garbage),
        });
    }

    /// Schedules `f` to run after a grace period (the classic
    /// `call_rcu`). Runs from whichever thread performs the reclaim.
    pub fn call_rcu(&self, f: impl FnOnce() + Send + 'static) {
        struct CallOnDrop(Option<Box<dyn FnOnce() + Send>>);
        impl Drop for CallOnDrop {
            fn drop(&mut self) {
                if let Some(f) = self.0.take() {
                    f();
                }
            }
        }
        self.retire(CallOnDrop(Some(Box::new(f))));
    }

    /// Returns a future fulfilled after a grace period elapses (requires
    /// someone to drive [`Self::try_reclaim`], which the event loops do).
    pub fn synchronize(&self) -> Future<()> {
        let (p, f) = future::promise();
        self.call_rcu(move || p.set_value(()));
        f
    }

    /// Frees all retired garbage whose grace period has elapsed;
    /// returns how many items were reclaimed. Cheap when nothing is
    /// pending. Called periodically by event loops and explicitly by
    /// tests.
    pub fn try_reclaim(&self) -> usize {
        let mut pending = match self.pending.try_lock() {
            Some(p) => p,
            None => return 0,
        };
        if pending.is_empty() {
            return 0;
        }
        let mut freed = Vec::new();
        let mut i = 0;
        while i < pending.len() {
            if self.grace_elapsed(&pending[i].snapshot) {
                freed.push(pending.swap_remove(i));
            } else {
                i += 1;
            }
        }
        drop(pending);
        let n = freed.len();
        // Drop garbage outside the lock: destructors may retire more.
        drop(freed);
        n
    }

    /// Number of retired items awaiting a grace period.
    pub fn pending_count(&self) -> usize {
        self.pending.lock().len()
    }

    fn grace_elapsed(&self, snapshot: &[u64]) -> bool {
        self.epochs.iter().zip(snapshot.iter()).all(|(e, &snap)| {
            // The core passed a boundary since the snapshot, or holds no
            // references right now (outside any event, and new events
            // cannot reach already-unlinked memory).
            e.count() != snap || !e.in_event()
        })
    }
}

impl Drop for RcuDomain {
    fn drop(&mut self) {
        // All readers are gone when the domain is dropped; release
        // everything.
        self.pending.get_mut().clear();
    }
}

/// RAII read-side critical section for non-event threads.
pub struct ReadGuard<'a> {
    epoch: &'a CoreEpoch,
    was_in_event: bool,
}

impl Drop for ReadGuard<'_> {
    fn drop(&mut self) {
        if !self.was_in_event {
            self.epoch.exit_quiescent();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    struct DropCounter(Arc<AtomicUsize>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn reclaim_immediate_when_all_idle() {
        let domain = RcuDomain::new(2);
        let drops = Arc::new(AtomicUsize::new(0));
        domain.retire(DropCounter(Arc::clone(&drops)));
        assert_eq!(domain.pending_count(), 1);
        // No core is in an event: grace period is trivially over.
        assert_eq!(domain.try_reclaim(), 1);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn reader_blocks_grace_period() {
        let domain = RcuDomain::new(2);
        let drops = Arc::new(AtomicUsize::new(0));
        let guard = domain.read_guard(CoreId(1));
        domain.retire(DropCounter(Arc::clone(&drops)));
        assert_eq!(domain.try_reclaim(), 0, "live reader must block reclaim");
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(guard);
        assert_eq!(domain.try_reclaim(), 1);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn counter_advance_ends_grace_period() {
        let domain = RcuDomain::new(1);
        let epoch = domain.epoch(CoreId(0));
        let drops = Arc::new(AtomicUsize::new(0));
        // Simulate an event loop: retire happens mid-event, then the
        // event completes (boundary) and a new event begins.
        epoch.enter();
        domain.retire(DropCounter(Arc::clone(&drops)));
        assert_eq!(domain.try_reclaim(), 0);
        epoch.exit_quiescent();
        epoch.enter();
        // Even though the core is in a (new) event, the boundary passed.
        assert_eq!(domain.try_reclaim(), 1);
        epoch.exit_quiescent();
    }

    #[test]
    fn call_rcu_runs_after_grace() {
        let domain = RcuDomain::new(1);
        let ran = Arc::new(AtomicUsize::new(0));
        let r2 = Arc::clone(&ran);
        let guard = domain.read_guard(CoreId(0));
        domain.call_rcu(move || {
            r2.fetch_add(1, Ordering::SeqCst);
        });
        domain.try_reclaim();
        assert_eq!(ran.load(Ordering::SeqCst), 0);
        drop(guard);
        domain.try_reclaim();
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn synchronize_future_completes() {
        let domain = RcuDomain::new(1);
        let f = domain.synchronize();
        assert!(!f.is_ready());
        domain.try_reclaim();
        assert!(f.is_ready());
        f.block().unwrap();
    }

    #[test]
    fn nested_read_guards() {
        let domain = RcuDomain::new(1);
        let g1 = domain.read_guard(CoreId(0));
        let g2 = domain.read_guard(CoreId(0));
        drop(g2);
        // Outer guard still live: still in a critical section.
        assert!(domain.epoch(CoreId(0)).in_event());
        drop(g1);
        assert!(!domain.epoch(CoreId(0)).in_event());
    }

    #[test]
    fn multi_retire_mixed_grace() {
        let domain = RcuDomain::new(2);
        let drops = Arc::new(AtomicUsize::new(0));
        domain.retire(DropCounter(Arc::clone(&drops)));
        let guard = domain.read_guard(CoreId(0));
        domain.retire(DropCounter(Arc::clone(&drops)));
        // First item retired before the guard; its snapshot still sees
        // core 0 in-event *now*, but core 0's count has not changed and
        // it IS in an event, so both wait.
        assert_eq!(domain.try_reclaim(), 0);
        drop(guard);
        assert_eq!(domain.try_reclaim(), 2);
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    }
}
