//! # ebbrt-core — the Elastic Building Block Runtime
//!
//! A Rust reproduction of the core runtime described in *EbbRT: A
//! Framework for Building Per-Application Library Operating Systems*
//! (Schatzberg et al., OSDI 2016). It provides the paper's primitives:
//!
//! * [`ebb`] — Elastic Building Blocks: distributed multi-core
//!   fragmented objects with per-core representatives resolved through a
//!   translation table (§3.3).
//! * [`event`] — one non-preemptive event loop per core, with hardware
//!   interrupt vectors, spawned synthetic events, idle handlers and
//!   cooperative context save/restore (§3.2).
//! * [`future`] — monadic futures with synchronous fast paths and
//!   exception-style error propagation (§3.5).
//! * [`iobuf`] — zero-copy buffer descriptors with views, headroom and
//!   scatter/gather chains (§3.6), plus per-core buffer pools
//!   ([`iobuf::pool`]) that recycle packet-sized regions and counters
//!   ([`iobuf::stats`]) that let benchmarks assert the zero-copy,
//!   zero-allocation property of a steady-state request path.
//! * [`rcu`] — read-copy-update keyed to event-loop quiescence, plus the
//!   RCU hash map ([`rcu_hash`]) used for connection and key-value
//!   state (§3.6).
//! * [`qos`] — overload control: the named per-core counter registry
//!   and the HFSC-style per-class fair scheduler the network stack
//!   paces its transmit path with.
//! * [`timer`] — the hashed hierarchical timer wheel behind
//!   [`event::EventManager`]'s timers: O(1) arm/cancel/re-arm,
//!   allocation-free in steady state, with immediate reclamation of
//!   cancelled entries.
//! * [`runtime`] — the per-machine instance tying the above together,
//!   and [`native`] — the threaded backend that runs a machine on real
//!   OS threads (one per core).
//!
//! The simulated backend (virtual time, deterministic) lives in the
//! `ebbrt-sim` crate; the network stack in `ebbrt-net`; the hosted
//! environment in `ebbrt-hosted`.

#![warn(missing_docs)]

pub mod clock;
pub mod cpu;
pub mod ebb;
pub mod event;
pub mod future;
pub mod iobuf;
pub mod native;
pub mod qos;
pub mod rcu;
pub mod rcu_hash;
pub mod runtime;
pub mod spinlock;
pub mod timer;

pub use clock::{Clock, ManualClock, Ns, RealClock};
pub use cpu::CoreId;
pub use ebb::{CachedEbbRef, EbbId, EbbRef, MulticoreEbb, SystemEbb};
pub use event::{block_on, EventManager};
pub use future::{Future, Promise};
pub use iobuf::{Buf, Chain, IoBuf, MutIoBuf};
pub use runtime::Runtime;
