//! Messenger round-trip + multi-machine sharded memcached, property
//! benches for the distributed-Ebb layer.
//!
//! 1. A closed-loop RPC ping-pong between two machines measures the
//!    messenger's virtual-time round trip (call → handler → respond →
//!    waiter), and asserts a **regression ceiling**: virtual time is
//!    deterministic, so the ceiling is exact, not flaky. It also
//!    proves the failure bookkeeping is clean in steady state: no
//!    waiter or armed timeout entry survives the run.
//! 2. The multi-machine sharded memcached ([`ebbrt_bench::dist_memcached`])
//!    runs end to end: cross-shard GETs function-ship to their owner,
//!    the local-shard phase stays zero-copy / zero-allocation, a dead
//!    shard answers `STATUS_REMOTE_ERROR` promptly, and both measured
//!    latencies sit under deterministic ceilings.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use criterion::{criterion_group, criterion_main, Criterion};
use ebbrt_core::cpu::CoreId;
use ebbrt_core::ebb::EbbId;
use ebbrt_hosted::messenger::{local_messenger, Messenger};
use ebbrt_net::netif::NetIf;
use ebbrt_net::types::Ipv4Addr;
use ebbrt_sim::{CostProfile, LinkParams, SimMachine, SimWorld, Switch};

/// Calls per ping-pong run.
const RPC_ROUNDS: u32 = 256;
/// Ceiling on the mean messenger RPC round trip (virtual µs) between
/// two EbbRT-profile machines. Measured ≈21 µs; deterministic, so a
/// modest margin suffices to catch real regressions.
const RPC_RTT_CEILING_US: f64 = 35.0;
/// Ceiling on the sharded cluster's mean local-shard GET (virtual µs).
const LOCAL_GET_CEILING_US: f64 = 30.0;
/// Ceiling on the mean function-shipped GET (virtual µs): one
/// memcached hop plus one messenger hop.
const REMOTE_GET_CEILING_US: f64 = 70.0;

fn now_ns() -> u64 {
    ebbrt_core::runtime::with_current(|rt| rt.now_ns())
}

fn fire(left: u32, dst: Ipv4Addr, id: EbbId, lat: Rc<RefCell<Vec<u64>>>, done: Rc<Cell<bool>>) {
    let t0 = now_ns();
    let msgr = local_messenger();
    msgr.call_with_timeout(dst, id, &[0u8; 32], 10_000_000, move |r| {
        r.expect("echo peer must answer");
        lat.borrow_mut().push(now_ns() - t0);
        if left > 1 {
            fire(left - 1, dst, id, lat, done);
        } else {
            done.set(true);
        }
    });
}

fn verify_messenger_round_trip(_c: &mut Criterion) {
    let w = SimWorld::new();
    let sw = Switch::new(&w);
    let server = SimMachine::create(&w, "server", 1, CostProfile::ebbrt_vm(), [0xA1; 6]);
    let client = SimMachine::create(&w, "client", 1, CostProfile::ebbrt_vm(), [0xB1; 6]);
    sw.attach(server.nic(), LinkParams::default());
    sw.attach(client.nic(), LinkParams::default());
    let mask = Ipv4Addr::new(255, 255, 255, 0);
    let s_if = NetIf::attach(&server, Ipv4Addr::new(10, 0, 2, 1), mask);
    let c_if = NetIf::attach(&client, Ipv4Addr::new(10, 0, 2, 2), mask);
    w.run_to_idle();
    let s_msgr = Messenger::start(&s_if);
    let c_msgr = Messenger::start(&c_if);
    let echo_id = EbbId(4000);
    let s2 = Rc::clone(&s_msgr);
    s_msgr.register(echo_id, move |src, rpc_id, payload| {
        s2.respond(src, echo_id, rpc_id, &payload.copy_to_vec());
    });

    let lat = Rc::new(RefCell::new(Vec::new()));
    let done = Rc::new(Cell::new(false));
    let (l2, d2) = (Rc::clone(&lat), Rc::clone(&done));
    struct SendCell<T>(T);
    // SAFETY: single-threaded simulation.
    unsafe impl<T> Send for SendCell<T> {}
    let cell = SendCell((l2, d2));
    client.spawn_on(CoreId(0), move || {
        let cell = cell;
        let (l2, d2) = cell.0;
        fire(RPC_ROUNDS, Ipv4Addr::new(10, 0, 2, 1), echo_id, l2, d2);
    });
    w.run_to_idle();

    assert!(done.get(), "the ping-pong must complete — no hang");
    let lat = lat.borrow();
    assert_eq!(lat.len() as u32, RPC_ROUNDS);
    // Drop the connection-establishment warmup (first call carries the
    // TCP handshake + ARP).
    let steady = &lat[8..];
    let mean_us = steady.iter().sum::<u64>() as f64 / steady.len() as f64 / 1000.0;
    println!(
        "messenger rpc round trip x{RPC_ROUNDS}: mean {mean_us:.1} virtual-us \
         (ceiling {RPC_RTT_CEILING_US} us)"
    );
    assert!(
        mean_us <= RPC_RTT_CEILING_US,
        "messenger RTT regressed: {mean_us:.1} us > {RPC_RTT_CEILING_US} us"
    );
    // Steady-state hygiene: nothing pending, nothing armed.
    assert_eq!(c_msgr.pending_rpcs(), 0, "no leaked rpc waiter");
    {
        let _b = ebbrt_core::cpu::bind(CoreId(0));
        assert_eq!(
            client
                .runtime()
                .event_manager(CoreId(0))
                .timer_stats()
                .pending,
            0,
            "no leaked rpc timeout entry"
        );
    }
}

fn verify_sharded_memcached_e2e(_c: &mut Criterion) {
    let r = ebbrt_bench::dist_memcached::run(&ebbrt_bench::dist_memcached::DistConfig::default());
    println!("{}", ebbrt_bench::dist_memcached::format_report(&r));
    ebbrt_bench::dist_memcached::assert_properties(&r);
    assert!(
        r.local_mean_us <= LOCAL_GET_CEILING_US,
        "local-shard GET regressed: {:.1} us > {LOCAL_GET_CEILING_US} us",
        r.local_mean_us
    );
    assert!(
        r.remote_mean_us <= REMOTE_GET_CEILING_US,
        "function-shipped GET regressed: {:.1} us > {REMOTE_GET_CEILING_US} us",
        r.remote_mean_us
    );
}

criterion_group!(
    benches,
    verify_messenger_round_trip,
    verify_sharded_memcached_e2e
);
criterion_main!(benches);
