//! The zero-copy request pipeline, measured and *proven*.
//!
//! Three parts:
//!
//! 1. A steady-state memcached GET workload over the full simulated
//!    path (client → NIC → TCP → parse → RCU store → response chain →
//!    NIC → client) that warms the per-core buffer pools and then
//!    asserts, via [`ebbrt_core::iobuf::stats`], that the measured
//!    phase copies **0 payload bytes** and allocates **0 fresh
//!    buffers** — pool hits only. This is §3.6's IOBuf discipline as a
//!    checked invariant rather than a design intention.
//! 2. The N-core RSS sweep ([`ebbrt_bench::rss_sweep`]): the same
//!    property across 4 event cores, both buffer size classes (2 KiB
//!    and 64 KiB), deliberately skewed traffic, and cross-core depot
//!    migration — plus the guarantee that a > 2 KiB SET never takes
//!    the one-shot-allocation fallback.
//! 3. Criterion microbenchmarks of the primitives that make it true:
//!    pooled vs fresh buffer acquisition (both classes), zero-copy
//!    cursor reads vs copying reads, and descriptor-chain splitting.

use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ebbrt_apps::memcached::{self, Store};
use ebbrt_apps::spawn_with;
use ebbrt_core::cpu::CoreId;
use ebbrt_core::iobuf::{pool, stats, Chain, IoBuf, MutIoBuf};
use ebbrt_core::runtime::Runtime;
use ebbrt_net::netif::{local_netif, ConnHandler, NetIf, TcpConn};
use ebbrt_net::types::Ipv4Addr;
use ebbrt_sim::{CostProfile, LinkParams, SimMachine, SimWorld, Switch};

/// Pool counters are per machine: the zero-copy property is read as
/// the world total over both ends of the wire.
fn world_snapshot(world: &[Arc<Runtime>]) -> stats::Snapshot {
    stats::world_snapshot(world.iter().map(Arc::as_ref))
}

/// Bytes in the benched value.
const VALUE_LEN: usize = 512;
/// Full GET response: header + 4 flags bytes + value.
const RESPONSE_LEN: usize = memcached::Header::SIZE + 4 + VALUE_LEN;
/// Requests before measurement starts (pool + ARP + TCP state warm).
const WARMUP_GETS: u32 = 64;
/// Measured requests.
const STEADY_GETS: u32 = 256;

/// Closed-loop GET client: one outstanding request, next fired on full
/// response. The request buffer is frozen once; every send clones the
/// descriptor.
struct GetClient {
    request: IoBuf,
    received: Cell<usize>,
    remaining: Cell<u32>,
    warmup_left: Cell<u32>,
    /// Server + client runtimes (per-machine counters).
    world: Vec<Arc<Runtime>>,
    steady_base: Cell<Option<stats::Snapshot>>,
    steady_start_ns: Cell<u64>,
    steady_end_ns: Cell<u64>,
}

impl GetClient {
    fn fire(&self, conn: &TcpConn) {
        let _ = conn.send(Chain::single(self.request.clone()));
    }
}

impl ConnHandler for GetClient {
    fn on_connected(&self, conn: &TcpConn) {
        self.fire(conn);
    }

    fn on_receive(&self, conn: &TcpConn, data: Chain<IoBuf>) {
        // Count response bytes without touching them (copy_to_vec would
        // be a counted copy — the client is part of the property too).
        let mut got = self.received.get() + data.len();
        while got >= RESPONSE_LEN {
            got -= RESPONSE_LEN;
            if self.warmup_left.get() > 0 {
                self.warmup_left.set(self.warmup_left.get() - 1);
                if self.warmup_left.get() == 0 {
                    self.steady_base.set(Some(world_snapshot(&self.world)));
                    self.steady_start_ns
                        .set(ebbrt_core::runtime::with_current(|rt| rt.now_ns()));
                }
                self.fire(conn);
            } else if self.remaining.get() > 0 {
                self.remaining.set(self.remaining.get() - 1);
                if self.remaining.get() == 0 {
                    self.steady_end_ns
                        .set(ebbrt_core::runtime::with_current(|rt| rt.now_ns()));
                    conn.close();
                } else {
                    self.fire(conn);
                }
            }
        }
        self.received.set(got);
    }
}

/// Runs the steady-state GET workload and asserts the zero-copy
/// property over the measured phase.
fn verify_zero_copy_get_path(_c: &mut Criterion) {
    let w = SimWorld::new();
    let sw = Switch::new(&w);
    let server = SimMachine::create(&w, "server", 1, CostProfile::ebbrt_vm(), [0xAA; 6]);
    let client = SimMachine::create(&w, "client", 1, CostProfile::ebbrt_vm(), [0xBB; 6]);
    sw.attach(server.nic(), LinkParams::default());
    sw.attach(client.nic(), LinkParams::default());
    let mask = Ipv4Addr::new(255, 255, 255, 0);
    let _s_if = NetIf::attach(&server, Ipv4Addr::new(10, 0, 0, 1), mask);
    let _c_if = NetIf::attach(&client, Ipv4Addr::new(10, 0, 0, 2), mask);
    w.run_to_idle();

    let store = Store::new(Arc::clone(server.runtime().rcu()));
    store.insert_raw(b"bench_key".to_vec(), IoBuf::copy_from(&[0xAB; VALUE_LEN]));
    let store_ref = store.register(server.runtime());
    server.spawn_on(CoreId(0), move || memcached::serve(store_ref));
    w.run_to_idle();

    let handler = Rc::new(GetClient {
        request: MutIoBuf::from_vec(memcached::encode_get(b"bench_key", 1)).freeze(),
        received: Cell::new(0),
        remaining: Cell::new(STEADY_GETS),
        warmup_left: Cell::new(WARMUP_GETS),
        world: vec![Arc::clone(server.runtime()), Arc::clone(client.runtime())],
        steady_base: Cell::new(None),
        steady_start_ns: Cell::new(0),
        steady_end_ns: Cell::new(0),
    });
    let h = Rc::clone(&handler);
    spawn_with(&client, CoreId(0), h, move |h| {
        local_netif().connect(
            Ipv4Addr::new(10, 0, 0, 1),
            memcached::MEMCACHED_PORT,
            h as Rc<dyn ConnHandler>,
        );
    });
    w.run_to_idle();

    assert_eq!(handler.remaining.get(), 0, "workload did not complete");
    let base = handler.steady_base.get().expect("warmup completed");
    let delta = world_snapshot(&handler.world).since(&base);
    let elapsed_ns = handler.steady_end_ns.get() - handler.steady_start_ns.get();
    let us_per_get = elapsed_ns as f64 / STEADY_GETS as f64 / 1000.0;
    let (server_free, server_depot) =
        pool::runtime_free_counts(server.runtime(), pool::SizeClass::Small);
    println!(
        "steady-state memcached GET x{STEADY_GETS}: {us_per_get:.2} virtual-us/req, \
         {} payload bytes copied, {} fresh buffer allocations, {} pool hits \
         (server free {server_free}, depot {server_depot})",
        delta.bytes_copied, delta.bufs_allocated, delta.pool_hits,
    );
    assert_eq!(
        delta.bytes_copied, 0,
        "steady-state GET path must copy zero payload bytes"
    );
    assert_eq!(
        delta.bufs_allocated, 0,
        "steady-state GET path must allocate zero fresh buffers"
    );
    assert!(
        delta.pool_hits > 0,
        "steady-state GET path must be served by the buffer pool"
    );
}

/// Runs the 4-core skewed RSS sweep and asserts the production-shaped
/// zero-copy claim: 0 copies / 0 fresh allocations in both size
/// classes, no large-SET fallback, depot migration under cross-core
/// skew.
fn verify_rss_sweep_multi_class(_c: &mut Criterion) {
    let cfg = ebbrt_bench::rss_sweep::SweepConfig::for_cores(4);
    let report = ebbrt_bench::rss_sweep::run(&cfg);
    println!("{}", ebbrt_bench::rss_sweep::format_report(&report));
    assert!(
        report.cross_core_conns > 0,
        "RSS must split flows across cores"
    );
    ebbrt_bench::rss_sweep::assert_properties(&report);
}

/// Pool ops **outside any entered runtime**: these resolve the
/// thread's private ambient context. Since the distributed-Ebbs PR the
/// leased (runtime, core) pair is cached in TLS, so the unentered path
/// is one `Cell` read away from the entered one instead of paying
/// `OnceLock` + `Arc`-clone + `RefCell` accounting per operation —
/// compare this group against `buffer_acquisition` below.
fn bench_unentered_pool_ops(c: &mut Criterion) {
    assert!(
        !ebbrt_core::runtime::is_entered(),
        "this group must measure the ambient fast path"
    );
    let mut g = c.benchmark_group("buffer_acquisition_unentered");
    pool::prewarm(4);
    g.bench_function("pooled_acquire_release_1500B_unentered", |b| {
        b.iter(|| {
            let mut buf = MutIoBuf::with_capacity(1500);
            buf.append(64);
            black_box(&mut buf);
            // drop: recycles into the ambient core's free list
        })
    });
    g.finish();
}

fn bench_buffer_acquisition(c: &mut Criterion) {
    // Enter a runtime so the pool Ebb resolves through the paper's
    // fast path (the production configuration), not the ambient
    // fallback test threads use.
    let rt = Runtime::new(1, Arc::new(ebbrt_core::clock::ManualClock::new()));
    let _g = ebbrt_core::runtime::enter(rt, CoreId(0));
    let mut g = c.benchmark_group("buffer_acquisition");
    // Heat the pools so the pooled cases measure recycling, not growth.
    pool::prewarm(4);
    pool::prewarm_class(pool::SizeClass::Large, 4);
    g.bench_function("pooled_acquire_release_1500B", |b| {
        b.iter(|| {
            let mut buf = MutIoBuf::with_capacity(1500);
            buf.append(64);
            black_box(&mut buf);
            // drop: recycles into the per-core free list
        })
    });
    g.bench_function("fresh_zeroed_acquire_release_1500B", |b| {
        b.iter(|| {
            let mut buf = MutIoBuf::from_vec(vec![0u8; 1500]);
            buf.trim_end(1500 - 64);
            black_box(&mut buf);
            // drop: storage freed, next iteration re-allocates
        })
    });
    g.bench_function("pooled_acquire_release_20KiB", |b| {
        b.iter(|| {
            let mut buf = MutIoBuf::with_capacity(20 * 1024);
            buf.append(64);
            black_box(&mut buf);
            // drop: recycles into the large class's free list
        })
    });
    g.bench_function("fresh_zeroed_acquire_release_20KiB", |b| {
        b.iter(|| {
            let mut buf = MutIoBuf::from_vec(vec![0u8; 20 * 1024]);
            buf.trim_end(20 * 1024 - 64);
            black_box(&mut buf);
            // drop: storage freed, next iteration re-allocates
        })
    });
    g.finish();
}

fn bench_cursor_reads(c: &mut Criterion) {
    let rt = Runtime::new(1, Arc::new(ebbrt_core::clock::ManualClock::new()));
    let _g = ebbrt_core::runtime::enter(rt, CoreId(0));
    // A chain shaped like a segmented request stream.
    let mut chain: Chain<IoBuf> = Chain::new();
    for _ in 0..8 {
        chain.push_back(IoBuf::copy_from(&vec![7u8; 512]));
    }
    let mut g = c.benchmark_group("cursor_reads");
    g.bench_function("read_exact_zero_copy_4k", |b| {
        b.iter(|| {
            let mut cur = chain.cursor();
            black_box(cur.read_exact_zero_copy(4096).unwrap())
        })
    });
    g.bench_function("read_vec_copying_4k", |b| {
        b.iter(|| {
            let mut cur = chain.cursor();
            black_box(cur.read_vec(4096).unwrap())
        })
    });
    g.finish();
}

fn bench_chain_ops(c: &mut Criterion) {
    let rt = Runtime::new(1, Arc::new(ebbrt_core::clock::ManualClock::new()));
    let _g = ebbrt_core::runtime::enter(rt, CoreId(0));
    let big = IoBuf::copy_from(&vec![7u8; 64 * 1024]);
    let mut g = c.benchmark_group("chain_ops");
    g.bench_function("split_to_mss_from_64k", |b| {
        b.iter(|| {
            let mut chain = Chain::single(big.clone());
            let head = chain.split_to(1460);
            black_box((head, chain))
        })
    });
    let value = IoBuf::copy_from(&vec![3u8; VALUE_LEN]);
    g.bench_function("get_response_assembly", |b| {
        b.iter(|| {
            // The server's response path: pooled header + value clone.
            let mut rbuf = MutIoBuf::with_capacity(memcached::Header::SIZE + 4);
            rbuf.append(memcached::Header::SIZE + 4).fill(0);
            let mut out: Chain<IoBuf> = Chain::new();
            out.push_back(rbuf.freeze());
            out.push_back(value.clone());
            black_box(out)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    verify_zero_copy_get_path,
    verify_rss_sweep_multi_class,
    bench_unentered_pool_ops,
    bench_buffer_acquisition,
    bench_cursor_reads,
    bench_chain_ops
);
criterion_main!(benches);
