//! Microbenchmarks of the remaining core primitives: IOBuf chain
//! operations, RCU hash map reads vs a locked map, futures fast path,
//! and event spawn/dispatch — the "fine-grained decomposition without
//! loss of performance" claim (§3).

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ebbrt_core::clock::ManualClock;
use ebbrt_core::cpu::{self, CoreId};
use ebbrt_core::future;
use ebbrt_core::iobuf::{Chain, IoBuf, MutIoBuf};
use ebbrt_core::rcu::RcuDomain;
use ebbrt_core::rcu_hash::RcuHashMap;

fn bench_iobuf(c: &mut Criterion) {
    let mut g = c.benchmark_group("iobuf");
    g.bench_function("header_prepend_tx_path", |b| {
        b.iter(|| {
            let mut buf = MutIoBuf::with_headroom(64, 128);
            buf.append(64);
            buf.prepend(20); // TCP
            buf.prepend(20); // IPv4
            buf.prepend(14); // Ethernet
            black_box(buf.freeze())
        })
    });
    let big = IoBuf::copy_from(&vec![7u8; 64 * 1024]);
    g.bench_function("chain_split_64k_zero_copy", |b| {
        b.iter(|| {
            let mut chain = Chain::single(big.clone());
            let head = chain.split_to(1448);
            black_box((head, chain))
        })
    });
    g.finish();
}

fn bench_rcu_map(c: &mut Criterion) {
    let domain = Arc::new(RcuDomain::new(1));
    let map: RcuHashMap<u64, u64> = RcuHashMap::new(Arc::clone(&domain));
    let locked = parking_lot::Mutex::new(std::collections::HashMap::new());
    for i in 0..1000u64 {
        map.insert(i, i * 3);
        locked.lock().insert(i, i * 3);
    }
    let _guard = domain.read_guard(CoreId(0));
    let mut g = c.benchmark_group("connection_lookup");
    g.bench_function("rcu_hash_get", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 7) % 1000;
            black_box(map.get(&k, |v| *v))
        })
    });
    g.bench_function("mutex_hash_get", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 7) % 1000;
            black_box(locked.lock().get(&k).copied())
        })
    });
    g.finish();
}

fn bench_futures(c: &mut Criterion) {
    let mut g = c.benchmark_group("futures");
    g.bench_function("ready_then_synchronous", |b| {
        b.iter(|| {
            future::ready(black_box(1u64))
                .map(|v| v + 1)
                .try_take()
                .ok()
        })
    });
    g.bench_function("promise_then_fulfil", |b| {
        b.iter(|| {
            let (p, f) = future::promise::<u64>();
            let out = f.map(|v| v + 1);
            p.set_value(black_box(41));
            out.try_take().ok()
        })
    });
    g.finish();
}

fn bench_events(c: &mut Criterion) {
    use ebbrt_core::event::EventManager;
    use ebbrt_core::rcu::CoreEpoch;
    let em = EventManager::new(
        CoreId(0),
        Arc::new(ManualClock::new()),
        Arc::new(CoreEpoch::new()),
    );
    let _b = cpu::bind(CoreId(0));
    let mut g = c.benchmark_group("events");
    g.bench_function("spawn_plus_dispatch", |b| {
        b.iter(|| {
            em.spawn_local(|| {});
            em.drain()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_iobuf,
    bench_rcu_map,
    bench_futures,
    bench_events
);
criterion_main!(benches);
