//! Ebb dispatch — the paper's Table 1 measurement, as an enforced
//! property.
//!
//! Measures an empty method invoked through every dispatch mechanism
//! the system offers:
//!
//! * an inlinable direct call and a never-inlined call (the baselines),
//! * a virtual (`dyn`) call,
//! * `EbbRef::with` — the translation-table fast path (one
//!   thread-local read, one indexed load, one null check),
//! * `CachedEbbRef::with` — the memoized per-core rep pointer, the
//!   steady-state system dispatch, and
//! * a hash-table dispatcher replicating the deleted
//!   `ebbrt-hosted::table` mechanism (the paper's "roughly 19×"
//!   hosted configuration), kept here bench-locally so the Table 1
//!   comparison survives the system's migration to `EbbManager`.
//!
//! `verify_cached_dispatch_overhead` runs in CI's bench-smoke step and
//! **fails** if cached-ref dispatch drifts more than a generous
//! threshold away from a direct call — the guard against accidental
//! rep-lookup deoptimization.

use std::any::Any;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ebbrt_core::clock::ManualClock;
use ebbrt_core::cpu::CoreId;
use ebbrt_core::ebb::{CachedEbbRef, EbbId, EbbRef, MulticoreEbb};
use ebbrt_core::runtime::{self, Runtime};

struct Obj {
    calls: std::cell::Cell<u64>,
}

impl Obj {
    fn new() -> Obj {
        Obj {
            calls: std::cell::Cell::new(0),
        }
    }
    #[inline(always)]
    fn call_inline(&self) {
        self.calls.set(self.calls.get().wrapping_add(1));
    }
    #[inline(never)]
    fn call_no_inline(&self) {
        self.calls.set(self.calls.get().wrapping_add(1));
    }
}

trait Callable {
    fn call_virtual(&self);
}
impl Callable for Obj {
    fn call_virtual(&self) {
        self.calls.set(self.calls.get().wrapping_add(1));
    }
}

impl MulticoreEbb for Obj {
    type Root = ();
    fn create_rep(_: &Arc<()>, _: CoreId) -> Self {
        Obj::new()
    }
}

/// The hosted-environment dispatch mechanism the paper measures at
/// ~19× native Ebb cost (per-core hash map + dynamic downcast per
/// call). The system no longer ships it — native translation-array
/// dispatch serves every environment — but Table 1 needs the row.
struct HashTableDispatch {
    map: HashMap<u32, Rc<dyn Any>>,
}

impl HashTableDispatch {
    fn new() -> Self {
        HashTableDispatch {
            map: HashMap::new(),
        }
    }
    fn install<T: 'static>(&mut self, id: EbbId, rep: T) {
        self.map.insert(id.0, Rc::new(rep));
    }
    #[inline]
    fn with_rep<T: 'static, R>(&self, id: EbbId, f: impl FnOnce(&T) -> R) -> R {
        let any = self.map.get(&id.0).expect("no hosted rep");
        let rep = any.downcast_ref::<T>().expect("hosted rep type mismatch");
        f(rep)
    }
}

const INVOCATIONS: usize = 1000;

fn bench_dispatch(c: &mut Criterion) {
    let rt = Runtime::new(1, Arc::new(ManualClock::new()));
    let _g = runtime::enter(rt, CoreId(0));
    let obj = Obj::new();
    let dyn_obj: &dyn Callable = &obj;
    let ebb = EbbRef::<Obj>::create(());
    ebb.with(|o| o.call_inline()); // fault in the rep
    let cached = CachedEbbRef::new(ebb);
    cached.with(|o| o.call_inline()); // prime the memo
    let mut hosted = HashTableDispatch::new();
    hosted.install(ebb.id(), Obj::new());

    let mut g = c.benchmark_group("dispatch_1000_invocations");
    g.bench_function("inline", |b| {
        b.iter(|| {
            for _ in 0..INVOCATIONS {
                black_box(&obj).call_inline();
            }
        })
    });
    g.bench_function("no_inline", |b| {
        b.iter(|| {
            for _ in 0..INVOCATIONS {
                black_box(&obj).call_no_inline();
            }
        })
    });
    g.bench_function("virtual", |b| {
        b.iter(|| {
            for _ in 0..INVOCATIONS {
                black_box(dyn_obj).call_virtual();
            }
        })
    });
    g.bench_function("ebb", |b| {
        b.iter(|| {
            for _ in 0..INVOCATIONS {
                black_box(ebb).with(|o| o.call_inline());
            }
        })
    });
    g.bench_function("cached_ebb", |b| {
        b.iter(|| {
            for _ in 0..INVOCATIONS {
                black_box(&cached).with(|o| o.call_inline());
            }
        })
    });
    g.bench_function("hashtable_ebb", |b| {
        b.iter(|| {
            for _ in 0..INVOCATIONS {
                hosted.with_rep::<Obj, _>(black_box(ebb.id()), |o| o.call_inline());
            }
        })
    });
    g.finish();
}

/// Nanoseconds per call of `f` (each `f()` performs [`INVOCATIONS`]
/// calls), minimum over several measurement rounds — the minimum is
/// the right estimator for an empty-call cost on a noisy CI box.
fn ns_per_call(mut f: impl FnMut()) -> f64 {
    const ROUNDS: usize = 30;
    const REPS: usize = 2000;
    // Warmup.
    for _ in 0..REPS / 2 {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        for _ in 0..REPS {
            f();
        }
        let ns = start.elapsed().as_nanos() as f64 / (REPS * INVOCATIONS) as f64;
        best = best.min(ns);
    }
    best
}

/// The enforced Table 1 property: steady-state `CachedEbbRef`
/// dispatch must stay within a small constant of a direct call. The
/// paper's own bound is ~0.4 cycles over an inlined call for native
/// Ebb dispatch; we allow a generous margin so CI hardware variance
/// doesn't flake, while still catching any accidental reintroduction
/// of per-call table walks or locking.
fn verify_cached_dispatch_overhead(_c: &mut Criterion) {
    /// Absolute floor of the ceiling on (cached Ebb − direct call),
    /// in ns/call; the effective ceiling also scales with the
    /// measured direct-call cost so a throttled CI box (where *every*
    /// empty call is slower) doesn't flake, while a genuine
    /// rep-lookup deoptimization (an order of magnitude, not a
    /// constant) still fails everywhere.
    const MAX_OVERHEAD_NS: f64 = 5.0;

    let rt = Runtime::new(1, Arc::new(ManualClock::new()));
    let _g = runtime::enter(rt, CoreId(0));
    let obj = Obj::new();
    let ebb = EbbRef::<Obj>::create(());
    let cached = CachedEbbRef::new(ebb);
    cached.with(|o| o.call_inline());

    let direct = ns_per_call(|| {
        for _ in 0..INVOCATIONS {
            black_box(&obj).call_inline();
        }
    });
    let uncached = ns_per_call(|| {
        for _ in 0..INVOCATIONS {
            black_box(ebb).with(|o| o.call_inline());
        }
    });
    let cached_ns = ns_per_call(|| {
        for _ in 0..INVOCATIONS {
            black_box(&cached).with(|o| o.call_inline());
        }
    });
    let overhead = cached_ns - direct;
    let ceiling = MAX_OVERHEAD_NS.max(4.0 * direct);
    println!(
        "ebb dispatch: direct {direct:.2} ns/call, ebb {uncached:.2} ns/call, \
         cached ebb {cached_ns:.2} ns/call (overhead {overhead:.2} ns vs direct, \
         ceiling {ceiling:.2} ns)"
    );
    assert!(
        overhead <= ceiling,
        "cached Ebb dispatch regressed: {overhead:.2} ns over a direct call \
         (ceiling {ceiling:.2} ns) — a rep-lookup deoptimization?"
    );
}

criterion_group!(benches, bench_dispatch, verify_cached_dispatch_overhead);
criterion_main!(benches);
