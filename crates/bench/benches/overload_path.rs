//! Overload-control gate: per-class fair scheduling must isolate a
//! well-behaved tenant from an 8× hotter misbehaving one.
//!
//! Runs [`ebbrt_bench::overload`] twice — once with the HFSC-style
//! fair scheduler, once with the same paced link in FIFO mode (the
//! no-QoS control) — prints the comparison, and fails the process
//! (and CI) unless the well-behaved tenant's p99 stays under the fixed
//! virtual-time ceiling with zero request failures while the control
//! run violates it. The figure of merit is virtual time from the
//! deterministic cost model, so the gate cannot flake on a loaded
//! runner. The steady phase also re-asserts that admitted traffic is
//! zero-copy and pool-hot under overload.

use ebbrt_bench::overload;
use ebbrt_core::qos::QosMode;

fn main() {
    println!("Overload control: well-behaved vs 8x hot tenant, fair vs fifo");
    println!("{}", overload::table_header());
    let fair = overload::run(QosMode::Fair);
    println!("{}", overload::format_report(&fair));
    let fifo = overload::run(QosMode::Fifo);
    println!("{}", overload::format_report(&fifo));
    overload::assert_fair_isolates(&fair, &fifo);
    println!(
        "gate: fair p99 {} ns <= {} ns ceiling < fifo p99 {} ns, zero failures",
        fair.gold_p99_ns,
        overload::GOLD_P99_CEILING_NS,
        fifo.gold_p99_ns,
    );
}
