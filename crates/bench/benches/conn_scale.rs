//! One million connections, gated: the conns-vs-latency sweep.
//!
//! Runs [`ebbrt_bench::conn_scale`] across 1k → 1M established
//! connections (the 1M point only under `--release`; a debug build
//! stops at 64k so the gate stays runnable everywhere), prints the
//! curve, writes `target/repro/conn_scale.csv`, and fails the process
//! (and CI) unless [`ebbrt_bench::conn_scale::assert_scales`] holds:
//! flat p99 across the sweep, accounted and *measured* bytes per idle
//! connection under budget, and a zero-copy pool-hot measured phase.
//!
//! The measured footprint comes from a byte-counting global allocator:
//! `alloc` adds `layout.size()` to a live counter, `dealloc` subtracts
//! it, and the harness reads the delta across connection
//! establishment. Latency is virtual time from the deterministic cost
//! model, so neither figure of merit can flake on a loaded runner.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ebbrt_bench::conn_scale;

/// Tracks live heap bytes so the sweep can measure what one idle
/// connection actually costs the process.
struct LiveBytesAlloc;

static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates to System; only maintains a relaxed byte counter.
unsafe impl GlobalAlloc for LiveBytesAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        LIVE_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: LiveBytesAlloc = LiveBytesAlloc;

fn live_heap_bytes() -> u64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

fn main() {
    let sweep: &[usize] = if cfg!(debug_assertions) {
        &[1_000, 16_000, 64_000]
    } else {
        &[1_000, 16_000, 64_000, 250_000, 1_000_000]
    };
    println!(
        "Connection scale: idle herd + {}-conn sparse GET probe set",
        conn_scale::SAMPLED_MAX
    );
    println!("{}", conn_scale::table_header());
    let probe: &dyn Fn() -> u64 = &live_heap_bytes;
    let mut points = Vec::with_capacity(sweep.len());
    for &conns in sweep {
        let r = conn_scale::run(conns, Some(probe));
        println!("{}", conn_scale::format_report(&r));
        points.push(r);
    }

    let rows: Vec<String> = points
        .iter()
        .map(|r| {
            format!(
                "{},{},{:.1},{},{},{},{:.0},{},{}",
                r.conns,
                r.sampled,
                r.mean_ns,
                r.p99_ns,
                r.failures,
                r.accounted_bytes_per_idle_conn,
                r.measured_bytes_per_conn.unwrap_or(0.0),
                r.steady_bytes_copied,
                r.steady_bufs_allocated,
            )
        })
        .collect();
    match ebbrt_bench::write_csv(
        "conn_scale.csv",
        "conns,sampled,mean_ns,p99_ns,failures,accounted_bytes_per_conn,measured_bytes_per_conn,steady_bytes_copied,steady_bufs_allocated",
        &rows,
    ) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => println!("csv write skipped: {e}"),
    }

    conn_scale::assert_scales(&points);
    let bottom = &points[0];
    let top = &points[points.len() - 1];
    println!(
        "gate: p99 {} ns at {} conns <= {}x p99 {} ns at {} conns; \
         idle conn <= {} accounted / {} measured bytes; steady phase \
         zero-copy",
        top.p99_ns,
        top.conns,
        conn_scale::P99_DEGRADATION_X,
        bottom.p99_ns,
        bottom.conns,
        conn_scale::IDLE_CONN_BUDGET_BYTES,
        conn_scale::MEASURED_CONN_BUDGET_BYTES,
    );
}
