//! Vectorized dataplane gate: per-burst receive processing must beat
//! per-packet on the same pipelined memcached workload.
//!
//! Runs [`ebbrt_bench::burst_path`] at burst sizes 1 (per-packet
//! baseline), 8, and the full ring, prints the comparison, and fails
//! the process — and CI — if any burst size >= 8 fails to beat the
//! baseline's requests-per-virtual-second, never formed a real burst,
//! or never coalesced a delivery. The figure of merit is virtual-time
//! pps from the deterministic cost model, so the gate cannot flake on
//! a loaded runner.

use ebbrt_bench::burst_path;
use ebbrt_net::driver::RX_BURST;

fn main() {
    println!("Vectorized dataplane: per-burst vs per-packet, pipelined memcached GETs");
    println!("{}", burst_path::table_header());
    let per_packet = burst_path::run(1);
    println!("{}", burst_path::format_report(&per_packet));
    for burst in [8, RX_BURST] {
        let r = burst_path::run(burst);
        println!("{}", burst_path::format_report(&r));
        burst_path::assert_beats_per_packet(&per_packet, &r);
    }
    println!("gate: per-burst beats per-packet at every size >= 8");
}
