//! Criterion companion to Table 1: object dispatch variants.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ebbrt_core::clock::ManualClock;
use ebbrt_core::cpu::CoreId;
use ebbrt_core::ebb::{EbbRef, MulticoreEbb};
use ebbrt_core::runtime::{self, Runtime};
use ebbrt_hosted::table::HostedEbbTable;

struct Obj {
    calls: std::cell::Cell<u64>,
}

impl Obj {
    #[inline(always)]
    fn call_inline(&self) {
        self.calls.set(self.calls.get().wrapping_add(1));
    }
    #[inline(never)]
    fn call_no_inline(&self) {
        self.calls.set(self.calls.get().wrapping_add(1));
    }
}

trait Callable {
    fn call_virtual(&self);
}
impl Callable for Obj {
    fn call_virtual(&self) {
        self.calls.set(self.calls.get().wrapping_add(1));
    }
}

impl MulticoreEbb for Obj {
    type Root = ();
    fn create_rep(_: &Arc<()>, _: CoreId) -> Self {
        Obj {
            calls: std::cell::Cell::new(0),
        }
    }
}

fn bench_dispatch(c: &mut Criterion) {
    let rt = Runtime::new(1, Arc::new(ManualClock::new()));
    let _g = runtime::enter(rt, CoreId(0));
    let obj = Obj {
        calls: std::cell::Cell::new(0),
    };
    let dyn_obj: &dyn Callable = &obj;
    let ebb = EbbRef::<Obj>::create(());
    ebb.with(|o| o.call_inline());
    let hosted = HostedEbbTable::new(1);
    hosted.install(
        ebb.id(),
        Obj {
            calls: std::cell::Cell::new(0),
        },
    );

    let mut g = c.benchmark_group("dispatch_1000_invocations");
    g.bench_function("inline", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                black_box(&obj).call_inline();
            }
        })
    });
    g.bench_function("no_inline", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                black_box(&obj).call_no_inline();
            }
        })
    });
    g.bench_function("virtual", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                black_box(dyn_obj).call_virtual();
            }
        })
    });
    g.bench_function("ebb", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                black_box(ebb).with(|o| o.call_inline());
            }
        })
    });
    g.bench_function("hosted_ebb", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                hosted.with_rep::<Obj, _>(black_box(ebb.id()), |o| o.call_inline());
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
