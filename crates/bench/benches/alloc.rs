//! Criterion companion to Figure 3: single-core allocator latency
//! (the multi-core scaling sweep lives in `repro_fig3`).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use ebbrt_core::clock::ManualClock;
use ebbrt_core::cpu::CoreId;
use ebbrt_core::runtime::{self, Runtime};
use ebbrt_mem::baseline::{GlibcModel, JemallocModel};
use ebbrt_mem::gp::{self, EbbrtMalloc};
use ebbrt_mem::{MallocLike, Topology};

fn bench_alloc(c: &mut Criterion) {
    let rt = Runtime::new(1, Arc::new(ManualClock::new()));
    let _g = runtime::enter(rt, CoreId(0));
    let ebbrt = EbbrtMalloc::new(gp::setup(Topology::flat(1), 14));
    let glibc = GlibcModel::new(4);
    let jemalloc = JemallocModel::new(4);

    let mut g = c.benchmark_group("alloc_free_8B_x10");
    g.bench_function("ebbrt", |b| {
        b.iter(|| {
            for _ in 0..10 {
                let a = ebbrt.alloc(8);
                ebbrt.free(a, 8);
            }
        })
    });
    g.bench_function("glibc_model", |b| {
        b.iter(|| {
            for _ in 0..10 {
                let a = glibc.alloc(8);
                glibc.free(a, 8);
            }
        })
    });
    g.bench_function("jemalloc_model", |b| {
        b.iter(|| {
            for _ in 0..10 {
                let a = jemalloc.alloc(8);
                jemalloc.free(a, 8);
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_alloc);
criterion_main!(benches);
