//! The timer wheel, measured and *proven* O(1).
//!
//! Three properties, asserted rather than assumed:
//!
//! 1. **Zero allocation after warm-up**: a counting global allocator
//!    shows that steady-state arm/cancel/re-arm — the per-TCP-segment
//!    pattern — touches the heap zero times, both at the raw
//!    [`TimerWheel`] level and through the `EventManager` persistent
//!    re-arm API (mirroring the zero-copy assertion style of
//!    `iobuf_path`).
//! 2. **Flat cost in the pending-timer count**: arm+cancel cost at
//!    1,000,000 concurrent timers stays within a small constant factor
//!    of the cost at 10,000 — O(1), where the seed's `BinaryHeap` pays
//!    O(log n) churn plus tombstone pops on the dispatch path.
//! 3. **Faster than the seed heap at high connection counts**: at
//!    ≥100k concurrent timers (the RTO + delayed-ACK load of a busy
//!    server) the wheel beats a faithful copy of the seed's
//!    heap-plus-tombstone-set implementation under the same op mix.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ebbrt_core::clock::ManualClock;
use ebbrt_core::cpu::{self, CoreId};
use ebbrt_core::event::EventManager;
use ebbrt_core::rcu::CoreEpoch;
use ebbrt_core::timer::TimerWheel;
use std::sync::Arc;

/// Counts every heap allocation so the bench can assert the steady
/// state performs none.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates to System; only adds a relaxed counter bump.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// The seed's timer store, verbatim semantics: `BinaryHeap` ordered by
/// (deadline, seq) + a `HashSet` of cancelled tokens that are skipped
/// (and popped) lazily by the dispatch/deadline scans. (For the cost
/// comparison the token doubles as the benched connection id.)
struct SeedHeapTimers {
    heap: BinaryHeap<Reverse<(u64, u64, u64)>>,
    cancelled: HashSet<u64>,
    seq: u64,
}

impl SeedHeapTimers {
    fn new() -> Self {
        SeedHeapTimers {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            seq: 0,
        }
    }

    fn set(&mut self, deadline: u64, token: u64) {
        self.seq += 1;
        self.heap.push(Reverse((deadline, self.seq, token)));
    }

    fn cancel(&mut self, token: u64) {
        self.cancelled.insert(token);
    }

    fn next_deadline(&mut self) -> Option<u64> {
        while let Some(&Reverse((deadline, _, token))) = self.heap.peek() {
            if self.cancelled.remove(&token) {
                self.heap.pop();
            } else {
                return Some(deadline);
            }
        }
        None
    }
}

/// The wheel's pre-SoA slab layout, verbatim semantics: one
/// array-of-structs slab with the handler payload interleaved between
/// the hot wheel words, so every cascade/advance/`next_deadline` scan
/// drags handler bytes through the cache alongside the links it
/// actually needs. Same algorithm (levels, occupancy bitmaps, lazy
/// cascade, expired min-heap, free list) — only the memory layout
/// differs, so the `soa_vs_interleaved` group isolates the layout
/// effect.
mod interleaved {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    const WHEEL_BITS: u32 = 6;
    const SLOTS: usize = 1 << WHEEL_BITS;
    const LEVELS: usize = 8;
    const NIL: u32 = u32::MAX;

    #[derive(Clone, Copy, PartialEq, Eq)]
    enum State {
        Free,
        Parked,
        Armed,
        Queued,
    }

    pub struct Entry<H> {
        gen: u32,
        state: State,
        deadline_tick: u64,
        seq: u64,
        pos: u16,
        next: u32,
        prev: u32,
        handler: Option<H>,
    }

    struct Level {
        slots: [u32; SLOTS],
        occupancy: u64,
    }

    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub struct Token {
        bits: u64,
    }

    impl Token {
        fn index(self) -> u32 {
            self.bits as u32
        }
        fn gen(self) -> u32 {
            (self.bits >> 32) as u32
        }
    }

    /// Tick shift fixed at 0 (tick == ns), which is what the measured
    /// op mix uses.
    pub struct InterleavedWheel<H> {
        last: u64,
        levels: Vec<Level>,
        slab: Vec<Entry<H>>,
        free_head: u32,
        expired: BinaryHeap<Reverse<(u64, u64, u32, u32)>>,
        seq: u64,
        pending: usize,
    }

    impl<H> InterleavedWheel<H> {
        pub fn new() -> Self {
            InterleavedWheel {
                last: 0,
                levels: (0..LEVELS)
                    .map(|_| Level {
                        slots: [NIL; SLOTS],
                        occupancy: 0,
                    })
                    .collect(),
                slab: Vec::new(),
                free_head: NIL,
                expired: BinaryHeap::new(),
                seq: 0,
                pending: 0,
            }
        }

        pub fn entry_bytes() -> usize {
            std::mem::size_of::<Entry<H>>()
        }

        fn live_entry(&self, token: Token) -> bool {
            self.slab
                .get(token.index() as usize)
                .is_some_and(|e| e.gen == token.gen() && e.state != State::Free)
        }

        pub fn schedule(&mut self, deadline: u64, handler: H) -> Token {
            let index = if self.free_head != NIL {
                let index = self.free_head;
                self.free_head = self.slab[index as usize].next;
                index
            } else {
                self.slab.push(Entry {
                    gen: 0,
                    state: State::Free,
                    deadline_tick: 0,
                    seq: 0,
                    pos: 0,
                    next: NIL,
                    prev: NIL,
                    handler: None,
                });
                (self.slab.len() - 1) as u32
            };
            let gen = {
                let e = &mut self.slab[index as usize];
                e.state = State::Parked;
                e.handler = Some(handler);
                e.gen
            };
            let token = Token {
                bits: ((gen as u64) << 32) | index as u64,
            };
            self.arm(token, deadline);
            token
        }

        pub fn arm(&mut self, token: Token, deadline: u64) -> bool {
            if !self.live_entry(token) {
                return false;
            }
            let index = token.index();
            match self.slab[index as usize].state {
                State::Armed => {
                    self.unlink(index);
                    self.pending -= 1;
                }
                State::Queued => self.pending -= 1,
                State::Parked => {}
                State::Free => unreachable!(),
            }
            self.seq += 1;
            let seq = self.seq;
            {
                let e = &mut self.slab[index as usize];
                e.deadline_tick = deadline;
                e.seq = seq;
            }
            if deadline <= self.last {
                let e = &mut self.slab[index as usize];
                e.state = State::Queued;
                let gen = e.gen;
                self.expired.push(Reverse((deadline, seq, index, gen)));
            } else {
                self.place(index);
            }
            self.pending += 1;
            true
        }

        pub fn remove(&mut self, token: Token) -> Option<H> {
            if !self.live_entry(token) {
                return None;
            }
            let index = token.index();
            match self.slab[index as usize].state {
                State::Armed => {
                    self.unlink(index);
                    self.pending -= 1;
                }
                State::Queued => self.pending -= 1,
                State::Parked => {}
                State::Free => unreachable!(),
            }
            let e = &mut self.slab[index as usize];
            e.state = State::Free;
            e.gen = e.gen.wrapping_add(1);
            let handler = e.handler.take();
            e.next = self.free_head;
            self.free_head = index;
            handler
        }

        pub fn handler(&self, token: Token) -> Option<&H> {
            if !self.live_entry(token) {
                return None;
            }
            self.slab[token.index() as usize].handler.as_ref()
        }

        pub fn advance(&mut self, now: u64) {
            let to = now;
            if to <= self.last {
                return;
            }
            let from = self.last;
            self.last = to;
            for level in 0..LEVELS {
                let lshift = WHEEL_BITS * level as u32;
                let old = from >> lshift;
                let new = to >> lshift;
                if old == new {
                    break;
                }
                let mask = if new - old >= SLOTS as u64 {
                    !0u64
                } else {
                    circular_range_mask((old & 63) as u32, (new & 63) as u32)
                };
                let mut hit = self.levels[level].occupancy & mask;
                self.levels[level].occupancy &= !mask;
                while hit != 0 {
                    let slot = hit.trailing_zeros() as usize;
                    hit &= hit - 1;
                    let mut index = self.levels[level].slots[slot];
                    self.levels[level].slots[slot] = NIL;
                    while index != NIL {
                        let next = self.slab[index as usize].next;
                        if self.slab[index as usize].deadline_tick <= to {
                            let e = &mut self.slab[index as usize];
                            e.state = State::Queued;
                            let node = (e.deadline_tick, e.seq, index, e.gen);
                            self.expired.push(Reverse(node));
                        } else {
                            self.place(index);
                        }
                        index = next;
                    }
                }
            }
        }

        pub fn pop_expired(&mut self) -> Option<(Token, u64)> {
            while let Some(Reverse((deadline, seq, index, gen))) = self.expired.pop() {
                let e = &mut self.slab[index as usize];
                if e.gen == gen && e.state == State::Queued && e.seq == seq {
                    e.state = State::Parked;
                    self.pending -= 1;
                    let token = Token {
                        bits: ((gen as u64) << 32) | index as u64,
                    };
                    return Some((token, deadline));
                }
            }
            None
        }

        pub fn next_deadline(&mut self, now: u64) -> Option<u64> {
            self.advance(now);
            while let Some(Reverse((deadline, seq, index, gen))) = self.expired.peek().copied() {
                let e = &self.slab[index as usize];
                if e.gen == gen && e.state == State::Queued && e.seq == seq {
                    return Some(deadline);
                }
                self.expired.pop();
            }
            if self.pending == 0 {
                return None;
            }
            let mut bound = u64::MAX;
            for level in 0..LEVELS {
                let occ = self.levels[level].occupancy;
                if occ == 0 {
                    continue;
                }
                let lshift = WHEEL_BITS * level as u32;
                let cur_global = self.last >> lshift;
                let cur = (cur_global & 63) as u32;
                let rotated = occ.rotate_right((cur + 1) & 63);
                let dist = rotated.trailing_zeros() as u64 + 1;
                let slot_start = (cur_global + dist) << lshift;
                bound = bound.min(slot_start.max(self.last + 1));
            }
            Some(bound)
        }

        fn place(&mut self, index: u32) {
            let tick = self.slab[index as usize].deadline_tick;
            let max_span = (1u64 << (WHEEL_BITS * LEVELS as u32)) - 1;
            let delta = (tick - self.last).min(max_span);
            let level = ((63 - (delta | 1).leading_zeros()) / WHEEL_BITS) as usize;
            let lshift = WHEEL_BITS * level as u32;
            let slot = (((self.last + delta) >> lshift) & 63) as usize;
            let head = self.levels[level].slots[slot];
            {
                let e = &mut self.slab[index as usize];
                e.state = State::Armed;
                e.pos = (level * SLOTS + slot) as u16;
                e.prev = NIL;
                e.next = head;
            }
            if head != NIL {
                self.slab[head as usize].prev = index;
            }
            self.levels[level].slots[slot] = index;
            self.levels[level].occupancy |= 1u64 << slot;
        }

        fn unlink(&mut self, index: u32) {
            let (pos, prev, next) = {
                let e = &self.slab[index as usize];
                (e.pos as usize, e.prev, e.next)
            };
            let (level, slot) = (pos / SLOTS, pos % SLOTS);
            if prev != NIL {
                self.slab[prev as usize].next = next;
            } else {
                self.levels[level].slots[slot] = next;
                if next == NIL {
                    self.levels[level].occupancy &= !(1u64 << slot);
                }
            }
            if next != NIL {
                self.slab[next as usize].prev = prev;
            }
        }
    }

    fn circular_range_mask(a: u32, b: u32) -> u64 {
        let le = |x: u32| -> u64 {
            if x == 63 {
                !0
            } else {
                (1u64 << (x + 1)) - 1
            }
        };
        if a < b {
            le(b) & !le(a)
        } else {
            le(b) | !le(a)
        }
    }
}

/// Tiny deterministic PRNG (no allocation, no dependency).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

/// The timer churn one TCP segment costs a busy server, at `n`
/// concurrent connections:
///
/// * the connection's standing RTO timer is re-armed a full RTO out
///   (wheel: O(1) relink of the persistent entry; seed: tombstone the
///   old heap entry + push a fresh one),
/// * one short delayed-ACK-scale timer is armed and — a few ops later,
///   when the clock passes it — dispatched (wheel: slot pop; seed:
///   O(log n) sift-down over the n-plus-garbage heap),
/// * the park/halt deadline is consulted every 64 ops, as every
///   dispatch pass does.
///
/// The per-op work is identical at every `n` — exactly one arm, one
/// re-arm, and one expiry — so ns/op directly exposes how each
/// structure scales with the number of *pending* timers.
const RTO: u64 = 300_000_000;
const DELACK: u64 = 1_000;
const STEP: u64 = 500;

/// Handler id marking a delayed-ACK (one-shot) entry.
const DELACK_ID: u32 = u32::MAX;

fn measure_wheel(n: usize, ops: usize) -> f64 {
    let mut wheel: TimerWheel<u32> = TimerWheel::new(0);
    let mut rng = Lcg(0x5EED ^ n as u64);
    let mut now = 0u64;
    let standing: Vec<_> = (0..n)
        .map(|i| wheel.schedule(RTO + rng.next() % RTO, i as u32))
        .collect();
    let start = Instant::now();
    for i in 0..ops {
        now += STEP;
        // Per-ACK RTO restart on a random connection (persistent
        // entry: O(1) relink).
        let j = (rng.next() as usize) % standing.len();
        wheel.arm(standing[j], now + RTO + rng.next() % RTO);
        // Delayed-ACK arm + dispatch of whatever came due.
        wheel.schedule(now + DELACK, DELACK_ID);
        wheel.advance(now);
        while let Some((t, _)) = wheel.pop_expired() {
            if *wheel.handler(t).unwrap() == DELACK_ID {
                wheel.remove(t);
            } else {
                // A fired RTO re-arms: the standing population stays
                // exactly n at every step.
                wheel.arm(t, now + RTO + rng.next() % RTO);
            }
        }
        if i % 64 == 0 {
            black_box(wheel.next_deadline(now));
        }
    }
    let ns = start.elapsed().as_nanos() as f64 / ops as f64;
    black_box(&wheel);
    ns
}

fn measure_heap(n: usize, ops: usize) -> f64 {
    let mut heap = SeedHeapTimers::new();
    let mut rng = Lcg(0x5EED ^ n as u64);
    let mut now = 0u64;
    for i in 0..n {
        heap.set(RTO + rng.next() % RTO, i as u64);
    }
    let start = Instant::now();
    for i in 0..ops {
        now += STEP;
        let j = rng.next() % n as u64;
        heap.cancel(j);
        heap.set(now + RTO + rng.next() % RTO, j);
        heap.set(now + DELACK, DELACK_ID as u64);
        // Dispatch: pop due entries (and any tombstones in front),
        // re-arming fired RTOs so the standing population stays n.
        while let Some(deadline) = heap.next_deadline() {
            if deadline > now {
                break;
            }
            let Reverse((_, _, id)) = heap.heap.pop().unwrap();
            if id != DELACK_ID as u64 {
                heap.set(now + RTO + rng.next() % RTO, id);
            }
        }
        if i % 64 == 0 {
            black_box(heap.next_deadline());
        }
    }
    let ns = start.elapsed().as_nanos() as f64 / ops as f64;
    black_box(&heap);
    ns
}

/// Handler payload for the layout comparison: the size class of the
/// event manager's persistent-timer slot (boxed closure fat pointer
/// plus bookkeeping words). Interleaved, this rides every cascade
/// cache line; SoA, it is only touched on fire.
type FatHandler = [u64; 4];

const DELACK_FAT: FatHandler = [u64::MAX; 4];

fn measure_soa_fat(n: usize, ops: usize) -> f64 {
    let mut wheel: TimerWheel<FatHandler> = TimerWheel::new(0);
    let mut rng = Lcg(0x50A ^ n as u64);
    let mut now = 0u64;
    let standing: Vec<_> = (0..n)
        .map(|i| wheel.schedule(RTO + rng.next() % RTO, [i as u64; 4]))
        .collect();
    let start = Instant::now();
    for i in 0..ops {
        now += STEP;
        let j = (rng.next() as usize) % standing.len();
        wheel.arm(standing[j], now + RTO + rng.next() % RTO);
        wheel.schedule(now + DELACK, DELACK_FAT);
        wheel.advance(now);
        while let Some((t, _)) = wheel.pop_expired() {
            if *wheel.handler(t).unwrap() == DELACK_FAT {
                wheel.remove(t);
            } else {
                wheel.arm(t, now + RTO + rng.next() % RTO);
            }
        }
        if i % 64 == 0 {
            black_box(wheel.next_deadline(now));
        }
    }
    let ns = start.elapsed().as_nanos() as f64 / ops as f64;
    black_box(&wheel);
    ns
}

fn measure_interleaved_fat(n: usize, ops: usize) -> f64 {
    let mut wheel: interleaved::InterleavedWheel<FatHandler> = interleaved::InterleavedWheel::new();
    let mut rng = Lcg(0x50A ^ n as u64);
    let mut now = 0u64;
    let standing: Vec<_> = (0..n)
        .map(|i| wheel.schedule(RTO + rng.next() % RTO, [i as u64; 4]))
        .collect();
    let start = Instant::now();
    for i in 0..ops {
        now += STEP;
        let j = (rng.next() as usize) % standing.len();
        wheel.arm(standing[j], now + RTO + rng.next() % RTO);
        wheel.schedule(now + DELACK, DELACK_FAT);
        wheel.advance(now);
        while let Some((t, _)) = wheel.pop_expired() {
            if *wheel.handler(t).unwrap() == DELACK_FAT {
                wheel.remove(t);
            } else {
                wheel.arm(t, now + RTO + rng.next() % RTO);
            }
        }
        if i % 64 == 0 {
            black_box(wheel.next_deadline(now));
        }
    }
    let ns = start.elapsed().as_nanos() as f64 / ops as f64;
    black_box(&wheel);
    ns
}

/// The tentpole's layout gate: the SoA hot/cold split vs the previous
/// interleaved (AoS) slab, same algorithm and op mix, fat handler
/// payloads. Reports slab bytes-per-entry (hot scan bytes vs whole
/// interleaved entry) and asserts the SoA layout wins at 1M pending,
/// where the slab is DRAM-resident and hot-line density is the whole
/// game.
fn verify_soa_layout(_c: &mut Criterion) {
    let soa_hot = ebbrt_core::timer::HOT_ENTRY_BYTES;
    let soa_total = TimerWheel::<FatHandler>::entry_bytes();
    let aos_total = interleaved::InterleavedWheel::<FatHandler>::entry_bytes();
    println!("timer slab layout: SoA hot/cold split vs interleaved baseline (fat handlers):");
    println!(
        "  bytes/entry: SoA hot {soa_hot} + cold {} = {soa_total}; interleaved {aos_total} \
         (cascade-scan bytes {soa_hot} vs {aos_total})",
        soa_total - soa_hot,
    );
    println!(
        "{:>12} {:>12} {:>16} {:>8} {:>14} {:>14}",
        "timers", "soa ns/op", "interleav ns/op", "ratio", "hot slab", "aos slab"
    );
    let mut results = Vec::new();
    for &n in &[10_000usize, 100_000, 1_000_000] {
        let ops = n.max(200_000);
        let s = (0..3)
            .map(|_| measure_soa_fat(n, ops))
            .fold(f64::MAX, f64::min);
        let a = (0..3)
            .map(|_| measure_interleaved_fat(n, ops))
            .fold(f64::MAX, f64::min);
        println!(
            "{n:>12} {s:>12.1} {a:>16.1} {:>7.2}x {:>12} KB {:>12} KB",
            a / s,
            n * soa_hot / 1024,
            n * aos_total / 1024,
        );
        results.push((n, s, a));
    }
    // The acceptance bar: at 1M pending (slab far beyond LLC) the
    // dense hot array must beat the interleaved layout outright.
    let (_, soa_1m, aos_1m) = results[2];
    assert!(
        soa_1m < aos_1m,
        "SoA layout ({soa_1m:.1} ns/op) must beat the interleaved baseline \
         ({aos_1m:.1} ns/op) at 1M pending timers"
    );
}

/// Property 2 + 3: flat scaling, and beats the seed at scale.
fn verify_scaling(_c: &mut Criterion) {
    println!("per-segment timer churn cost vs concurrent timer count:");
    println!(
        "{:>12} {:>14} {:>16} {:>8}",
        "timers", "wheel ns/op", "seed-heap ns/op", "speedup"
    );
    let mut wheel_ns = Vec::new();
    let mut heap_ns = Vec::new();
    for &n in &[10_000usize, 100_000, 1_000_000] {
        // At least one op per standing timer, so one-time amortized
        // costs (a timer's bounded cascade walk) are charged fairly.
        // Best of 3 runs: the assertions below gate CI, and a shared
        // runner's noise must not fail a build with no code defect.
        let ops = n.max(200_000);
        let w = (0..3)
            .map(|_| measure_wheel(n, ops))
            .fold(f64::MAX, f64::min);
        let h = (0..3)
            .map(|_| measure_heap(n, ops))
            .fold(f64::MAX, f64::min);
        println!("{n:>12} {w:>14.1} {h:>16.1} {:>7.2}x", h / w);
        wheel_ns.push(w);
        heap_ns.push(h);
    }
    // O(1) in the algorithmic regime: from 10k to 100k pending timers
    // (both structures still cache-resident) the wheel's per-op cost
    // must stay within a small constant — a reintroduced log factor
    // would show up here immediately.
    let wheel_ratio = wheel_ns[1] / wheel_ns[0];
    assert!(
        wheel_ratio < 4.0,
        "wheel cost not flat: {:.1} ns at 10k vs {:.1} ns at 100k ({wheel_ratio:.2}x)",
        wheel_ns[0],
        wheel_ns[1]
    );
    // At 1M the absolute numbers for *both* structures are dominated by
    // DRAM (a 1M-entry slab is a ~50 MB working set; every op touches
    // random entries), which is why the 10k→1M ratio is not ~1 — the
    // algorithmic claim at that scale is the heap comparison below.
    println!(
        "wheel 10k→100k ratio {wheel_ratio:.2}x (flat); 10k→1M {:.2}x \
         (DRAM-resident slab, same effect hits the heap {:.2}x harder in absolute ns)",
        wheel_ns[2] / wheel_ns[0],
        heap_ns[2] / wheel_ns[2],
    );
    // Faster than the seed at high connection counts — the acceptance
    // bar — with margin at both 100k and 1M.
    for (i, &n) in [100_000usize, 1_000_000].iter().enumerate() {
        assert!(
            wheel_ns[i + 1] * 1.2 < heap_ns[i + 1],
            "wheel ({:.1} ns) not meaningfully faster than seed heap ({:.1} ns) at {} timers",
            wheel_ns[i + 1],
            heap_ns[i + 1],
            n
        );
    }
}

/// Property 1a: raw wheel arm/cancel/re-arm allocates nothing once the
/// slab and expired queue are warm.
fn verify_zero_alloc_wheel(_c: &mut Criterion) {
    let mut wheel: TimerWheel<u32> = TimerWheel::new(0);
    let mut rng = Lcg(7);
    // Warm-up: grow the slab, the levels, and the expired queue.
    let mut standing: Vec<_> = (0..10_000)
        .map(|i| wheel.schedule(1_000 + rng.next() % 1_000_000, i as u32))
        .collect();
    let mut now = 0u64;
    for i in 0..20_000usize {
        now += 97;
        wheel.advance(now);
        while let Some((tok, _)) = wheel.pop_expired() {
            wheel.remove(tok);
            standing.retain(|t| *t != tok);
        }
        let j = (rng.next() as usize) % standing.len();
        wheel.remove(standing[j]);
        standing[j] = wheel.schedule(now + 1_000 + rng.next() % 1_000_000, i as u32);
    }
    // Measured phase: the same mix must not allocate at all.
    let base = allocs();
    for i in 0..50_000usize {
        now += 97;
        wheel.advance(now);
        while let Some((tok, _)) = wheel.pop_expired() {
            // Persistent-style: re-arm the fired entry in place.
            wheel.arm(tok, now + 1_000 + rng.next() % 1_000_000);
        }
        let j = (rng.next() as usize) % standing.len();
        wheel.arm(standing[j], now + 1_000 + rng.next() % 1_000_000);
        if i % 64 == 0 {
            black_box(wheel.next_deadline(now));
        }
    }
    let delta = allocs() - base;
    println!("steady-state wheel arm/cancel/re-arm x50000: {delta} heap allocations");
    assert_eq!(
        delta, 0,
        "steady-state timer churn must not touch the allocator"
    );
    black_box(&wheel);
}

/// Property 1b: the EventManager persistent-timer path — one timer per
/// connection, reset per ACK, disarmed when the retransmit queue
/// empties, and *fired* (dispatched) when the deadline passes —
/// allocates nothing per cycle. This is the exact op sequence `netif`
/// performs per TCP segment, including the delack firings the re-arm
/// loop alone would not exercise.
fn verify_zero_alloc_tcp_rearm(_c: &mut Criterion) {
    let clock = Arc::new(ManualClock::new());
    let em = EventManager::new(CoreId(0), clock.clone(), Arc::new(CoreEpoch::new()));
    let _bind = cpu::bind(CoreId(0));
    // One persistent RTO-style timer per simulated connection.
    const CONNS: usize = 1024;
    let timers: Vec<_> = (0..CONNS)
        .map(|_| em.set_persistent_timer(200_000_000, || ()))
        .collect();
    // Warm-up pass, including a dispatch of every timer so the expired
    // queue reaches its steady-state capacity.
    let mut now = 0u64;
    for &t in &timers {
        em.reset_timer(t, 200_000_000);
        em.disarm_timer(t);
        em.reset_timer(t, 1);
    }
    now += 10;
    clock.set(now);
    em.run_once();
    let base = allocs();
    for round in 0..100u64 {
        for &t in &timers {
            // Per segment: data sent → (re)arm; ACK → restart; queue
            // empty → park.
            em.reset_timer(t, 200_000_000 + round);
            em.reset_timer(t, 200_000_000 + round);
            em.disarm_timer(t);
        }
        // A delack-scale firing round: arm short, let it dispatch.
        for &t in &timers {
            em.reset_timer(t, 200);
        }
        now += 1_000;
        clock.set(now);
        em.run_once();
    }
    let delta = allocs() - base;
    let cycles = 100 * CONNS;
    println!("steady-state TCP re-arm + fire x{cycles}: {delta} heap allocations");
    assert_eq!(
        delta, 0,
        "per-segment RTO re-arm and persistent firing must not allocate \
         (one closure per connection, boxed once)"
    );
    for t in timers {
        em.cancel_timer(t);
    }
    assert_eq!(em.timer_stats().live, 0);
}

fn bench_arm_cancel(c: &mut Criterion) {
    let mut g = c.benchmark_group("timer_arm_cancel_100k_pending");
    let mut wheel: TimerWheel<u32> = TimerWheel::new(0);
    let mut rng = Lcg(11);
    let standing: Vec<_> = (0..100_000)
        .map(|i| wheel.schedule(1_000_000 + rng.next() % 500_000_000, i as u32))
        .collect();
    let mut i = 0usize;
    g.bench_function("wheel_rearm", |b| {
        b.iter(|| {
            let tok = standing[i % standing.len()];
            i += 1;
            wheel.arm(tok, 1_000_000 + rng.next() % 500_000_000)
        })
    });
    let mut heap = SeedHeapTimers::new();
    for i in 0..100_000u64 {
        heap.set(1_000_000 + rng.next() % 500_000_000, i);
    }
    let mut j = 0u64;
    g.bench_function("seed_heap_cancel_plus_set", |b| {
        b.iter(|| {
            let k = j % 100_000;
            j += 1;
            heap.cancel(k);
            heap.set(1_000_000 + rng.next() % 500_000_000, k);
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    verify_soa_layout,
    verify_scaling,
    verify_zero_alloc_wheel,
    verify_zero_alloc_tcp_rearm,
    bench_arm_cancel
);
criterion_main!(benches);
