//! Property tests: the vectorized burst receive path is
//! observationally equivalent to per-packet processing.
//!
//! Two layers of evidence:
//!
//! 1. **End to end** — the same randomly generated multi-connection
//!    workload is run twice through the full simulated stack, once
//!    with the driver forced to per-packet delivery
//!    (`set_rx_burst_frames(1)`) and once with the full burst vector.
//!    Every connection must see byte-identical deliveries on both
//!    sides and end in the same TCP state. (Known, accepted
//!    divergences — fewer bare ACKs per pass, callbacks coalesced and
//!    deferred to end-of-run — are invisible at this level by design.)
//!
//! 2. **PCB reassembly** — random segmentation, duplication, and
//!    reordering of a byte stream fed through [`Pcb::on_data`] must
//!    reconstruct the exact stream and land on the same cumulative
//!    ACK point (`rcv_nxt`) as in-order per-segment delivery. This is
//!    the invariant that lets a per-PCB run send one cumulative ACK
//!    for the whole pass instead of one per segment.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use ebbrt_core::cpu::CoreId;
use ebbrt_core::iobuf::{Chain, IoBuf};
use ebbrt_net::driver::{set_rx_burst_frames, RX_BURST};
use ebbrt_net::netif::{ConnHandler, NetIf, TcpConn};
use ebbrt_net::tcp::{FourTuple, Pcb, TcpState};
use ebbrt_net::types::Ipv4Addr;
use ebbrt_sim::{CostProfile, LinkParams, SimMachine, SimWorld, Switch};
use proptest::strategy::Strategy;

const MASK: Ipv4Addr = Ipv4Addr::new(255, 255, 255, 0);

/// Restores the default burst size even if a case panics.
struct BurstGuard;
impl Drop for BurstGuard {
    fn drop(&mut self) {
        set_rx_burst_frames(RX_BURST);
    }
}

/// One generated workload: per connection, the message sent in each
/// round (empty = this connection sits the round out). All of a
/// round's sends are issued in one event so their frames share
/// receive bursts.
struct Scenario {
    /// `msgs[conn][round]` — payload bytes, possibly empty.
    msgs: Vec<Vec<Vec<u8>>>,
}

/// Echo server handler that also records the received stream.
struct RecordEcho {
    rx: Rc<RefCell<Vec<u8>>>,
}
impl ConnHandler for RecordEcho {
    fn on_receive(&self, conn: &TcpConn, data: Chain<IoBuf>) {
        self.rx.borrow_mut().extend(data.copy_to_vec());
        let _ = conn.send(data);
    }
}

/// Client handler collecting the echoed stream.
struct Collect {
    rx: Rc<RefCell<Vec<u8>>>,
    connected: Rc<Cell<bool>>,
}
impl ConnHandler for Collect {
    fn on_connected(&self, _c: &TcpConn) {
        self.connected.set(true);
    }
    fn on_receive(&self, _c: &TcpConn, data: Chain<IoBuf>) {
        self.rx.borrow_mut().extend(data.copy_to_vec());
    }
}

struct SendCell<T>(T);
// SAFETY: the simulation executes all events on the single test thread.
unsafe impl<T> Send for SendCell<T> {}

fn on_core0<T: 'static>(m: &Rc<SimMachine>, v: T, f: impl FnOnce(T) + 'static) {
    let cell = SendCell((v, f));
    m.spawn_on(CoreId(0), move || {
        let cell = cell;
        (cell.0 .1)(cell.0 .0);
    });
}

/// What a run of the scenario looks like from the application: the
/// per-connection byte streams seen by each side and the final client
/// TCP states.
#[derive(PartialEq, Eq, Debug)]
struct Observation {
    server_rx: Vec<Vec<u8>>,
    client_rx: Vec<Vec<u8>>,
    final_states: Vec<TcpState>,
}

fn run_scenario(burst: usize, sc: &Scenario) -> Observation {
    let _guard = BurstGuard;
    set_rx_burst_frames(burst);

    let w = SimWorld::new();
    let sw = Switch::new(&w);
    let server = SimMachine::create(&w, "server", 1, CostProfile::ebbrt_vm(), [0xAA; 6]);
    let client = SimMachine::create(&w, "client", 1, CostProfile::ebbrt_vm(), [0xBB; 6]);
    sw.attach(server.nic(), LinkParams::default());
    sw.attach(client.nic(), LinkParams::default());
    let s_if = NetIf::attach(&server, Ipv4Addr::new(10, 0, 0, 1), MASK);
    let c_if = NetIf::attach(&client, Ipv4Addr::new(10, 0, 0, 2), MASK);
    w.run_to_idle();

    let n = sc.msgs.len();
    // One listener port per connection keeps the streams separated
    // without in-band tagging.
    let server_rx: Vec<Rc<RefCell<Vec<u8>>>> =
        (0..n).map(|_| Rc::new(RefCell::new(Vec::new()))).collect();
    for (i, rx) in server_rx.iter().enumerate() {
        let rx = Rc::clone(rx);
        s_if.listen(7000 + i as u16, move |_c| {
            Rc::new(RecordEcho { rx: Rc::clone(&rx) }) as Rc<dyn ConnHandler>
        })
        .unwrap();
    }

    let client_rx: Vec<Rc<RefCell<Vec<u8>>>> =
        (0..n).map(|_| Rc::new(RefCell::new(Vec::new()))).collect();
    let connected: Vec<Rc<Cell<bool>>> = (0..n).map(|_| Rc::new(Cell::new(false))).collect();
    let conns: Rc<RefCell<Vec<TcpConn>>> = Rc::new(RefCell::new(Vec::new()));
    {
        let handlers: Vec<Collect> = (0..n)
            .map(|i| Collect {
                rx: Rc::clone(&client_rx[i]),
                connected: Rc::clone(&connected[i]),
            })
            .collect();
        let conns = Rc::clone(&conns);
        on_core0(&client, (c_if, handlers), move |(c_if, handlers)| {
            for (i, h) in handlers.into_iter().enumerate() {
                let c = c_if.connect(Ipv4Addr::new(10, 0, 0, 1), 7000 + i as u16, Rc::new(h));
                conns.borrow_mut().push(c);
            }
        });
    }
    w.run_to_idle();
    for c in &connected {
        assert!(c.get(), "handshakes must complete");
    }

    let rounds = sc.msgs.iter().map(Vec::len).max().unwrap_or(0);
    for r in 0..rounds {
        // Fire every connection's message for this round in a single
        // event: the resulting frames interleave on the wire and
        // arrive within shared bursts.
        let batch: Vec<(usize, Vec<u8>)> = sc
            .msgs
            .iter()
            .enumerate()
            .filter_map(|(i, per_round)| {
                let m = per_round.get(r)?;
                (!m.is_empty()).then(|| (i, m.clone()))
            })
            .collect();
        if batch.is_empty() {
            continue;
        }
        let conns = Rc::clone(&conns);
        on_core0(&client, batch, move |batch| {
            for (i, msg) in batch {
                let conn = conns.borrow()[i].clone();
                conn.send(Chain::single(IoBuf::copy_from(&msg)))
                    .expect("send within window");
            }
        });
        w.run_to_idle();
    }

    {
        let conns = Rc::clone(&conns);
        on_core0(&client, (), move |()| {
            for c in conns.borrow().iter() {
                c.close();
            }
        });
    }
    w.run_to_idle();

    let final_states = conns.borrow().iter().map(TcpConn::state).collect();
    Observation {
        server_rx: server_rx.iter().map(|r| r.borrow().clone()).collect(),
        client_rx: client_rx.iter().map(|r| r.borrow().clone()).collect(),
        final_states,
    }
}

/// Deterministic filler so mismatches show *where* streams diverge.
fn fill(conn: usize, round: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|k| (conn.wrapping_mul(131) ^ round.wrapping_mul(31) ^ k) as u8)
        .collect()
}

#[test]
fn burst_path_is_observationally_equivalent_to_per_packet() {
    // A full simulated two-machine world per case and per burst
    // setting: bound the case count rather than inheriting the
    // 64-case default.
    if std::env::var("PROPTEST_CASES").is_err() {
        std::env::set_var("PROPTEST_CASES", "6");
    }
    proptest::test_runner::run(
        "burst_path_is_observationally_equivalent_to_per_packet",
        |rng| {
            let (nconns, rounds) = (2usize..5, 1usize..5).generate(rng);
            let mut msgs = Vec::new();
            for conn in 0..nconns {
                let mut per_round = Vec::new();
                for round in 0..rounds {
                    // Mix of empty rounds, sub-MSS messages, and
                    // multi-segment messages (MSS is 1460).
                    let len = (0usize..6000).generate(rng);
                    let len = if len < 500 { 0 } else { len };
                    per_round.push(fill(conn, round, len));
                }
                msgs.push(per_round);
            }
            let sc = Scenario { msgs };

            let per_packet = run_scenario(1, &sc);
            let per_burst = run_scenario(RX_BURST, &sc);

            // The ground truth: each side must have seen exactly the
            // concatenation of that connection's messages.
            for (i, per_round) in sc.msgs.iter().enumerate() {
                let expect: Vec<u8> = per_round.iter().flatten().copied().collect();
                proptest::prop_assert_eq!(
                    &per_burst.server_rx[i],
                    &expect,
                    "conn {} server stream",
                    i
                );
                proptest::prop_assert_eq!(
                    &per_burst.client_rx[i],
                    &expect,
                    "conn {} echoed stream",
                    i
                );
            }
            // And the burst path must be indistinguishable from the
            // per-packet path.
            proptest::prop_assert_eq!(
                per_packet,
                per_burst,
                "burst processing must be observationally equivalent"
            );
            Ok(())
        },
    );
}

/// Splits `stream` into segments at random boundaries, then disturbs
/// the arrival order within a bounded window and duplicates a few
/// segments — the worst traffic a burst can hand one PCB's run.
#[test]
fn reassembly_is_order_insensitive_and_acks_cumulatively() {
    proptest::test_runner::run(
        "reassembly_is_order_insensitive_and_acks_cumulatively",
        |rng| {
            let (len, iss) = (1usize..20_000, proptest::arbitrary::any::<u32>()).generate(rng);
            let stream: Vec<u8> = (0..len).map(|k| (k * 7 + 3) as u8).collect();

            // Random segmentation.
            let mut segs: Vec<(u32, Vec<u8>)> = Vec::new();
            let mut off = 0usize;
            while off < len {
                let take = (1usize..1461).generate(rng).min(len - off);
                segs.push((
                    iss.wrapping_add(off as u32),
                    stream[off..off + take].to_vec(),
                ));
                off += take;
            }

            // Bounded reordering: swap adjacent-ish segments.
            let swaps = (0usize..8).generate(rng);
            for _ in 0..swaps {
                if segs.len() >= 2 {
                    let a = (0usize..segs.len() - 1).generate(rng);
                    segs.swap(a, a + 1);
                }
            }
            // Duplicate a couple of segments (retransmit lookalikes).
            let dups = (0usize..3).generate(rng).min(segs.len());
            for _ in 0..dups {
                let a = (0usize..segs.len()).generate(rng);
                let dup = segs[a].clone();
                segs.push(dup);
            }

            let tuple = FourTuple {
                local: (Ipv4Addr::new(10, 0, 0, 1), 7),
                remote: (Ipv4Addr::new(10, 0, 0, 2), 40000),
            };
            let run_pcb = |order: &[(u32, Vec<u8>)]| {
                let mut p = Pcb::new(tuple, TcpState::Established, 0, CoreId(0));
                p.rcv_nxt = iss;
                let mut got = Vec::new();
                for (seq, bytes) in order {
                    for chunk in p.on_data(*seq, Chain::single(IoBuf::copy_from(bytes))) {
                        got.extend(chunk.copy_to_vec());
                    }
                }
                (got, p.rcv_nxt)
            };

            // In-order, one segment at a time (the per-packet baseline)…
            let mut in_order = segs.clone();
            in_order.sort_by_key(|(seq, _)| seq.wrapping_sub(iss));
            let (base_bytes, base_ack) = run_pcb(&in_order);
            // …vs the disturbed order a burst may deliver.
            let (burst_bytes, burst_ack) = run_pcb(&segs);

            proptest::prop_assert_eq!(&base_bytes, &stream, "baseline must reassemble");
            proptest::prop_assert_eq!(&burst_bytes, &stream, "disturbed order must reassemble");
            proptest::prop_assert_eq!(
                base_ack,
                burst_ack,
                "cumulative ACK point must not depend on arrival order"
            );
            proptest::prop_assert_eq!(burst_ack, iss.wrapping_add(len as u32), "ACK covers stream");
            Ok(())
        },
    );
}
