//! Overload control, measured: a well-behaved tenant sharing one
//! server core with an 8× hotter misbehaving tenant, with and without
//! per-class fair scheduling.
//!
//! Both tenants run closed-loop pipelined memcached GETs against the
//! same single-core server; the hot tenant keeps 8× the pipeline depth
//! outstanding and fetches large values, so the paced transmit link is
//! the contended resource. The two runs differ **only** in the
//! installed [`QosMode`]: [`Fair`](QosMode::Fair) gives the
//! well-behaved tenant a real-time service curve plus the dominant
//! link share; [`Fifo`](QosMode::Fifo) paces the identical link with
//! no fairness — the no-QoS control. The CI gate asserts the
//! well-behaved tenant's p99 stays under a fixed virtual-time ceiling
//! with zero request failures under Fair, **and** that the Fifo
//! control violates the same ceiling — if it stops violating, the
//! bench has lost its contention and must be re-tuned, not waved
//! through.
//!
//! All latency is virtual time from the deterministic cost model, so
//! the gate cannot flake on a noisy runner. The steady phase also
//! re-asserts the dataplane invariant under overload: admitted GET
//! traffic copies zero payload bytes and allocates zero fresh buffers.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::Arc;

use ebbrt_apps::memcached::{self, Store};
use ebbrt_apps::spawn_with;
use ebbrt_apps::stats::LatencyRecorder;
use ebbrt_core::cpu::CoreId;
use ebbrt_core::iobuf::{stats, Chain, IoBuf, MutIoBuf};
use ebbrt_core::qos::{self, ClassConfig, QosConfig, QosMode};
use ebbrt_net::netif::{local_netif, ConnHandler, NetIf, QosMatch, TcpConn};
use ebbrt_net::types::Ipv4Addr;
use ebbrt_sim::{CostProfile, LinkParams, SimMachine, SimWorld, Switch};

/// Paced link rate the per-core scheduler enforces (bits/sec). Slower
/// than the simulated wire, so the scheduler — not the switch — is the
/// contended queue.
const LINK_BPS: u64 = 1_000_000_000;
/// Bytes in the well-behaved tenant's value.
const GOLD_VALUE: usize = 64;
/// Bytes in the hot tenant's value: large responses monopolize a FIFO
/// link.
const HOT_VALUE: usize = 4096;
/// Well-behaved tenant's pipeline depth.
const GOLD_PIPELINE: u32 = 4;
/// Hot tenant's pipeline depth — 8× the well-behaved tenant.
const HOT_PIPELINE: u32 = 8 * GOLD_PIPELINE;
/// Well-behaved responses consumed before measurement starts.
const GOLD_WARMUP: u32 = 64;
/// Well-behaved responses measured.
const GOLD_STEADY: u32 = 256;
/// Hot-tenant responses in each phase — 8× the well-behaved tenant's,
/// so the aggressor stays saturated for the whole measured window.
const HOT_WARMUP: u32 = 8 * GOLD_WARMUP;
const HOT_STEADY: u32 = 8 * GOLD_STEADY;

/// The fixed virtual-time ceiling (ns) on the well-behaved tenant's
/// p99 under Fair — and the floor the Fifo control must violate.
///
/// Geometry: at the 1 Gbps paced link rate one hot MSS-sized segment
/// occupies the link ~12 µs, so a fair scheduler delays a gold
/// response by at most a frame in flight plus its own service; FIFO
/// queues it behind up to 32 × 3 large segments (~1 ms). The ceiling
/// sits well clear of both.
pub const GOLD_P99_CEILING_NS: u64 = 200_000;

/// One mode's results.
pub struct OverloadReport {
    /// Scheduler mode the run used.
    pub mode: QosMode,
    /// Measured well-behaved responses.
    pub gold_responses: u32,
    /// Well-behaved tenant's mean request latency (virtual ns).
    pub gold_mean_ns: f64,
    /// Well-behaved tenant's p99 request latency (virtual ns).
    pub gold_p99_ns: u64,
    /// Well-behaved request failures: unexpected closes, short or
    /// misframed responses. The Fair gate requires exactly zero.
    pub gold_failures: u32,
    /// Hot-tenant responses completed over the whole run.
    pub hot_responses: u32,
    /// Connections each class admitted (from the counter registry).
    pub gold_admitted: u64,
    /// See [`OverloadReport::gold_admitted`].
    pub bulk_admitted: u64,
    /// Payload bytes memcpy'd during the measured phase (all
    /// machines). Must be zero: descriptor clones end to end.
    pub steady_bytes_copied: u64,
    /// Fresh buffer allocations during the measured phase (all
    /// machines). Must be zero: pool-hot after warmup.
    pub steady_bufs_allocated: u64,
}

/// Closed-loop pipelined GET tenant. Latency is recorded per request
/// as virtual send-to-full-response time; the driver resets the
/// recorder after warmup and re-kicks the steady phase.
struct Tenant {
    request: IoBuf,
    resp_len: usize,
    pipeline: u32,
    conn: RefCell<Option<TcpConn>>,
    received: Cell<usize>,
    to_send: Cell<u32>,
    to_recv: Cell<u32>,
    sent_at: RefCell<VecDeque<u64>>,
    recorder: RefCell<LatencyRecorder>,
    failures: Cell<u32>,
    done_expected: Cell<bool>,
}

impl Tenant {
    fn new(request: Vec<u8>, value_len: usize, pipeline: u32, warmup: u32) -> Self {
        Tenant {
            request: MutIoBuf::from_vec(request).freeze(),
            resp_len: memcached::Header::SIZE + 4 + value_len,
            pipeline,
            conn: RefCell::new(None),
            received: Cell::new(0),
            to_send: Cell::new(warmup),
            to_recv: Cell::new(warmup),
            sent_at: RefCell::new(VecDeque::new()),
            recorder: RefCell::new(LatencyRecorder::new()),
            failures: Cell::new(0),
            done_expected: Cell::new(false),
        }
    }

    fn fire(&self, conn: &TcpConn) {
        self.to_send.set(self.to_send.get() - 1);
        self.sent_at
            .borrow_mut()
            .push_back(ebbrt_core::runtime::with_current(|rt| rt.now_ns()));
        let _ = conn.send(Chain::single(self.request.clone()));
    }

    /// Starts the next phase: `count` more responses, pipeline
    /// re-primed. Called from a spawned event on the tenant's core.
    fn kick(&self, count: u32) {
        self.to_send.set(count);
        self.to_recv.set(count);
        let conn = self.conn.borrow().clone().expect("kicked before connect");
        for _ in 0..self.pipeline.min(count) {
            self.fire(&conn);
        }
    }
}

impl ConnHandler for Tenant {
    fn on_connected(&self, conn: &TcpConn) {
        *self.conn.borrow_mut() = Some(conn.clone());
        for _ in 0..self.pipeline.min(self.to_send.get()) {
            self.fire(conn);
        }
    }

    fn on_receive(&self, conn: &TcpConn, data: Chain<IoBuf>) {
        let now = ebbrt_core::runtime::with_current(|rt| rt.now_ns());
        let mut got = self.received.get() + data.len();
        while got >= self.resp_len && self.to_recv.get() > 0 {
            got -= self.resp_len;
            self.to_recv.set(self.to_recv.get() - 1);
            match self.sent_at.borrow_mut().pop_front() {
                Some(t) => self.recorder.borrow_mut().record(now - t),
                None => self.failures.set(self.failures.get() + 1),
            }
            if self.to_send.get() > 0 {
                self.fire(conn);
            }
        }
        self.received.set(got);
        if got >= self.resp_len {
            // More bytes than outstanding requests: misframed stream.
            self.failures.set(self.failures.get() + 1);
        }
    }

    fn on_close(&self, _conn: &TcpConn) {
        if !self.done_expected.get() {
            self.failures.set(self.failures.get() + 1);
        }
    }
}

/// Runs the two-tenant overload workload under `mode`.
pub fn run(mode: QosMode) -> OverloadReport {
    let w = SimWorld::new();
    let sw = Switch::new(&w);
    let server = SimMachine::create(&w, "server", 1, CostProfile::ebbrt_vm(), [0xAA; 6]);
    let gold_m = SimMachine::create(&w, "gold", 1, CostProfile::ebbrt_vm(), [0xBB; 6]);
    let hot_m = SimMachine::create(&w, "hot", 1, CostProfile::ebbrt_vm(), [0xCC; 6]);
    sw.attach(server.nic(), LinkParams::default());
    sw.attach(gold_m.nic(), LinkParams::default());
    sw.attach(hot_m.nic(), LinkParams::default());
    let mask = Ipv4Addr::new(255, 255, 255, 0);
    let s_if = NetIf::attach(&server, Ipv4Addr::new(10, 0, 0, 1), mask);
    let _g_if = NetIf::attach(&gold_m, Ipv4Addr::new(10, 0, 0, 2), mask);
    let _h_if = NetIf::attach(&hot_m, Ipv4Addr::new(10, 0, 0, 3), mask);

    // The policy under test: the well-behaved tenant gets a real-time
    // service curve plus the dominant link share; the hot tenant rides
    // the residue. The Fifo control installs the identical classes and
    // paced link with fairness switched off.
    let mut cfg = QosConfig::new(LINK_BPS)
        .class(ClassConfig::new("gold").rt_bps(400_000_000).ls_weight(8))
        .class(ClassConfig::new("bulk").ls_weight(1));
    if mode == QosMode::Fifo {
        cfg = cfg.fifo();
    }
    let policy = s_if.install_qos(cfg);
    let gold_class = policy.config().class_id("gold").unwrap();
    let bulk_class = policy.config().class_id("bulk").unwrap();
    policy.add_rule(QosMatch::Peer(Ipv4Addr::new(10, 0, 0, 2)), gold_class);
    policy.add_rule(QosMatch::Peer(Ipv4Addr::new(10, 0, 0, 3)), bulk_class);
    w.run_to_idle();

    let store = Store::new(Arc::clone(server.runtime().rcu()));
    store.insert_raw(b"gold_key".to_vec(), IoBuf::copy_from(&[0x11; GOLD_VALUE]));
    store.insert_raw(b"hot_key".to_vec(), IoBuf::copy_from(&[0x22; HOT_VALUE]));
    let store_ref = store.register(server.runtime());
    server.spawn_on(CoreId(0), move || memcached::serve(store_ref));
    w.run_to_idle();

    let gold = Rc::new(Tenant::new(
        memcached::encode_get(b"gold_key", 1),
        GOLD_VALUE,
        GOLD_PIPELINE,
        GOLD_WARMUP,
    ));
    let hot = Rc::new(Tenant::new(
        memcached::encode_get(b"hot_key", 2),
        HOT_VALUE,
        HOT_PIPELINE,
        HOT_WARMUP,
    ));
    for (machine, tenant) in [(&gold_m, &gold), (&hot_m, &hot)] {
        let t = Rc::clone(tenant);
        spawn_with(machine, CoreId(0), t, move |t| {
            local_netif().connect(
                Ipv4Addr::new(10, 0, 0, 1),
                memcached::MEMCACHED_PORT,
                t as Rc<dyn ConnHandler>,
            );
        });
    }
    w.run_to_idle();
    assert_eq!(gold.to_recv.get(), 0, "gold warmup did not complete");
    assert_eq!(hot.to_recv.get(), 0, "hot warmup did not complete");

    // Steady phase: measured from a pool-hot start. The hot tenant is
    // kicked first so its backlog is already queued when the
    // well-behaved tenant's first measured request arrives.
    gold.recorder.borrow_mut().reset();
    hot.recorder.borrow_mut().reset();
    let rts = [server.runtime(), gold_m.runtime(), hot_m.runtime()];
    let before = stats::world_snapshot(rts.iter().map(|rt| &***rt));
    for (machine, tenant, count) in [(&hot_m, &hot, HOT_STEADY), (&gold_m, &gold, GOLD_STEADY)] {
        let t = Rc::clone(tenant);
        spawn_with(machine, CoreId(0), t, move |t| t.kick(count));
    }
    w.run_to_idle();
    let steady = stats::world_snapshot(rts.iter().map(|rt| &***rt)).since(&before);
    assert_eq!(gold.to_recv.get(), 0, "gold steady phase did not complete");
    assert_eq!(hot.to_recv.get(), 0, "hot steady phase did not complete");

    gold.done_expected.set(true);
    hot.done_expected.set(true);
    let snap = qos::snapshot(server.runtime());
    let mut rec = gold.recorder.borrow_mut();
    OverloadReport {
        mode,
        gold_responses: GOLD_STEADY,
        gold_mean_ns: rec.mean(),
        gold_p99_ns: rec.percentile(99.0),
        gold_failures: gold.failures.get(),
        hot_responses: HOT_WARMUP + HOT_STEADY,
        gold_admitted: snap.get(&qos::names::admitted("gold")),
        bulk_admitted: snap.get(&qos::names::admitted("bulk")),
        steady_bytes_copied: steady.bytes_copied,
        steady_bufs_allocated: steady.bufs_allocated,
    }
}

/// One table row (virtual-time columns only — deterministic).
pub fn format_report(r: &OverloadReport) -> String {
    format!(
        "{:>6} {:>10} {:>12.1} {:>12.1} {:>9} {:>10} {:>9} {:>10}",
        match r.mode {
            QosMode::Fair => "fair",
            QosMode::Fifo => "fifo",
        },
        r.gold_responses,
        r.gold_mean_ns / 1000.0,
        r.gold_p99_ns as f64 / 1000.0,
        r.gold_failures,
        r.hot_responses,
        r.steady_bytes_copied,
        r.steady_bufs_allocated,
    )
}

/// Header matching [`format_report`].
pub fn table_header() -> String {
    format!(
        "{:>6} {:>10} {:>12} {:>12} {:>9} {:>10} {:>9} {:>10}",
        "mode", "gold reqs", "mean us", "p99 us", "failures", "hot reqs", "copied", "fresh bufs"
    )
}

/// The CI gate: fair scheduling must hold the well-behaved tenant's
/// p99 under [`GOLD_P99_CEILING_NS`] with zero failures and a
/// zero-copy, pool-hot steady phase — while the Fifo control run
/// violates the same ceiling, proving the contention is real.
pub fn assert_fair_isolates(fair: &OverloadReport, fifo: &OverloadReport) {
    assert_eq!(fair.mode, QosMode::Fair);
    assert_eq!(fifo.mode, QosMode::Fifo);
    assert_eq!(
        fair.gold_failures, 0,
        "well-behaved tenant must see zero request failures under Fair"
    );
    assert!(
        fair.gold_p99_ns <= GOLD_P99_CEILING_NS,
        "well-behaved p99 {} ns exceeds the {} ns ceiling despite fair scheduling",
        fair.gold_p99_ns,
        GOLD_P99_CEILING_NS,
    );
    assert!(
        fifo.gold_p99_ns > GOLD_P99_CEILING_NS,
        "the Fifo control run stayed under the ceiling ({} ns): the bench \
         lost its contention and no longer demonstrates isolation",
        fifo.gold_p99_ns,
    );
    assert_eq!(
        (fair.steady_bytes_copied, fair.steady_bufs_allocated),
        (0, 0),
        "admitted steady-state traffic must stay zero-copy and pool-hot \
         under overload"
    );
    assert_eq!(fair.gold_admitted, 1, "one well-behaved connection");
    assert_eq!(fair.bulk_admitted, 1, "one hot connection");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance gate, in-tree: the same assertions CI runs via
    /// the `overload_path` bench binary.
    #[test]
    fn fair_scheduling_isolates_the_well_behaved_tenant() {
        let fair = run(QosMode::Fair);
        let fifo = run(QosMode::Fifo);
        println!("{}", table_header());
        println!("{}", format_report(&fair));
        println!("{}", format_report(&fifo));
        assert_fair_isolates(&fair, &fifo);
    }
}
