//! Connection scale, measured: the conns-vs-latency sweep behind the
//! "one million connections" claim.
//!
//! Each point builds a fresh world — one single-core memcached server,
//! as many single-core client machines as the target needs (each holds
//! at most [`CONNS_PER_CLIENT`] connections; the ephemeral-port space
//! bounds a machine) — establishes `conns` TCP connections, and leaves
//! all but a fixed [`SAMPLED_MAX`]-connection probe set completely
//! idle. The probe connections then run a sparse closed-loop GET mix
//! (one request outstanding each), and per-request virtual-time
//! latency is recorded through the same slab-PCB demux every idle
//! connection sits in.
//!
//! What the CI gate pins down (see [`assert_scales`]):
//!
//! 1. **Flat tail latency**: demux is one RCU-indexed hash probe to a
//!    slab token plus one bounds-checked slab index — no per-segment
//!    second hash, no tombstone scans — so p99 at the top of the sweep
//!    may not exceed [`P99_DEGRADATION_X`] × p99 at the bottom.
//! 2. **Bounded idle footprint**: the *accounted* per-connection cost
//!    ([`ebbrt_net::netif::NetIf::bytes_per_idle_conn`] — slab slot,
//!    PCB box, two parked timer entries) stays under
//!    [`IDLE_CONN_BUDGET_BYTES`], and when the caller supplies a
//!    live-heap probe the *measured* whole-world footprint per
//!    connection (both endpoints' PCBs, demux entries, switch state)
//!    stays under [`MEASURED_CONN_BUDGET_BYTES`].
//! 3. **Zero-copy, pool-hot steady state**: the measured GET phase
//!    copies zero payload bytes and allocates zero fresh buffers,
//!    regardless of how many idle connections surround it.
//!
//! All latency is virtual time from the deterministic cost model, so
//! the gate cannot flake on a noisy runner.

use std::cell::{Cell, RefCell};
use std::rc::{Rc, Weak};
use std::sync::Arc;

use ebbrt_apps::memcached::{self, Store};
use ebbrt_apps::spawn_with;
use ebbrt_apps::stats::LatencyRecorder;
use ebbrt_core::cpu::CoreId;
use ebbrt_core::iobuf::{stats, Chain, IoBuf, MutIoBuf};
use ebbrt_net::netif::{local_netif, ConnHandler, NetIf, TcpConn};
use ebbrt_net::types::Ipv4Addr;
use ebbrt_sim::{CostProfile, LinkParams, SimMachine, SimWorld, Switch};

/// Connections per client machine, comfortably inside the ephemeral
/// port range (33000..60000) a single machine can mint.
pub const CONNS_PER_CLIENT: usize = 20_000;
/// Probe connections that actually serve traffic at every point.
pub const SAMPLED_MAX: usize = 256;
/// Per-probe GETs consumed before measurement (pool warm-up).
const WARMUP_GETS: u32 = 4;
/// Per-probe GETs measured.
const MEASURED_GETS: u32 = 16;
/// Bytes in the probed value.
const VALUE_LEN: usize = 64;
/// Connect calls issued per driver event, so establishment interleaves
/// with the server's accept processing instead of queueing one
/// monolithic SYN burst.
const CONNECT_CHUNK: usize = 512;

/// Ceiling on p99 growth across the sweep: the top point's p99 must
/// stay within this factor of the bottom point's.
pub const P99_DEGRADATION_X: f64 = 2.0;
/// Hard budget on the accounted bytes of one idle established
/// connection (slab slot + PCB box + two parked timer entries).
pub const IDLE_CONN_BUDGET_BYTES: usize = 1024;
/// Hard budget on the *measured* whole-world heap delta per
/// connection: both endpoints' accounted state plus the RCU demux
/// entries and allocator slack on either side.
pub const MEASURED_CONN_BUDGET_BYTES: f64 = 8192.0;

/// One sweep point's results.
pub struct ScaleReport {
    /// Established connections held for the whole point.
    pub conns: usize,
    /// Probe connections that served the measured GETs.
    pub sampled: usize,
    /// Probe mean request latency (virtual ns).
    pub mean_ns: f64,
    /// Probe p99 request latency (virtual ns).
    pub p99_ns: u64,
    /// Probe request failures (unexpected close / misframe). Gate: 0.
    pub failures: u32,
    /// Payload bytes memcpy'd during the measured phase (all
    /// machines). Gate: 0.
    pub steady_bytes_copied: u64,
    /// Fresh buffer allocations during the measured phase (all
    /// machines). Gate: 0.
    pub steady_bufs_allocated: u64,
    /// [`NetIf::bytes_per_idle_conn`] — the accounted footprint.
    pub accounted_bytes_per_idle_conn: usize,
    /// Measured live-heap delta per connection across establishment
    /// (whole world), when the caller supplied a probe.
    pub measured_bytes_per_conn: Option<f64>,
    /// Server PCB slab live count at steady state.
    pub slab_live: usize,
    /// Server PCB slab high-water mark.
    pub slab_high_water: usize,
}

/// One probe connection: closed-loop, one GET outstanding, latency
/// recorded per full response.
struct Probe {
    request: IoBuf,
    resp_len: usize,
    conn: RefCell<Option<TcpConn>>,
    received: Cell<usize>,
    to_recv: Cell<u32>,
    sent_at: Cell<u64>,
    recorder: Rc<RefCell<LatencyRecorder>>,
    failures: Rc<Cell<u32>>,
    measuring: Cell<bool>,
    outstanding: Rc<Cell<u32>>,
}

impl Probe {
    fn fire(&self, conn: &TcpConn) {
        self.sent_at
            .set(ebbrt_core::runtime::with_current(|rt| rt.now_ns()));
        if conn.send(Chain::single(self.request.clone())).is_err() {
            self.failures.set(self.failures.get() + 1);
        }
    }

    /// Starts a phase of `count` sequential GETs on this probe.
    fn kick(&self, count: u32, measuring: bool) {
        self.to_recv.set(count);
        self.measuring.set(measuring);
        self.outstanding.set(self.outstanding.get() + 1);
        let conn = self.conn.borrow().clone().expect("kicked before connect");
        self.fire(&conn);
    }
}

impl ConnHandler for Probe {
    fn on_connected(&self, conn: &TcpConn) {
        *self.conn.borrow_mut() = Some(conn.clone());
    }

    fn on_receive(&self, conn: &TcpConn, data: Chain<IoBuf>) {
        let mut got = self.received.get() + data.len();
        while got >= self.resp_len && self.to_recv.get() > 0 {
            got -= self.resp_len;
            if self.measuring.get() {
                let now = ebbrt_core::runtime::with_current(|rt| rt.now_ns());
                self.recorder.borrow_mut().record(now - self.sent_at.get());
            }
            self.to_recv.set(self.to_recv.get() - 1);
            if self.to_recv.get() > 0 {
                self.fire(conn);
            } else {
                self.outstanding.set(self.outstanding.get() - 1);
            }
        }
        self.received.set(got);
        if got >= self.resp_len {
            self.failures.set(self.failures.get() + 1);
        }
    }

    fn on_close(&self, _conn: &TcpConn) {
        self.failures.set(self.failures.get() + 1);
    }
}

/// Per-machine chunked connect driver. Chunks are flow-controlled:
/// the next [`CONNECT_CHUNK`] connects are issued only once every
/// connection of the previous chunk has reported `on_connected`, so
/// outstanding handshakes stay bounded per machine and a large point
/// cannot push the single server core past the handshake RTO (a
/// retransmission storm would permanently bloat both sides' buffer
/// pools and corrupt the measured bytes-per-connection figure).
struct Driver {
    quota: usize,
    issued: Cell<usize>,
    established: Cell<usize>,
    probes: Vec<Rc<Probe>>,
    herd: Rc<Herd>,
    machine: Rc<SimMachine>,
}

impl Driver {
    fn note_connected(self: &Rc<Self>) {
        self.established.set(self.established.get() + 1);
        if self.established.get() == self.issued.get() && self.issued.get() < self.quota {
            let d2 = Rc::clone(self);
            spawn_with(&self.machine.clone(), CoreId(0), d2, |d| step(&d));
        }
    }
}

fn step(d: &Rc<Driver>) {
    let start = d.issued.get();
    let end = (start + CONNECT_CHUNK).min(d.quota);
    let n = local_netif();
    for j in start..end {
        let handler: Rc<dyn ConnHandler> = match d.probes.get(j) {
            Some(p) => Rc::new(ProbeWrap {
                inner: Rc::clone(p),
                driver: Rc::downgrade(d),
            }) as Rc<dyn ConnHandler>,
            None => Rc::clone(&d.herd) as Rc<dyn ConnHandler>,
        };
        n.connect(
            Ipv4Addr::new(10, 0, 0, 1),
            memcached::MEMCACHED_PORT,
            handler,
        );
    }
    d.issued.set(end);
}

/// The idle herd's shared handler: one `Rc` for every unsampled
/// connection on a machine (an idle connection's handler costs a
/// refcount, not an allocation), reporting establishment back to the
/// driver's chunk flow control. `Weak` back-reference: the driver
/// holds the herd.
struct Herd {
    driver: RefCell<Weak<Driver>>,
}

impl ConnHandler for Herd {
    fn on_connected(&self, _conn: &TcpConn) {
        if let Some(d) = self.driver.borrow().upgrade() {
            d.note_connected();
        }
    }
    fn on_receive(&self, _conn: &TcpConn, _data: Chain<IoBuf>) {}
}

/// A probe's handler wrapped so its establishment also feeds the
/// driver's chunk flow control.
struct ProbeWrap {
    inner: Rc<Probe>,
    driver: Weak<Driver>,
}

impl ConnHandler for ProbeWrap {
    fn on_connected(&self, conn: &TcpConn) {
        self.inner.on_connected(conn);
        if let Some(d) = self.driver.upgrade() {
            d.note_connected();
        }
    }
    fn on_receive(&self, conn: &TcpConn, data: Chain<IoBuf>) {
        self.inner.on_receive(conn, data);
    }
    fn on_window_open(&self, conn: &TcpConn) {
        self.inner.on_window_open(conn);
    }
    fn on_close(&self, conn: &TcpConn) {
        self.inner.on_close(conn);
    }
}

/// Runs one sweep point holding `conns` established connections.
/// `live_heap_bytes`, when given, reads the process's live heap byte
/// count (from a counting global allocator) so the report carries a
/// measured bytes-per-connection figure.
pub fn run(conns: usize, live_heap_bytes: Option<&dyn Fn() -> u64>) -> ScaleReport {
    assert!(conns >= 1, "a sweep point needs at least one connection");
    let clients = conns.div_ceil(CONNS_PER_CLIENT);
    assert!(clients <= 200, "client address space exhausted");

    let w = SimWorld::new();
    let sw = Switch::new(&w);
    let server = SimMachine::create(&w, "server", 1, CostProfile::ebbrt_vm(), [0xAA; 6]);
    sw.attach(server.nic(), LinkParams::default());
    let mask = Ipv4Addr::new(255, 255, 0, 0);
    let server_ip = Ipv4Addr::new(10, 0, 0, 1);
    let s_if = NetIf::attach(&server, server_ip, mask);

    let mut client_machines: Vec<Rc<SimMachine>> = Vec::with_capacity(clients);
    for i in 0..clients {
        let m = SimMachine::create(
            &w,
            &format!("client{i}")[..],
            1,
            CostProfile::ebbrt_vm(),
            [0xBB, 0, 0, 0, (i >> 8) as u8, i as u8],
        );
        sw.attach(m.nic(), LinkParams::default());
        // 10.0.1.0 upward, skipping .0/.255 in the low octet.
        let ip = Ipv4Addr::new(10, 0, 1 + (i / 250) as u8, 1 + (i % 250) as u8);
        let _c_if = NetIf::attach(&m, ip, mask);
        client_machines.push(m);
    }

    let store = Store::new(Arc::clone(server.runtime().rcu()));
    store.insert_raw(b"k".to_vec(), IoBuf::copy_from(&[0x5A; VALUE_LEN]));
    let store_ref = store.register(server.runtime());
    server.spawn_on(CoreId(0), move || memcached::serve(store_ref));
    w.run_to_idle();

    let heap_before = live_heap_bytes.map(|f| f());

    // Establish: machine 0 hosts the probes (real handlers); everything
    // else shares one no-op handler per machine. Each machine's driver
    // connects in chunks and re-queues itself, so SYN bursts interleave
    // with the server's accept work.
    let recorder = Rc::new(RefCell::new(LatencyRecorder::new()));
    let failures = Rc::new(Cell::new(0u32));
    let outstanding = Rc::new(Cell::new(0u32));
    let sampled = conns.min(SAMPLED_MAX);
    let request = MutIoBuf::from_vec(memcached::encode_get(b"k", 1)).freeze();
    let probes: Vec<Rc<Probe>> = (0..sampled)
        .map(|_| {
            Rc::new(Probe {
                request: request.clone(),
                resp_len: memcached::Header::SIZE + 4 + VALUE_LEN,
                conn: RefCell::new(None),
                received: Cell::new(0),
                to_recv: Cell::new(0),
                sent_at: Cell::new(0),
                recorder: Rc::clone(&recorder),
                failures: Rc::clone(&failures),
                measuring: Cell::new(false),
                outstanding: Rc::clone(&outstanding),
            })
        })
        .collect();

    let mut remaining = conns;
    // Keeps every driver alive across the whole establishment phase:
    // the herd/probe handlers hold only `Weak` back-references, so the
    // chunk flow control dies with the driver otherwise.
    let mut drivers: Vec<Rc<Driver>> = Vec::with_capacity(clients);
    for (i, m) in client_machines.iter().enumerate() {
        let quota = remaining.min(CONNS_PER_CLIENT);
        remaining -= quota;
        let probes_here: Vec<Rc<Probe>> = if i == 0 {
            probes.iter().map(Rc::clone).collect()
        } else {
            Vec::new()
        };
        let herd = Rc::new(Herd {
            driver: RefCell::new(Weak::new()),
        });
        let driver = Rc::new(Driver {
            quota,
            issued: Cell::new(0),
            established: Cell::new(0),
            probes: probes_here,
            herd: Rc::clone(&herd),
            machine: Rc::clone(m),
        });
        *herd.driver.borrow_mut() = Rc::downgrade(&driver);
        drivers.push(Rc::clone(&driver));
        spawn_with(m, CoreId(0), driver, |d| step(&d));
    }
    w.run_to_idle();
    for (i, d) in drivers.iter().enumerate() {
        assert_eq!(
            d.established.get(),
            d.quota,
            "client machine {i} stalled mid-establishment"
        );
    }
    drop(drivers);

    assert_eq!(
        s_if.conn_count(),
        conns,
        "every connection must establish (and none may be shed — no \
         policy and no syn backlog cap are installed)"
    );
    assert_eq!(
        s_if.embryonic_total(),
        0,
        "no half-open conns at steady state"
    );
    for (i, p) in probes.iter().enumerate() {
        assert!(p.conn.borrow().is_some(), "probe {i} failed to connect");
    }

    let measured_bytes_per_conn = match (heap_before, live_heap_bytes) {
        (Some(b0), Some(f)) => Some((f().saturating_sub(b0)) as f64 / conns as f64),
        _ => None,
    };

    // Warm-up: every probe runs a few GETs so both endpoints' buffer
    // pools and the response path are hot.
    let m0 = &client_machines[0];
    {
        let ps: Vec<Rc<Probe>> = probes.iter().map(Rc::clone).collect();
        spawn_with(m0, CoreId(0), ps, |ps| {
            for p in &ps {
                p.kick(WARMUP_GETS, false);
            }
        });
    }
    w.run_to_idle();
    assert_eq!(outstanding.get(), 0, "warm-up did not complete");

    // Measured phase: sparse GET mix over the probe set, surrounded by
    // `conns - sampled` idle connections in the same slab and demux.
    let rts: Vec<_> = std::iter::once(server.runtime())
        .chain(client_machines.iter().map(|m| m.runtime()))
        .collect();
    let before = stats::world_snapshot(rts.iter().map(|rt| &***rt));
    {
        let ps: Vec<Rc<Probe>> = probes.iter().map(Rc::clone).collect();
        spawn_with(m0, CoreId(0), ps, |ps| {
            for p in &ps {
                p.kick(MEASURED_GETS, true);
            }
        });
    }
    w.run_to_idle();
    let steady = stats::world_snapshot(rts.iter().map(|rt| &***rt)).since(&before);
    assert_eq!(outstanding.get(), 0, "measured phase did not complete");

    let mut rec = recorder.borrow_mut();
    ScaleReport {
        conns,
        sampled,
        mean_ns: rec.mean(),
        p99_ns: rec.percentile(99.0),
        failures: failures.get(),
        steady_bytes_copied: steady.bytes_copied,
        steady_bufs_allocated: steady.bufs_allocated,
        accounted_bytes_per_idle_conn: NetIf::bytes_per_idle_conn(),
        measured_bytes_per_conn,
        slab_live: s_if.conn_count(),
        slab_high_water: s_if.conn_high_water(),
    }
}

/// One table/CSV row.
pub fn format_report(r: &ScaleReport) -> String {
    format!(
        "{:>9} {:>8} {:>10.1} {:>10.1} {:>9} {:>8} {:>11} {:>12} {:>12}",
        r.conns,
        r.sampled,
        r.mean_ns / 1000.0,
        r.p99_ns as f64 / 1000.0,
        r.failures,
        r.accounted_bytes_per_idle_conn,
        r.measured_bytes_per_conn
            .map_or_else(|| "-".into(), |b| format!("{b:.0}")),
        r.steady_bytes_copied,
        r.steady_bufs_allocated,
    )
}

/// Header matching [`format_report`].
pub fn table_header() -> String {
    format!(
        "{:>9} {:>8} {:>10} {:>10} {:>9} {:>8} {:>11} {:>12} {:>12}",
        "conns",
        "sampled",
        "mean us",
        "p99 us",
        "failures",
        "b/conn",
        "measured b",
        "copied",
        "fresh bufs"
    )
}

/// The CI gate over a whole sweep (points in ascending conns order).
pub fn assert_scales(points: &[ScaleReport]) {
    assert!(points.len() >= 2, "a sweep needs at least two points");
    let bottom = &points[0];
    let top = &points[points.len() - 1];
    assert!(
        top.conns > bottom.conns,
        "sweep points must ascend in connection count"
    );
    for p in points {
        assert_eq!(p.failures, 0, "no request may fail at {} conns", p.conns);
        assert_eq!(
            (p.steady_bytes_copied, p.steady_bufs_allocated),
            (0, 0),
            "the measured GET phase at {} conns must be zero-copy and \
             pool-hot",
            p.conns
        );
        assert!(
            p.accounted_bytes_per_idle_conn <= IDLE_CONN_BUDGET_BYTES,
            "accounted idle-conn bytes {} exceed the {} budget",
            p.accounted_bytes_per_idle_conn,
            IDLE_CONN_BUDGET_BYTES
        );
        assert_eq!(
            p.slab_live, p.conns,
            "the PCB slab must hold exactly the established conns"
        );
        assert_eq!(
            p.slab_high_water, p.conns,
            "an establish-only point must never overshoot the slab"
        );
        if let Some(b) = p.measured_bytes_per_conn {
            assert!(
                b <= MEASURED_CONN_BUDGET_BYTES,
                "measured bytes/conn {b:.0} exceed the \
                 {MEASURED_CONN_BUDGET_BYTES} budget at {} conns",
                p.conns
            );
        }
    }
    let ceiling = (bottom.p99_ns as f64) * P99_DEGRADATION_X;
    assert!(
        (top.p99_ns as f64) <= ceiling,
        "p99 degraded more than {P99_DEGRADATION_X}x across the sweep: \
         {} ns at {} conns vs {} ns at {} conns",
        top.p99_ns,
        top.conns,
        bottom.p99_ns,
        bottom.conns
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance gate, in-tree at debug-friendly scale: the same
    /// assertions CI runs via the `conn_scale` bench binary (which
    /// extends the sweep to 10^6 under `--release`).
    #[test]
    fn latency_stays_flat_from_1k_to_16k_conns() {
        let points = [run(1_000, None), run(16_000, None)];
        println!("{}", table_header());
        for p in &points {
            println!("{}", format_report(p));
        }
        assert_scales(&points);
    }
}
