//! N-core RSS sweep: the multi-queue, multi-size-class steady-state
//! workload.
//!
//! PR 1 proved the zero-copy/zero-allocation property for one size
//! class on one core. This module drives the production-shaped version
//! of the same claim: `cores`-core server and client machines, many
//! connections sharded across event cores by RSS, **deliberately
//! skewed** traffic (one hot connection issuing several times the
//! requests of the warm ones), and a workload that exercises *both*
//! buffer size classes — 512-byte values served from the small (2 KiB)
//! class and multi-kilobyte values staged and served through the large
//! (64 KiB) class.
//!
//! The run is phased, with a barrier between phases so the per-core
//! IOBuf counters can be snapshotted at quiescent points:
//!
//! 1. **Warmup** — explicit per-core pool prewarm, then every
//!    connection cycles SET(large) → GET(large) → GET(small) until the
//!    per-core pools reach their steady working set. (The sweep used
//!    to need an unmeasured *dry run before each measured phase* to
//!    reach that phase's pool fixpoint; the flux-adaptive depot
//!    watermark plus home-core mailboxes for cross-machine frees made
//!    them unnecessary — both dry passes are gone.)
//! 2. **Steady GETs** (measured) — every connection alternates
//!    GET(large) / GET(small) with the hot-connection skew. Asserts
//!    the full property: **0 payload bytes copied and 0 fresh buffer
//!    allocations** — which covers both size classes — with the small
//!    class actively recycling.
//! 3. **SET refresh** (measured) — every connection re-SETs its large
//!    value, the hot connection many times more than the warm ones.
//!    Asserts that no `> 2 KiB` SET takes the one-shot-allocation
//!    fallback: the large class serves every staging buffer
//!    (`fallback_allocs == 0`, `hits > 0`) and no fresh region is
//!    allocated at all.
//!
//! Pools are owned per machine (the buffer-pool Ebb), so the skewed
//! buffer flows surface two kinds of migration the report quantifies:
//! same-machine cross-core rebalancing through the depot, and
//! cross-machine home-returns through the owning core's mailbox (a
//! frame allocated on the client, freed under the server's runtime,
//! posts back to its allocating core). The per-queue NIC load split
//! proves the skew was real.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::Arc;

use ebbrt_apps::memcached::{self, Store};
use ebbrt_apps::spawn_with;
use ebbrt_core::cpu::CoreId;
use ebbrt_core::iobuf::pool::SizeClass;
use ebbrt_core::iobuf::{stats, Chain, IoBuf, MutIoBuf};
use ebbrt_core::runtime::Runtime;
use ebbrt_net::netif::{local_netif, ConnHandler, NetIf, TcpConn};
use ebbrt_net::types::Ipv4Addr;
use ebbrt_sim::{CostProfile, LinkParams, SimMachine, SimWorld, Switch};

/// Pool counters are per machine (the pool is a runtime-owned Ebb);
/// the sweep's properties are world totals over server + client.
fn world_snapshot(world: &[Arc<Runtime>]) -> stats::Snapshot {
    stats::world_snapshot(world.iter().map(Arc::as_ref))
}

/// Sweep parameters.
#[derive(Clone)]
pub struct SweepConfig {
    /// Event cores per machine (server and client).
    pub cores: usize,
    /// TCP connections, round-robined over client cores.
    pub conns: usize,
    /// Small-class value size (served via the 2 KiB class).
    pub small_value: usize,
    /// Large-class value size (staged and served via the 64 KiB
    /// class; must exceed the small class's capacity).
    pub large_value: usize,
    /// Warmup cycles per connection (SET + GET large + GET small).
    pub warmup_cycles: u32,
    /// Measured requests per *warm* connection in each measured phase.
    pub warm_requests: u32,
    /// Skew factor: the hot connection issues this many times the
    /// warm quota.
    pub hot_multiplier: u32,
}

impl SweepConfig {
    /// The default shape for `cores` cores: 2 connections per core,
    /// 512 B / 20 KiB values, 8× skew on the hot connection.
    pub fn for_cores(cores: usize) -> SweepConfig {
        SweepConfig {
            cores,
            conns: 2 * cores,
            small_value: 512,
            large_value: 20 * 1024,
            warmup_cycles: 16,
            warm_requests: 32,
            hot_multiplier: 8,
        }
    }
}

/// Per-class measured-phase deltas.
#[derive(Clone, Copy, Debug)]
pub struct ClassReport {
    /// Pool hits during the phase.
    pub hits: u64,
    /// Pool-missed (fallback) allocations during the phase.
    pub fallback_allocs: u64,
    /// Regions pulled from the depot (cross-core migration, consumer
    /// side).
    pub depot_out: u64,
    /// Regions flushed to the depot (producer side).
    pub depot_in: u64,
}

impl ClassReport {
    fn from_delta(d: &stats::ClassCounters) -> ClassReport {
        ClassReport {
            hits: d.hits,
            fallback_allocs: d.fallback_allocs,
            depot_out: d.depot_out,
            depot_in: d.depot_in,
        }
    }
}

/// One measured phase's outcome.
#[derive(Clone, Copy, Debug)]
pub struct PhaseReport {
    /// Requests completed in the phase.
    pub requests: u64,
    /// Virtual nanoseconds the phase took.
    pub elapsed_ns: u64,
    /// Payload bytes copied.
    pub bytes_copied: u64,
    /// Fresh buffer-storage allocations.
    pub bufs_allocated: u64,
    /// Small-class activity.
    pub small: ClassReport,
    /// Large-class activity.
    pub large: ClassReport,
}

/// The whole sweep's outcome for one core count.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Cores per machine.
    pub cores: usize,
    /// Connections driven.
    pub conns: usize,
    /// Connections whose server-side RSS core differs from their
    /// client core (the flows that force cross-core buffer migration).
    pub cross_core_conns: usize,
    /// The measured SET-refresh phase.
    pub set_phase: PhaseReport,
    /// The measured steady-GET phase.
    pub get_phase: PhaseReport,
    /// Frames delivered per server NIC queue over the whole run
    /// (quantifies the RSS skew).
    pub server_queue_frames: Vec<u64>,
}

/// Phase indices. The per-phase dry runs are gone (see module docs):
/// prewarmed per-core cushions, the flux-adaptive watermark and the
/// cross-machine home-core mailboxes bring each phase to pool
/// fixpoint straight out of warmup.
const WARMUP: usize = 0;
const STEADY_GET: usize = 1;
const SET_REFRESH: usize = 2;
const DONE: usize = 3;
const NPHASES: usize = DONE;

struct Controller {
    phase: Cell<usize>,
    waiting: Cell<usize>,
    nconns: usize,
    /// Stats snapshot and virtual time at each phase boundary.
    marks: RefCell<Vec<(stats::Snapshot, u64)>>,
    /// Per-runtime snapshots at each mark (debug).
    rt_marks: RefCell<Vec<Vec<stats::Snapshot>>>,
    /// Requests completed per phase.
    completed: [Cell<u64>; NPHASES],
    client: Rc<SimMachine>,
    /// Server + client runtimes (per-machine counters).
    world: Vec<Arc<Runtime>>,
    conns: RefCell<Vec<Rc<SweepConn>>>,
}

impl Controller {
    fn mark(&self) {
        // Read virtual time through the machine handle: the first mark
        // happens from the driving thread, outside any event.
        let now = self.client.runtime().now_ns();
        self.marks
            .borrow_mut()
            .push((world_snapshot(&self.world), now));
        self.rt_marks.borrow_mut().push(
            self.world
                .iter()
                .map(|rt| stats::runtime_snapshot(rt))
                .collect(),
        );
    }

    /// Called by a connection that finished its quota for the current
    /// phase. When the last one arrives, the phase advances and every
    /// connection is kicked — on its own affinity core — to start the
    /// next one.
    fn phase_done(self: &Rc<Self>) {
        self.waiting.set(self.waiting.get() + 1);
        if self.waiting.get() < self.nconns {
            return;
        }
        self.waiting.set(0);
        self.mark();
        let next = self.phase.get() + 1;
        self.phase.set(next);
        if next >= DONE {
            return;
        }
        for sc in self.conns.borrow().iter() {
            let core = sc
                .conn
                .borrow()
                .as_ref()
                .and_then(TcpConn::core)
                .expect("live connection");
            let sc2 = Rc::clone(sc);
            spawn_with(&self.client, core, sc2, move |sc| sc.start_phase());
        }
    }
}

/// The closed-loop workload steps.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Step {
    SetLarge,
    GetLarge,
    GetSmall,
}

struct SweepConn {
    idx: usize,
    ctrl: Rc<Controller>,
    cfg: SweepConfig,
    /// Frozen GET request frames, cloned per send (no allocation).
    get_small: IoBuf,
    get_large: IoBuf,
    /// SET request template, staged into a pooled large buffer per
    /// send — the allocation the large class must absorb.
    set_template: Rc<Vec<u8>>,
    /// Remaining full cycles/requests in the current phase.
    quota: Cell<u32>,
    step: Cell<Step>,
    /// Bytes of the in-flight response still outstanding.
    expected: Cell<usize>,
    received: Cell<usize>,
    conn: RefCell<Option<TcpConn>>,
}

impl SweepConn {
    fn quota_for(&self, phase: usize) -> u32 {
        let skew = if self.idx == 0 {
            self.cfg.hot_multiplier
        } else {
            1
        };
        // Warmup has the same skewed shape as the measured phases, so
        // the per-core working set it grows covers the hot
        // connection's burst demand.
        match phase {
            WARMUP => self.cfg.warmup_cycles * skew,
            STEADY_GET | SET_REFRESH => self.cfg.warm_requests * skew,
            _ => 0,
        }
    }

    fn start_phase(&self) {
        let phase = self.ctrl.phase.get();
        self.quota.set(self.quota_for(phase));
        self.step.set(match phase {
            STEADY_GET => Step::GetLarge,
            _ => Step::SetLarge,
        });
        self.fire();
    }

    /// Sends the current step's request (closed loop: exactly one
    /// outstanding).
    fn fire(&self) {
        let conn = self.conn.borrow().as_ref().expect("connected").clone();
        match self.step.get() {
            Step::SetLarge => {
                // Stage the pre-encoded frame into a pooled buffer of
                // the large class — the per-request allocation that
                // previously fell back to a one-shot heap allocation.
                let t = &*self.set_template;
                let mut buf = MutIoBuf::with_capacity(t.len());
                buf.append_slice(t);
                debug_assert_eq!(buf.size_class(), Some(SizeClass::Large));
                self.expected.set(memcached::Header::SIZE);
                let _ = conn.send(Chain::single(buf.freeze()));
            }
            Step::GetLarge => {
                self.expected
                    .set(memcached::Header::SIZE + 4 + self.cfg.large_value);
                let _ = conn.send(Chain::single(self.get_large.clone()));
            }
            Step::GetSmall => {
                self.expected
                    .set(memcached::Header::SIZE + 4 + self.cfg.small_value);
                let _ = conn.send(Chain::single(self.get_small.clone()));
            }
        }
    }

    /// Advances the cycle after a full response; returns false when
    /// the phase quota is exhausted.
    fn advance(&self) -> bool {
        let phase = self.ctrl.phase.get();
        let (next, cycle_done) = match (phase, self.step.get()) {
            (WARMUP, Step::SetLarge) => (Step::GetLarge, false),
            (WARMUP, Step::GetLarge) => (Step::GetSmall, false),
            (WARMUP, Step::GetSmall) => (Step::SetLarge, true),
            (SET_REFRESH, _) => (Step::SetLarge, true),
            (STEADY_GET, Step::GetLarge) => (Step::GetSmall, false),
            (STEADY_GET, _) => (Step::GetLarge, true),
            _ => return false,
        };
        self.ctrl.completed[phase].set(self.ctrl.completed[phase].get() + 1);
        self.step.set(next);
        if cycle_done {
            let left = self.quota.get() - 1;
            self.quota.set(left);
            if left == 0 {
                return false;
            }
        }
        true
    }
}

impl ConnHandler for SweepConn {
    fn on_connected(&self, _conn: &TcpConn) {
        // The controller kicks every connection into the warmup phase
        // once all of them are registered; nothing to do yet.
    }

    fn on_receive(&self, _conn: &TcpConn, data: Chain<IoBuf>) {
        // Count response bytes without touching them (the client is
        // part of the zero-copy property too).
        let mut got = self.received.get() + data.len();
        while got >= self.expected.get() {
            got -= self.expected.get();
            if self.advance() {
                self.fire();
            } else {
                self.ctrl.phase_done();
                break;
            }
        }
        self.received.set(got);
    }
}

/// Runs the sweep for one configuration and returns the report. The
/// caller asserts on the report (benches) or prints it (repro
/// binaries).
pub fn run(cfg: &SweepConfig) -> SweepReport {
    assert!(cfg.conns >= 1 && cfg.cores >= 1);
    let w = SimWorld::new();
    let sw = Switch::new(&w);
    let server = SimMachine::create(
        &w,
        "server",
        cfg.cores,
        CostProfile::ebbrt_vm(),
        [0xAA, 0, 0, 0, 0, 1],
    );
    let client = SimMachine::create(
        &w,
        "client",
        cfg.cores,
        CostProfile::ebbrt_vm(),
        [0xBB, 0, 0, 0, 0, 1],
    );
    sw.attach(server.nic(), LinkParams::default());
    sw.attach(client.nic(), LinkParams::default());
    let mask = Ipv4Addr::new(255, 255, 255, 0);
    let server_ip = Ipv4Addr::new(10, 0, 0, 1);
    let _s_if = NetIf::attach(&server, server_ip, mask);
    let _c_if = NetIf::attach(&client, Ipv4Addr::new(10, 0, 0, 2), mask);
    w.run_to_idle();

    let store = Store::new(Arc::clone(server.runtime().rcu()));
    // The shared small-class key; each connection owns its large key
    // and keeps re-SETting it over the network.
    store.insert_raw(
        b"sweep-small".to_vec(),
        IoBuf::copy_from(&vec![0x5A; cfg.small_value]),
    );
    let store_ref = store.register(server.runtime());
    server.spawn_on(CoreId(0), move || memcached::serve(store_ref));
    // Pre-grow every core's small-class cushion: phase compositions
    // differ (a pure-GET phase wants many more per-segment header
    // buffers on the server than the mixed warmup), and explicitly
    // prewarming replaces the per-phase dry runs the sweep used to
    // need to reach each phase's pool fixpoint. The allocations are
    // real and counted — which is why they happen before the first
    // measurement mark.
    for machine in [&server, &client] {
        for c in 0..cfg.cores {
            machine.spawn_on(CoreId(c as u32), || {
                ebbrt_core::iobuf::pool::prewarm(64);
            });
        }
    }
    w.run_to_idle();

    let ctrl = Rc::new(Controller {
        phase: Cell::new(WARMUP),
        waiting: Cell::new(0),
        nconns: cfg.conns,
        marks: RefCell::new(Vec::new()),
        rt_marks: RefCell::new(Vec::new()),
        completed: Default::default(),
        client: Rc::clone(&client),
        world: vec![Arc::clone(server.runtime()), Arc::clone(client.runtime())],
        conns: RefCell::new(Vec::new()),
    });

    for i in 0..cfg.conns {
        let key = format!("sweep-large-{i:04}").into_bytes();
        let sc = Rc::new(SweepConn {
            idx: i,
            ctrl: Rc::clone(&ctrl),
            cfg: cfg.clone(),
            get_small: MutIoBuf::from_vec(memcached::encode_get(b"sweep-small", 1)).freeze(),
            get_large: MutIoBuf::from_vec(memcached::encode_get(&key, 2)).freeze(),
            set_template: Rc::new(memcached::encode_set(&key, &vec![0xA5; cfg.large_value], 3)),
            quota: Cell::new(0),
            step: Cell::new(Step::SetLarge),
            expected: Cell::new(usize::MAX),
            received: Cell::new(0),
            conn: RefCell::new(None),
        });
        ctrl.conns.borrow_mut().push(Rc::clone(&sc));
        let core = CoreId((i % cfg.cores) as u32);
        spawn_with(&client, core, sc, move |sc| {
            let conn = local_netif().connect(
                server_ip,
                memcached::MEMCACHED_PORT,
                Rc::clone(&sc) as Rc<dyn ConnHandler>,
            );
            *sc.conn.borrow_mut() = Some(conn);
        });
    }
    w.run_to_idle(); // all handshakes complete

    // How many flows actually cross cores (client core != the server
    // core RSS steers their requests to) — these are the flows whose
    // buffers migrate through the depot.
    let cross_core_conns = ctrl
        .conns
        .borrow()
        .iter()
        .map(|sc| {
            let tuple = sc
                .conn
                .borrow()
                .as_ref()
                .and_then(TcpConn::tuple)
                .expect("established");
            let server_q = ebbrt_sim::nic::rss_hash(
                tuple.local.0.to_u32(),
                tuple.remote.0.to_u32(),
                tuple.local.1,
                tuple.remote.1,
            ) as usize
                % cfg.cores;
            usize::from(server_q != sc.idx % cfg.cores)
        })
        .sum();

    // Kick off warmup on every connection, then run the phased
    // workload to completion (the controller's barrier advances the
    // phases).
    ctrl.mark();
    for sc in ctrl.conns.borrow().iter() {
        let core = CoreId((sc.idx % cfg.cores) as u32);
        let sc2 = Rc::clone(sc);
        spawn_with(&client, core, sc2, move |sc| sc.start_phase());
    }
    w.run_to_idle();
    assert_eq!(ctrl.phase.get(), DONE, "sweep did not complete");

    if std::env::var_os("SWEEP_DEBUG").is_some() {
        let rtm = ctrl.rt_marks.borrow();
        for phase in 0..rtm.len() - 1 {
            for (mi, name) in ["server", "client"].iter().enumerate() {
                let d = rtm[phase + 1][mi].since(&rtm[phase][mi]);
                eprintln!(
                    "phase {phase} {name}: allocs={} small fb={} large fb={}",
                    d.bufs_allocated, d.classes[0].fallback_allocs, d.classes[1].fallback_allocs
                );
            }
        }
    }
    let marks = ctrl.marks.borrow();
    let phase_report = |phase: usize| {
        let (ref before, t0) = marks[phase];
        let (ref after, t1) = marks[phase + 1];
        let d = after.since(before);
        PhaseReport {
            requests: ctrl.completed[phase].get(),
            elapsed_ns: t1 - t0,
            bytes_copied: d.bytes_copied,
            bufs_allocated: d.bufs_allocated,
            small: ClassReport::from_delta(d.class(SizeClass::Small)),
            large: ClassReport::from_delta(d.class(SizeClass::Large)),
        }
    };
    SweepReport {
        cores: cfg.cores,
        conns: cfg.conns,
        cross_core_conns,
        set_phase: phase_report(SET_REFRESH),
        get_phase: phase_report(STEADY_GET),
        server_queue_frames: (0..server.nic().nqueues())
            .map(|q| server.nic().rx_queue_stats(q).0)
            .collect(),
    }
}

/// Asserts the production-shaped zero-copy claim on a report — shared
/// by the criterion bench and the repro binary so CI enforces it in
/// both places.
pub fn assert_properties(r: &SweepReport) {
    // Steady-state GETs: the full property, covering both classes.
    assert_eq!(
        r.get_phase.bytes_copied, 0,
        "steady-state GETs must copy zero payload bytes"
    );
    assert_eq!(
        r.get_phase.bufs_allocated, 0,
        "steady-state GETs must allocate zero fresh buffers (both classes)"
    );
    assert_eq!(
        (
            r.get_phase.small.fallback_allocs,
            r.get_phase.large.fallback_allocs
        ),
        (0, 0),
        "no size class may miss its pool in steady state"
    );
    assert!(
        r.get_phase.small.hits > 0,
        "steady-state GETs must recycle small-class buffers"
    );
    // SET refresh: > 2 KiB SETs are served by the large class — no
    // one-shot-allocation fallback, no fresh regions at all.
    assert_eq!(
        r.set_phase.bufs_allocated, 0,
        "pool-hot SET staging must allocate zero fresh buffers"
    );
    assert_eq!(
        r.set_phase.large.fallback_allocs, 0,
        "> 2 KiB SETs must not take the one-shot-allocation fallback"
    );
    assert!(
        r.set_phase.large.hits > 0,
        "> 2 KiB SET staging must be served by the large class"
    );
    // The skew must be real: the hottest server queue saw more
    // traffic than the coolest.
    if r.cores > 1 {
        let hot = r.server_queue_frames.iter().max().unwrap();
        let cold = r.server_queue_frames.iter().min().unwrap();
        assert!(
            hot > cold,
            "the deliberately skewed workload must load queues unevenly"
        );
    }
    // Cross-core flows exist, so the per-core pools must have
    // rebalanced through the depot rather than growing fresh storage.
    if r.cross_core_conns > 0 {
        let migrated = r.set_phase.large.depot_out
            + r.set_phase.small.depot_out
            + r.get_phase.large.depot_out
            + r.get_phase.small.depot_out;
        assert!(
            migrated > 0,
            "cross-core flows must drive depot migration, not fresh allocation"
        );
    }
}

/// Formats one report as human-readable lines (used by repro_fig4).
pub fn format_report(r: &SweepReport) -> String {
    let gp = &r.get_phase;
    let sp = &r.set_phase;
    let get_us = gp.elapsed_ns as f64 / gp.requests.max(1) as f64 / 1000.0;
    format!(
        "cores={} conns={} (cross-core {})\n\
         \x20 SET refresh : {:>6} reqs  alloc={} large[hits={} fallback={} depot out/in={}/{}]\n\
         \x20 steady GETs : {:>6} reqs  {:.2} vus/req  copied={} alloc={} \
         small[hits={} depot out/in={}/{}] large[hits={} depot out/in={}/{}]\n\
         \x20 server queue frames: {:?}",
        r.cores,
        r.conns,
        r.cross_core_conns,
        sp.requests,
        sp.bufs_allocated,
        sp.large.hits,
        sp.large.fallback_allocs,
        sp.large.depot_out,
        sp.large.depot_in,
        gp.requests,
        get_us,
        gp.bytes_copied,
        gp.bufs_allocated,
        gp.small.hits,
        gp.small.depot_out,
        gp.small.depot_in,
        gp.large.hits,
        gp.large.depot_out,
        gp.large.depot_in,
        r.server_queue_frames,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_core_skewed_sweep_holds_zero_copy_property() {
        let r = run(&SweepConfig::for_cores(4));
        println!("{}", format_report(&r));
        assert!(r.cross_core_conns > 0, "RSS must split flows across cores");
        assert_properties(&r);
    }
}
