//! The multi-machine sharded memcached workload — the proof of the
//! distributed-Ebb (remote-representative) layer.
//!
//! [`build`] assembles a cluster: one naming machine running the
//! GlobalIdMap server, N shard machines each owning one key shard
//! behind a distributed [`StoreShardEbb`](memcached::StoreShardEbb)
//! (global id allocated from
//! and published to the naming service), and one client machine. Every
//! shard machine serves the full keyspace: its own shard on the
//! existing zero-copy path, everything else by function-shipping to
//! the owner through the shard Ebb's proxy rep.
//!
//! [`run`] drives a closed-loop client against shard 0's server and
//! measures, in virtual time, the **local-hit vs remote-ship** GET
//! latency split, while asserting the local phase stays zero-copy /
//! zero-allocation on the serving machine. Optionally the routing
//! table carries a *phantom* shard whose published owner address
//! answers nothing — requests for it must come back as
//! [`ebbrt_apps::memcached::STATUS_REMOTE_ERROR`], never hang.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use ebbrt_apps::memcached::{
    self, register_shard, serve_sharded, shard_of, ClusterView, Header, ServerConfig, ShardConfig,
    ShardRoot, Store, ViewState, MEMCACHED_PORT, STATUS_OK, STATUS_REMOTE_ERROR,
};
use ebbrt_apps::spawn_with;
use ebbrt_core::cpu::CoreId;
use ebbrt_core::ebb::{EbbId, EbbRef, HashRing};
use ebbrt_core::iobuf::{stats, Chain, IoBuf};
use ebbrt_core::qos::{ClassConfig, QosConfig};
use ebbrt_core::runtime::Runtime;
use ebbrt_hosted::global_map::{self, GlobalIdMap, GlobalIdMapServer};
use ebbrt_hosted::messenger::Messenger;
use ebbrt_hosted::remote::MessengerTransport;
use ebbrt_net::netif::{local_netif, ConnHandler, NetIf, TcpConn};
use ebbrt_net::types::Ipv4Addr;
use ebbrt_sim::{CostProfile, LinkParams, SimMachine, SimWorld, Switch};

/// A built sharded-memcached cluster, pre-wired and idle.
pub struct DistCluster {
    /// The world driving everything.
    pub w: Rc<SimWorld>,
    /// The switch all machines hang off (chaos harnesses isolate and
    /// restore shard ports through it).
    pub sw: Rc<Switch>,
    /// The naming machine (GlobalIdMap server).
    pub naming: Rc<SimMachine>,
    /// The shard machines, in shard order.
    pub shards: Vec<Rc<SimMachine>>,
    /// Each shard machine's switch port (same order).
    pub shard_ports: Vec<usize>,
    /// Each shard's store (same order).
    pub stores: Vec<Arc<Store>>,
    /// Each shard's range root (same order; unreplicated).
    pub roots: Vec<Arc<ShardRoot>>,
    /// The routing table (includes the phantom entry when requested).
    pub shard_ids: Vec<EbbId>,
    /// The client machine.
    pub client: Rc<SimMachine>,
    /// Each shard machine's messenger, in shard order.
    pub messengers: Vec<Rc<Messenger>>,
    /// Each shard machine's remote transport, in shard order (exposes
    /// retry/promotion counters and retry-policy knobs).
    pub transports: Vec<Rc<MessengerTransport>>,
}

/// IP of shard `i`.
pub fn shard_ip(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 1, 10 + i as u8)
}

const NAMING_IP: Ipv4Addr = Ipv4Addr([10, 0, 1, 1]);
const CLIENT_IP: Ipv4Addr = Ipv4Addr([10, 0, 1, 100]);
/// Published owner of the phantom shard: no machine lives there.
const PHANTOM_IP: Ipv4Addr = Ipv4Addr([10, 0, 1, 250]);

/// Machinery shared by [`build`] and [`build_replicated`]: the world,
/// switch, naming service, `nshards` shard machines (each with a
/// messenger, naming client, remote transport, and store) and the
/// client machine.
struct ClusterBase {
    w: Rc<SimWorld>,
    sw: Rc<Switch>,
    naming: Rc<SimMachine>,
    shards: Vec<Rc<SimMachine>>,
    shard_ports: Vec<usize>,
    stores: Vec<Arc<Store>>,
    client: Rc<SimMachine>,
    messengers: Vec<Rc<Messenger>>,
    transports: Vec<Rc<MessengerTransport>>,
    maps: Vec<Rc<GlobalIdMap>>,
    map_server: Rc<GlobalIdMapServer>,
}

fn build_base(nshards: usize, shard_cores: usize) -> ClusterBase {
    assert!(nshards >= 2, "sharding needs at least two owners");
    assert!(shard_cores >= 1);
    let w = SimWorld::new();
    let sw = Switch::new(&w);
    let mask = Ipv4Addr::new(255, 255, 255, 0);
    let naming = SimMachine::create(&w, "naming", 1, CostProfile::linux_vm(), [0x10; 6]);
    sw.attach(naming.nic(), LinkParams::default());
    let naming_if = NetIf::attach(&naming, NAMING_IP, mask);
    let mut shards = Vec::new();
    let mut shard_ports = Vec::new();
    let mut shard_ifs = Vec::new();
    for i in 0..nshards {
        let mut mac = [0x20; 6];
        mac[5] = i as u8;
        let m = SimMachine::create(
            &w,
            format!("shard{i}"),
            shard_cores,
            CostProfile::ebbrt_vm(),
            mac,
        );
        shard_ports.push(sw.attach(m.nic(), LinkParams::default()));
        let ifc = NetIf::attach(&m, shard_ip(i), mask);
        // Every serving machine runs the per-class tx scheduler: data
        // traffic rides the default class; the "control" class (a
        // guaranteed slice + the dominant share) protects the
        // messenger — naming lookups, function-shipped calls,
        // replication fan-out — from data-plane queueing. The
        // messenger adds its own port rules at start, finding this
        // policy installed. The class counters also give chaos
        // harnesses the served/shed ledger they balance at quiesce.
        ifc.install_qos(
            QosConfig::new(10_000_000_000).class(
                ClassConfig::new("control")
                    .rt_bps(1_000_000_000)
                    .ls_weight(4),
            ),
        );
        shard_ifs.push(ifc);
        shards.push(m);
    }
    let client = SimMachine::create(&w, "client", 1, CostProfile::ebbrt_vm(), [0x30; 6]);
    sw.attach(client.nic(), LinkParams::default());
    let _client_if = NetIf::attach(&client, CLIENT_IP, mask);
    w.run_to_idle();

    let naming_msgr = Messenger::start(&naming_if);
    let map_server = GlobalIdMapServer::start(&naming_msgr);
    let mut messengers = Vec::new();
    let mut transports = Vec::new();
    let mut stores = Vec::new();
    // Each shard machine: messenger + naming client + remote transport
    // (so it can host proxy reps of the other shards) + its store.
    let maps: Vec<Rc<GlobalIdMap>> = shard_ifs
        .iter()
        .map(|ifc| {
            let msgr = Messenger::start(ifc);
            let map = GlobalIdMap::new(&msgr, NAMING_IP);
            transports.push(MessengerTransport::install(&msgr, Rc::clone(&map)));
            messengers.push(msgr);
            map
        })
        .collect();
    for m in &shards {
        stores.push(Store::new(Arc::clone(m.runtime().rcu())));
    }
    ClusterBase {
        w,
        sw,
        naming,
        shards,
        shard_ports,
        stores,
        client,
        messengers,
        transports,
        maps,
        map_server,
    }
}

/// Builds an N-shard cluster. With `phantom`, the routing table gets
/// one extra shard whose owner record points at an address where
/// nothing answers — the remote-failure probe.
pub fn build(nshards: usize, phantom: bool) -> DistCluster {
    build_with_cores(nshards, phantom, 1)
}

/// As [`build`], with `shard_cores` event cores per shard machine —
/// cross-shard completions then exercise the hop back to the memcached
/// connection's RSS core.
pub fn build_with_cores(nshards: usize, phantom: bool, shard_cores: usize) -> DistCluster {
    let base = build_base(nshards, shard_cores);
    let ClusterBase {
        w,
        sw,
        naming,
        shards,
        shard_ports,
        stores,
        client,
        messengers,
        transports,
        maps,
        map_server: _,
    } = base;

    // Allocate the shard ids from the naming service (shard i asks
    // through its own map client), then register + publish ownership.
    let ids: Rc<RefCell<Vec<Option<EbbId>>>> = Rc::new(RefCell::new(vec![None; nshards]));
    for (i, m) in shards.iter().enumerate() {
        let map = Rc::clone(&maps[i]);
        let ids2 = Rc::clone(&ids);
        spawn_with(m, CoreId(0), map, move |map| {
            map.allocate(move |id| ids2.borrow_mut()[i] = Some(id));
        });
    }
    w.run_to_idle();
    let mut shard_ids: Vec<EbbId> = ids
        .borrow()
        .iter()
        .map(|id| id.expect("id allocation completed"))
        .collect();
    let roots: Vec<Arc<ShardRoot>> = stores
        .iter()
        .map(|s| ShardRoot::new(Arc::clone(s)))
        .collect();
    for (i, m) in shards.iter().enumerate() {
        let id = shard_ids[i];
        register_shard(&roots[i], m.runtime(), id);
        let msgr = Rc::clone(&messengers[i]);
        let map = Rc::clone(&maps[i]);
        let ip = shard_ip(i);
        spawn_with(m, CoreId(0), (msgr, map), move |(msgr, map)| {
            ebbrt_hosted::remote::publish::<memcached::StoreShardEbb>(
                &msgr,
                &map,
                EbbRef::from_id(id),
                ip,
                |ok| assert!(ok, "owner record published"),
            );
        });
    }
    if phantom {
        // One more routing slot, owned (per the naming service) by an
        // address where nothing answers.
        let phantom_id = EbbId((1 << 20) + 900_000);
        let map = Rc::clone(&maps[0]);
        spawn_with(&shards[0], CoreId(0), map, move |map| {
            map.put(phantom_id, &global_map::encode_owner(PHANTOM_IP), |ok| {
                assert!(ok)
            });
        });
        shard_ids.push(phantom_id);
    }
    w.run_to_idle();

    // Start the sharded servers.
    for (i, m) in shards.iter().enumerate() {
        let cfg = ShardConfig::unreplicated(
            Arc::new(shard_ids.clone()),
            i,
            Arc::clone(&roots[i]),
            ServerConfig::default(),
        );
        let store = Arc::clone(&stores[i]);
        spawn_with(m, CoreId(0), (cfg, store), |(cfg, store)| {
            serve_sharded(cfg, store)
        });
    }
    w.run_to_idle();

    DistCluster {
        w,
        sw,
        naming,
        shards,
        shard_ports,
        stores,
        roots,
        shard_ids,
        client,
        messengers,
        transports,
    }
}

// --- Replicated cluster (R > 1) ------------------------------------------

/// A built replicated sharded-memcached cluster, pre-wired and idle.
pub struct ReplCluster {
    /// The world driving everything.
    pub w: Rc<SimWorld>,
    /// The switch (chaos harnesses isolate/restore shard ports on it).
    pub sw: Rc<Switch>,
    /// The naming machine.
    pub naming: Rc<SimMachine>,
    /// The GlobalIdMap server itself (chaos harnesses read ownership
    /// records straight off it to assert lease convergence).
    pub naming_server: Rc<GlobalIdMapServer>,
    /// The shard machines; machine `i` is range `i`'s initial primary.
    /// May be longer than the range count: trailing machines are
    /// spares, wired and serving but holding no range until
    /// [`add_shard`] rebalances onto them.
    pub shards: Vec<Rc<SimMachine>>,
    /// Each shard machine's switch port (same order).
    pub shard_ports: Vec<usize>,
    /// Each machine's store (shared by every range it hosts).
    pub stores: Vec<Arc<Store>>,
    /// Per machine: range index → the machine's replica root.
    pub roots: Vec<HashMap<usize, Arc<ShardRoot>>>,
    /// Public range ids, in range order (the routing table).
    pub range_ids: Vec<EbbId>,
    /// The key→range placement every machine shares ([`add_shard`]
    /// replaces it with the grown generation).
    pub ring: Arc<HashRing>,
    /// Replicas per range.
    pub replicas: usize,
    /// Each machine's live placement view (shared with its server;
    /// [`add_shard`] installs the grown generation here).
    pub views: Vec<Arc<ClusterView>>,
    /// Each machine's naming client, in machine order.
    pub maps: Vec<Rc<GlobalIdMap>>,
    /// The client machine.
    pub client: Rc<SimMachine>,
    /// Each shard machine's messenger, in shard order.
    pub messengers: Vec<Rc<Messenger>>,
    /// Each shard machine's remote transport, in shard order.
    pub transports: Vec<Rc<MessengerTransport>>,
    /// Dual-apply rules an in-flight [`add_shard`] has shipped over the
    /// wire, kept harness-side until cutover clears them. A machine
    /// restored *mid-transfer* missed its control frames (they timed
    /// out against its dead port); [`resync_machine`] replays its
    /// entries here so the restored holder forwards migrating-key
    /// writes like every live peer.
    pub pending_rules: Rc<RefCell<Vec<PendingRule>>>,
}

/// One dual-apply install from an in-flight [`add_shard`], addressed
/// to a specific (machine, range) holder. See
/// [`ReplCluster::pending_rules`].
pub enum PendingRule {
    /// The holder fans writes out to a gaining member of its range.
    Peer {
        machine: usize,
        range: usize,
        ep: EbbId,
    },
    /// The holder dual-applies writes whose key moves to `to_range`
    /// under `ring` to that range's members.
    Forward {
        machine: usize,
        range: usize,
        ring: Arc<HashRing>,
        to_range: u32,
        eps: Vec<EbbId>,
    },
}

/// Base of the fixed id block the replicated cluster uses (away from
/// both the well-known range and the naming service's allocator).
const REPL_ID_BASE: u32 = (1 << 20) + 700_000;

/// The public id of range `r`.
pub fn range_id(r: usize) -> EbbId {
    EbbId(REPL_ID_BASE + r as u32)
}

/// The private endpoint id of machine `m`'s replica of range `r` —
/// what an acting primary addresses fan-out copies to (the public id
/// would resolve to whoever *fronts* the range, not to `m`).
pub fn endpoint_id(r: usize, m: usize) -> EbbId {
    EbbId(REPL_ID_BASE + 1024 + (r as u32) * 256 + m as u32)
}

/// Builds an N-machine cluster whose key ranges are `replicas`-way
/// replicated per the [`HashRing`]: machine `i` is range `i`'s initial
/// primary, and hosts a replica of every range whose successor set
/// includes it. Each hosted range is registered under both its public
/// range id (exported everywhere, ownership record primary-first) and
/// the machine's private endpoint id (published as a plain
/// single-owner record).
pub fn build_replicated(nshards: usize, replicas: usize, shard_cores: usize) -> ReplCluster {
    build_replicated_with_spares(nshards, replicas, shard_cores, 0)
}

/// As [`build_replicated`], plus `spares` extra machines that hold no
/// range yet: fully wired (messenger, naming client, transport, store,
/// serving view) so [`add_shard`] can grow the ring onto them while
/// traffic flows.
pub fn build_replicated_with_spares(
    nshards: usize,
    replicas: usize,
    shard_cores: usize,
    spares: usize,
) -> ReplCluster {
    assert!(
        (1..=nshards).contains(&replicas),
        "replication factor must fit the machine count"
    );
    let nmachines = nshards + spares;
    let base = build_base(nmachines, shard_cores);
    let ring = Arc::new(HashRing::new(nshards as u32, 16));

    // Replica sets: members[r][0] == r (the initial primary), then the
    // next replicas-1 distinct ranges clockwise.
    let members: Vec<Vec<usize>> = (0..nshards)
        .map(|r| {
            ring.successors(r as u32, replicas)
                .into_iter()
                .map(|x| x as usize)
                .collect()
        })
        .collect();

    let mut roots: Vec<HashMap<usize, Arc<ShardRoot>>> = vec![HashMap::new(); nmachines];
    for (r, set) in members.iter().enumerate() {
        for &m in set {
            let peer_eps: Vec<EbbId> = set
                .iter()
                .filter(|&&p| p != m)
                .map(|&p| endpoint_id(r, p))
                .collect();
            let root = ShardRoot::with_peers(Arc::clone(&base.stores[m]), peer_eps);
            register_shard(&root, base.shards[m].runtime(), range_id(r));
            register_shard(&root, base.shards[m].runtime(), endpoint_id(r, m));
            roots[m].insert(r, root);
        }
    }

    // Publish: every replica exports the range id and publishes its
    // endpoint id; the primary also publishes the range's ownership
    // record (the ordered replica list, primary first).
    for (r, set) in members.iter().enumerate() {
        let owner_ips: Vec<Ipv4Addr> = set.iter().map(|&m| shard_ip(m)).collect();
        for (slot, &m) in set.iter().enumerate() {
            let msgr = Rc::clone(&base.messengers[m]);
            let map = Rc::clone(&base.maps[m]);
            let owner_ips = owner_ips.clone();
            let ip = shard_ip(m);
            spawn_with(
                &base.shards[m],
                CoreId(0),
                (msgr, map),
                move |(msgr, map)| {
                    if slot == 0 {
                        ebbrt_hosted::remote::publish_replicated::<memcached::StoreShardEbb>(
                            &msgr,
                            &map,
                            EbbRef::from_id(range_id(r)),
                            &owner_ips,
                            |ok| assert!(ok, "range record published"),
                        );
                    } else {
                        ebbrt_hosted::remote::export::<memcached::StoreShardEbb>(
                            &msgr,
                            EbbRef::from_id(range_id(r)),
                        );
                    }
                    ebbrt_hosted::remote::publish::<memcached::StoreShardEbb>(
                        &msgr,
                        &map,
                        EbbRef::from_id(endpoint_id(r, m)),
                        ip,
                        |ok| assert!(ok, "endpoint record published"),
                    );
                },
            );
        }
    }
    base.w.run_to_idle();

    let range_ids: Vec<EbbId> = (0..nshards).map(range_id).collect();
    let mut views = Vec::new();
    for (m, machine) in base.shards.iter().enumerate() {
        let view = ClusterView::new(ViewState {
            shard_ids: Arc::new(range_ids.clone()),
            ring: Some(Arc::clone(&ring)),
            locals: Arc::new(roots[m].clone()),
        });
        views.push(Arc::clone(&view));
        let cfg = ShardConfig {
            view,
            my_shard: m,
            server: ServerConfig::default(),
        };
        let store = Arc::clone(&base.stores[m]);
        spawn_with(machine, CoreId(0), (cfg, store), |(cfg, store)| {
            serve_sharded(cfg, store)
        });
    }
    base.w.run_to_idle();

    ReplCluster {
        w: base.w,
        sw: base.sw,
        naming: base.naming,
        naming_server: base.map_server,
        shards: base.shards,
        shard_ports: base.shard_ports,
        stores: base.stores,
        roots,
        range_ids,
        ring,
        replicas,
        views,
        maps: base.maps,
        client: base.client,
        messengers: base.messengers,
        transports: base.transports,
        pending_rules: Rc::new(RefCell::new(Vec::new())),
    }
}

// --- Re-sync and live rebalancing orchestration ---------------------------

/// A completion latch shared by fan-out phases: `next` fires exactly
/// once, when all `n` expected callbacks have arrived (immediately for
/// `n == 0`).
fn barrier(n: usize, next: impl FnOnce() + 'static) -> Rc<dyn Fn()> {
    let next = RefCell::new(Some(Box::new(next) as Box<dyn FnOnce()>));
    if n == 0 {
        if let Some(f) = next.borrow_mut().take() {
            f();
        }
    }
    let remaining = Cell::new(n);
    Rc::new(move || {
        remaining.set(remaining.get().saturating_sub(1));
        if remaining.get() == 0 {
            if let Some(f) = next.borrow_mut().take() {
                f();
            }
        }
    })
}

/// Runs transfer legs sequentially on `machine` (each leg one
/// [`memcached::resync_range`] run), then `after`. A multi-source
/// transfer — a new range whose keys migrate in from *every* old
/// range — is a chain of legs on one root; only the last leg carries
/// `flip: true`.
fn run_transfer_legs(
    machine: Rc<SimMachine>,
    mut legs: std::vec::IntoIter<memcached::ResyncOpts>,
    after: Box<dyn FnOnce()>,
) {
    match legs.next() {
        None => after(),
        Some(opts) => {
            let m2 = Rc::clone(&machine);
            spawn_with(&machine, CoreId(0), opts, move |opts| {
                memcached::resync_range(opts, move |_out| run_transfer_legs(m2, legs, after));
            });
        }
    }
}

/// Kicks restart re-sync for every range machine `m` hosts, marking
/// each root catching-up *immediately* (no stale-serving window
/// between the network restore and the first re-sync event). Each
/// range then runs the engine on the machine — STATUS election, pull
/// catch-up, REJOIN (peers clear the presumed-dead mark and restore
/// fan-out), exactness close, serving flip — and, where `m` is the
/// range's ring primary, un-promotes the ownership record back to
/// ring order (lease-epoch CAS). Returns a latch that flips true when
/// every hosted range has finished.
pub fn resync_machine(c: &ReplCluster, m: usize) -> Rc<Cell<bool>> {
    let finished = Rc::new(Cell::new(false));
    let mut ranges: Vec<usize> = c.roots[m].keys().copied().collect();
    ranges.sort_unstable();
    if ranges.is_empty() {
        finished.set(true);
        return finished;
    }
    // Replay any dual-apply rules an in-flight rebalance shipped while
    // this machine was dead (the frames timed out against its port).
    for rule in c.pending_rules.borrow().iter() {
        match rule {
            PendingRule::Peer { machine, range, ep } if *machine == m => {
                if let Some(root) = c.roots[m].get(range) {
                    root.add_peer(*ep);
                }
            }
            PendingRule::Forward {
                machine,
                range,
                ring,
                to_range,
                eps,
            } if *machine == m => {
                if let Some(root) = c.roots[m].get(range) {
                    root.set_forward_rule(Arc::clone(ring), *to_range, eps.clone());
                }
            }
            _ => {}
        }
    }
    // Republish this machine's endpoint records (idempotent): a range
    // gained by a rebalance while the machine was isolated never got
    // its endpoint record onto the naming service, and peers can't
    // fan out to an unresolvable endpoint.
    {
        let msgr = Rc::clone(&c.messengers[m]);
        let map = Rc::clone(&c.maps[m]);
        let ip = shard_ip(m);
        let ranges = ranges.clone();
        spawn_with(&c.shards[m], CoreId(0), (msgr, map), move |(msgr, map)| {
            for r in ranges {
                ebbrt_hosted::remote::export::<memcached::StoreShardEbb>(
                    &msgr,
                    EbbRef::from_id(range_id(r)),
                );
                ebbrt_hosted::remote::publish::<memcached::StoreShardEbb>(
                    &msgr,
                    &map,
                    EbbRef::from_id(endpoint_id(r, m)),
                    ip,
                    |_ok| {},
                );
            }
        });
    }
    let fin = Rc::clone(&finished);
    let all_done = barrier(ranges.len(), move || fin.set(true));
    for r in ranges {
        let root = Arc::clone(&c.roots[m][&r]);
        root.begin_catch_up(None);
        let members: Vec<usize> = c
            .ring
            .successors(r as u32, c.replicas)
            .into_iter()
            .map(|x| x as usize)
            .collect();
        let opts = memcached::ResyncOpts {
            root,
            self_ep: endpoint_id(r, m),
            sources: members
                .iter()
                .filter(|&&p| p != m)
                .map(|&p| endpoint_id(r, p))
                .collect(),
            nranges: c.ring.nranges(),
            vnodes: c.ring.vnodes(),
            range: r as u32,
            rejoin: true,
            flip: true,
        };
        let is_primary = members[0] == m;
        let owner_ips: Vec<Ipv4Addr> = members.iter().map(|&p| shard_ip(p)).collect();
        let map = Rc::clone(&c.maps[m]);
        let done = Rc::clone(&all_done);
        spawn_with(&c.shards[m], CoreId(0), (map, opts), move |(map, opts)| {
            memcached::resync_range(opts, move |_out| {
                if is_primary {
                    // Ownership converges back to placement: CAS the
                    // record (epoch-bumped) back to ring order. Losing
                    // to a concurrent promotion is clean — the next
                    // quiet re-sync retries.
                    ebbrt_hosted::remote::unpromote(&map, range_id(r), owner_ips, move |_won| {
                        done()
                    });
                } else {
                    done();
                }
            });
        });
    }
    finished
}

/// Grows the ring onto the next spare machine while traffic flows:
/// minimal-movement range transfers (only keys whose `range_of` moves
/// to the new range migrate, plus whatever replica-set shifts the new
/// successor walk causes), executed with the re-sync transfer
/// machinery. Ordering is the correctness story:
///
/// 1. every gaining replica root is created catching-up and its
///    endpoint published;
/// 2. dual-apply installs *first* — old holders ADD_PEER gaining
///    members of their own range and SET_FORWARD writes of migrating
///    keys to the new range's members, acks waiting for those
///    fan-outs — so no write acknowledged after this point can be
///    lost to the transfer race;
/// 3. snapshot+delta transfers pull the existing keys (new range
///    first on its primary, one leg per old range; then the new
///    range's secondaries from that primary; gains of old ranges pull
///    from their range peers in parallel);
/// 4. cutover: gained roots flip serving, changed ownership records
///    re-publish primary-first (lease bump), every machine installs
///    the grown view (epoch-guarded), and only then CLEAR_FORWARD
///    drops the dual-apply rules.
///
/// The cluster bookkeeping (`ring`, `range_ids`, `roots`) updates to
/// the final shape synchronously; the returned latch flips true when
/// the live cluster has cut over.
pub fn add_shard(c: &mut ReplCluster) -> Rc<Cell<bool>> {
    let finished = Rc::new(Cell::new(false));
    let old_ring = Arc::clone(&c.ring);
    let new_ring = Arc::new(old_ring.grown());
    let nold = old_ring.nranges() as usize;
    let new_range = nold;
    assert!(
        new_range < c.shards.len(),
        "add_shard needs a spare machine (build_replicated_with_spares)"
    );
    let replicas = c.replicas;
    let member_sets = |ring: &HashRing| -> Vec<Vec<usize>> {
        (0..ring.nranges() as usize)
            .map(|r| {
                ring.successors(r as u32, replicas)
                    .into_iter()
                    .map(|x| x as usize)
                    .collect()
            })
            .collect()
    };
    let old_members = member_sets(&old_ring);
    let new_members = member_sets(&new_ring);

    // Create + register every gaining replica root, catching-up from
    // birth; update the harness bookkeeping to the final membership
    // (live views cut over only at the end — a loser keeps serving
    // and receiving fan-out until then, so it never goes stale early).
    let mut gains: Vec<(usize, usize)> = Vec::new();
    for (r, set) in new_members.iter().enumerate() {
        for &m in set {
            if !c.roots[m].contains_key(&r) {
                let peer_eps: Vec<EbbId> = set
                    .iter()
                    .filter(|&&p| p != m)
                    .map(|&p| endpoint_id(r, p))
                    .collect();
                let root = ShardRoot::with_peers(Arc::clone(&c.stores[m]), peer_eps);
                root.begin_catch_up(None);
                register_shard(&root, c.shards[m].runtime(), range_id(r));
                register_shard(&root, c.shards[m].runtime(), endpoint_id(r, m));
                c.roots[m].insert(r, root);
                gains.push((r, m));
            }
        }
    }
    for (r, set) in old_members.iter().enumerate() {
        for &m in set {
            if !new_members[r].contains(&m) {
                c.roots[m].remove(&r);
            }
        }
    }
    c.ring = Arc::clone(&new_ring);
    c.range_ids.push(range_id(new_range));

    // Everything the async chain needs, owned.
    let shards: Vec<Rc<SimMachine>> = c.shards.clone();
    let views: Vec<Arc<ClusterView>> = c.views.clone();
    let maps: Vec<Rc<GlobalIdMap>> = c.maps.clone();
    let final_locals: Vec<Arc<HashMap<usize, Arc<ShardRoot>>>> =
        c.roots.iter().map(|m| Arc::new(m.clone())).collect();
    let new_range_ids: Arc<Vec<EbbId>> = Arc::new(c.range_ids.clone());
    let gained_roots: HashMap<(usize, usize), Arc<ShardRoot>> = gains
        .iter()
        .map(|&(r, m)| ((r, m), Arc::clone(&c.roots[m][&r])))
        .collect();

    // Records to re-publish at cutover: the new range, plus any old
    // range whose replica set shifted.
    let record_updates: Vec<(usize, usize, Vec<Ipv4Addr>)> = new_members
        .iter()
        .enumerate()
        .filter(|&(r, set)| r == new_range || old_members[r] != *set)
        .map(|(r, set)| (r, set[0], set.iter().map(|&m| shard_ip(m)).collect()))
        .collect();

    // Dual-apply control frames, addressed to every old holder (any
    // of them may be acting primary under chaos).
    let fwd_eps: Vec<EbbId> = new_members[new_range]
        .iter()
        .map(|&m| endpoint_id(new_range, m))
        .collect();
    let mut control: Vec<(EbbId, Vec<u8>)> = Vec::new();
    let mut clear_targets: Vec<EbbId> = Vec::new();
    {
        let mut pending = c.pending_rules.borrow_mut();
        for (r, members) in old_members.iter().enumerate().take(nold) {
            for &m in members {
                let ep = endpoint_id(r, m);
                control.push((
                    ep,
                    memcached::encode_set_forward(&new_ring, new_range as u32, &fwd_eps),
                ));
                clear_targets.push(ep);
                pending.push(PendingRule::Forward {
                    machine: m,
                    range: r,
                    ring: Arc::clone(&new_ring),
                    to_range: new_range as u32,
                    eps: fwd_eps.clone(),
                });
                for &(gr, gm) in &gains {
                    if gr == r {
                        control.push((ep, memcached::encode_add_peer(endpoint_id(r, gm))));
                        pending.push(PendingRule::Peer {
                            machine: m,
                            range: r,
                            ep: endpoint_id(r, gm),
                        });
                    }
                }
            }
        }
    }

    // Transfer legs. The new range's primary pulls one leg per old
    // range (its keys migrate in from all of them); its secondaries
    // then pull a single leg from that freshly serving primary; an
    // old-range gain pulls one leg from its range's old holders.
    let leg = |root: &Arc<ShardRoot>, m: usize, r: usize, sources: Vec<EbbId>, flip: bool| {
        memcached::ResyncOpts {
            root: Arc::clone(root),
            self_ep: endpoint_id(r, m),
            sources,
            nranges: new_ring.nranges(),
            vnodes: new_ring.vnodes(),
            range: r as u32,
            rejoin: false,
            flip,
        }
    };
    let primary_machine = new_members[new_range][0];
    let primary_root = &gained_roots[&(new_range, primary_machine)];
    let primary_legs: Vec<memcached::ResyncOpts> = (0..nold)
        .map(|src_range| {
            let sources = old_members[src_range]
                .iter()
                .map(|&p| endpoint_id(src_range, p))
                .collect();
            leg(
                primary_root,
                primary_machine,
                new_range,
                sources,
                src_range == nold - 1,
            )
        })
        .collect();
    let secondary_legs: Vec<(usize, memcached::ResyncOpts)> = new_members[new_range]
        .iter()
        .filter(|&&m| m != primary_machine)
        .map(|&m| {
            let sources = vec![endpoint_id(new_range, primary_machine)];
            (
                m,
                leg(&gained_roots[&(new_range, m)], m, new_range, sources, true),
            )
        })
        .collect();
    let old_gain_legs: Vec<(usize, memcached::ResyncOpts)> = gains
        .iter()
        .filter(|&&(r, _)| r != new_range)
        .map(|&(r, m)| {
            let sources = old_members[r].iter().map(|&p| endpoint_id(r, p)).collect();
            (m, leg(&gained_roots[&(r, m)], m, r, sources, true))
        })
        .collect();

    // --- The async chain, phase by phase. ---
    let orch = Rc::clone(&shards[new_range]);
    let fin = Rc::clone(&finished);

    // Phase 4b: CLEAR_FORWARD, then done.
    let phase_clear = {
        let orch = Rc::clone(&orch);
        let clear_targets = clear_targets.clone();
        let pending_rules = Rc::clone(&c.pending_rules);
        move || {
            pending_rules.borrow_mut().clear();
            let done = barrier(clear_targets.len(), move || fin.set(true));
            spawn_with(&orch, CoreId(0), (), move |()| {
                for ep in clear_targets {
                    let done = Rc::clone(&done);
                    memcached::shipper_for(ep)
                        .call(memcached::encode_clear_forward(), move |_r| done());
                }
            });
        }
    };

    // Phase 4a: re-publish changed records primary-first (lease
    // bump), install the grown view everywhere, then clear forwards.
    // The puts all ship from the orchestrator machine — a record's
    // "primary-first" property is its *content* ordering, and the
    // named primary may be isolated under chaos (its own put could
    // never land).
    let phase_cutover = {
        let orch = Rc::clone(&orch);
        let orch_map = Rc::clone(&maps[new_range]);
        move || {
            let install = {
                let views = views.clone();
                let final_locals = final_locals.clone();
                let new_ring = Arc::clone(&new_ring);
                let new_range_ids = Arc::clone(&new_range_ids);
                move || {
                    for (m, view) in views.iter().enumerate() {
                        let installed = view.install(ViewState {
                            shard_ids: Arc::clone(&new_range_ids),
                            ring: Some(Arc::clone(&new_ring)),
                            locals: Arc::clone(&final_locals[m]),
                        });
                        assert!(installed, "a grown view must be a newer generation");
                    }
                    phase_clear();
                }
            };
            let records_done = barrier(record_updates.len(), install);
            spawn_with(&orch, CoreId(0), orch_map, move |map| {
                for (r, _pm, ips) in record_updates {
                    let done = Rc::clone(&records_done);
                    map.put(range_id(r), &global_map::encode_owners(&ips), move |ok| {
                        assert!(ok, "cutover record re-publish must land");
                        done();
                    });
                }
            });
        }
    };

    // Phase 3b: the new range's secondaries pull from its primary.
    let phase_secondaries = {
        let shards = shards.clone();
        move || {
            let done = barrier(secondary_legs.len(), phase_cutover);
            for (m, opts) in secondary_legs {
                let done = Rc::clone(&done);
                run_transfer_legs(
                    Rc::clone(&shards[m]),
                    vec![opts].into_iter(),
                    Box::new(move || done()),
                );
            }
        }
    };

    // Phase 3a: the new range's primary (all legs, sequential) and
    // every old-range gain (parallel).
    let phase_transfers = {
        let shards = shards.clone();
        move || {
            let done = barrier(1 + old_gain_legs.len(), phase_secondaries);
            {
                let done = Rc::clone(&done);
                run_transfer_legs(
                    Rc::clone(&shards[primary_machine]),
                    primary_legs.into_iter(),
                    Box::new(move || done()),
                );
            }
            for (m, opts) in old_gain_legs {
                let done = Rc::clone(&done);
                run_transfer_legs(
                    Rc::clone(&shards[m]),
                    vec![opts].into_iter(),
                    Box::new(move || done()),
                );
            }
        }
    };

    // Phase 2: install dual-apply on every old holder — before any
    // transfer pulls, so acknowledged writes can't dodge the move.
    let phase_dual_apply = {
        let orch = Rc::clone(&orch);
        move || {
            let done = barrier(control.len(), phase_transfers);
            spawn_with(&orch, CoreId(0), (), move |()| {
                for (ep, frame) in control {
                    let done = Rc::clone(&done);
                    memcached::shipper_for(ep).call(frame, move |_r| done());
                }
            });
        }
    };

    // Phase 1: publish every gaining endpoint (fan-out must resolve
    // it) and export the range ids on their machines.
    let published = barrier(gains.len(), phase_dual_apply);
    for &(r, m) in &gains {
        let msgr = Rc::clone(&c.messengers[m]);
        let map = Rc::clone(&c.maps[m]);
        let ip = shard_ip(m);
        let done = Rc::clone(&published);
        spawn_with(&c.shards[m], CoreId(0), (msgr, map), move |(msgr, map)| {
            ebbrt_hosted::remote::export::<memcached::StoreShardEbb>(
                &msgr,
                EbbRef::from_id(range_id(r)),
            );
            ebbrt_hosted::remote::publish::<memcached::StoreShardEbb>(
                &msgr,
                &map,
                EbbRef::from_id(endpoint_id(r, m)),
                ip,
                // A gainer isolated under chaos can't land its naming
                // put; tolerate it — fan-out to the unresolvable
                // endpoint is absorbed (presumed dead), and its
                // restart re-sync republishes before rejoining.
                move |_ok| done(),
            );
        });
    }
    finished
}

/// Finds a printable key that [`HashRing::range_of`]-maps to `range`
/// (deterministic; shared between harness phases).
pub fn key_for_range(ring: &HashRing, range: usize, tag: usize) -> Vec<u8> {
    for n in 0.. {
        let k = format!("rkey_{tag}_{n}");
        if ring.range_of(k.as_bytes()) as usize == range {
            return k.into_bytes();
        }
    }
    unreachable!()
}

/// Finds a printable key that [`shard_of`]-maps to `shard` out of
/// `nshards` (deterministic; shared with any external client).
pub fn key_for_shard(shard: usize, nshards: usize, tag: usize) -> Vec<u8> {
    for n in 0.. {
        let k = format!("key_{tag}_{n}");
        if shard_of(k.as_bytes(), nshards) == shard {
            return k.into_bytes();
        }
    }
    unreachable!()
}

/// Workload knobs for [`run`].
pub struct DistConfig {
    /// Shard machines.
    pub shards: usize,
    /// Event cores per shard machine (RSS spreads connections; > 1
    /// exercises the cross-core completion hop).
    pub cores: usize,
    /// Local-shard GETs before measurement (pool/TCP warm).
    pub warmup_gets: u32,
    /// Measured GETs per phase (local, then remote).
    pub measured_gets: u32,
    /// Add the phantom shard and probe it.
    pub probe_failure: bool,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            shards: 3,
            cores: 1,
            warmup_gets: 32,
            measured_gets: 128,
            probe_failure: true,
        }
    }
}

/// What [`run`] measured.
pub struct DistReport {
    /// Shard machines.
    pub shards: usize,
    /// Mean local-shard GET latency (virtual µs, client-observed).
    pub local_mean_us: f64,
    /// Mean cross-shard (function-shipped) GET latency (virtual µs).
    pub remote_mean_us: f64,
    /// GETs the *remote* owner's store served — proof the cross-shard
    /// requests really shipped.
    pub remote_owner_gets: u64,
    /// Payload bytes copied on the serving machine during the measured
    /// local phase.
    pub local_copied: u64,
    /// Fresh buffer allocations on the serving machine during the
    /// measured local phase.
    pub local_allocated: u64,
    /// Responses carrying [`STATUS_REMOTE_ERROR`] from the phantom
    /// probe (expected: exactly the probes sent, promptly).
    pub failure_responses: u32,
    /// Function-shipped calls that rode a multi-call messenger frame
    /// on the front-end shard (the pipelined cross-shard phase).
    pub front_batched_calls: u64,
    /// Largest number of calls the front-end shard coalesced into one
    /// messenger frame.
    pub front_max_batch: u64,
}

/// Phase tags of the closed-loop client.
const TAG_SETUP: u8 = 0;
const TAG_WARM: u8 = 1;
const TAG_LOCAL: u8 = 2;
const TAG_REMOTE: u8 = 3;
const TAG_FAIL: u8 = 4;
const TAG_PIPE: u8 = 5;
const NTAGS: usize = 6;

struct Step {
    frame: Vec<u8>,
    tag: u8,
    /// Responses this step awaits before the next fires (> 1 for the
    /// pipelined burst).
    expects: u32,
}

/// Closed-loop client: one outstanding request; phase boundaries
/// snapshot the serving machine's pool counters.
struct DistClient {
    steps: RefCell<std::vec::IntoIter<Step>>,
    rx: RefCell<Vec<u8>>,
    in_flight: Cell<Option<(u8, u64, u32)>>,
    lat_ns: RefCell<[Vec<u64>; NTAGS]>,
    statuses: RefCell<Vec<(u8, u16)>>,
    server_rt: Arc<Runtime>,
    local_base: Cell<Option<stats::Snapshot>>,
    local_delta: RefCell<Option<stats::Snapshot>>,
}

impl DistClient {
    fn now_ns() -> u64 {
        ebbrt_core::runtime::with_current(|rt| rt.now_ns())
    }

    fn fire_next(&self, conn: &TcpConn) {
        let prev_tag = self.in_flight.get().map(|(t, _, _)| t);
        let Some(step) = self.steps.borrow_mut().next() else {
            self.in_flight.set(None);
            conn.close();
            return;
        };
        // Phase boundaries: bracket the measured local phase with
        // serving-machine pool snapshots.
        if step.tag == TAG_LOCAL && prev_tag != Some(TAG_LOCAL) {
            self.local_base
                .set(Some(stats::runtime_snapshot(&self.server_rt)));
        }
        if prev_tag == Some(TAG_LOCAL) && step.tag != TAG_LOCAL {
            self.finish_local_phase();
        }
        self.in_flight
            .set(Some((step.tag, Self::now_ns(), step.expects)));
        let _ = conn.send(Chain::single(IoBuf::copy_from(&step.frame)));
    }

    fn finish_local_phase(&self) {
        // Consume the base: the trailing safety-net call in `run` must
        // not stretch the measured window over later phases.
        if let Some(base) = self.local_base.take() {
            let delta = stats::runtime_snapshot(&self.server_rt).since(&base);
            *self.local_delta.borrow_mut() = Some(delta);
        }
    }
}

impl ConnHandler for DistClient {
    fn on_connected(&self, conn: &TcpConn) {
        self.fire_next(conn);
    }

    fn on_receive(&self, conn: &TcpConn, data: Chain<IoBuf>) {
        let mut rx = self.rx.borrow_mut();
        rx.extend(data.copy_to_vec());
        loop {
            if rx.len() < Header::SIZE {
                return;
            }
            let mut hdr = [0u8; Header::SIZE];
            hdr.copy_from_slice(&rx[..Header::SIZE]);
            let h = Header::decode(&hdr);
            let total = Header::SIZE + h.total_body as usize;
            if rx.len() < total {
                return;
            }
            rx.drain(..total);
            let (tag, sent_at, expects) = self.in_flight.get().expect("response without a request");
            self.lat_ns.borrow_mut()[tag as usize].push(Self::now_ns() - sent_at);
            self.statuses.borrow_mut().push((tag, h.status));
            if expects > 1 {
                // A pipelined step: wait for its remaining responses.
                self.in_flight.set(Some((tag, sent_at, expects - 1)));
                continue;
            }
            drop(rx);
            self.fire_next(conn);
            rx = self.rx.borrow_mut();
        }
    }
}

fn mean_us(ns: &[u64]) -> f64 {
    if ns.is_empty() {
        return 0.0;
    }
    ns.iter().sum::<u64>() as f64 / ns.len() as f64 / 1000.0
}

/// Builds the cluster, drives the workload, returns the measurements.
pub fn run(cfg: &DistConfig) -> DistReport {
    let c = build_with_cores(cfg.shards, cfg.probe_failure, cfg.cores);
    let nslots = c.shard_ids.len();
    let local_key = key_for_shard(0, nslots, 0);
    let remote_key = key_for_shard(1, nslots, 1);
    let value = vec![0xC5u8; 512];

    let mut steps = Vec::new();
    // Seed one key in the local shard and one in a remote shard —
    // through the server, so the remote SET function-ships too.
    steps.push(Step {
        frame: memcached::encode_set(&local_key, &value, 1),
        tag: TAG_SETUP,
        expects: 1,
    });
    steps.push(Step {
        frame: memcached::encode_set(&remote_key, &value, 2),
        tag: TAG_SETUP,
        expects: 1,
    });
    for i in 0..cfg.warmup_gets {
        steps.push(Step {
            frame: memcached::encode_get(&local_key, 100 + i),
            tag: TAG_WARM,
            expects: 1,
        });
    }
    for i in 0..cfg.measured_gets {
        steps.push(Step {
            frame: memcached::encode_get(&local_key, 10_000 + i),
            tag: TAG_LOCAL,
            expects: 1,
        });
    }
    for i in 0..cfg.measured_gets {
        steps.push(Step {
            frame: memcached::encode_get(&remote_key, 20_000 + i),
            tag: TAG_REMOTE,
            expects: 1,
        });
    }
    // Pipelined cross-shard burst: several GETs for keys of one remote
    // owner land at the front end in one pass, so their function-shipped
    // calls must leave as one multi-call messenger frame (asserted via
    // the front-end transport's batch counters).
    let pipe_depth = 4u32;
    {
        let mut frame = Vec::new();
        for i in 0..pipe_depth {
            frame.extend(memcached::encode_get(&remote_key, 40_000 + i));
        }
        steps.push(Step {
            frame,
            tag: TAG_PIPE,
            expects: pipe_depth,
        });
    }
    let mut failure_probes = 0u32;
    if cfg.probe_failure {
        let phantom_slot = nslots - 1;
        let phantom_key = key_for_shard(phantom_slot, nslots, 9);
        failure_probes = 2;
        for i in 0..failure_probes {
            steps.push(Step {
                frame: memcached::encode_get(&phantom_key, 30_000 + i),
                tag: TAG_FAIL,
                expects: 1,
            });
        }
    }

    let client = Rc::new(DistClient {
        steps: RefCell::new(steps.into_iter()),
        rx: RefCell::new(Vec::new()),
        in_flight: Cell::new(None),
        lat_ns: RefCell::new(Default::default()),
        statuses: RefCell::new(Vec::new()),
        server_rt: Arc::clone(c.shards[0].runtime()),
        local_base: Cell::new(None),
        local_delta: RefCell::new(None),
    });
    let h = Rc::clone(&client);
    spawn_with(&c.client, CoreId(0), h, move |h| {
        local_netif().connect(shard_ip(0), MEMCACHED_PORT, h as Rc<dyn ConnHandler>);
    });
    c.w.run_to_idle();

    assert!(
        client.in_flight.get().is_none() && client.steps.borrow_mut().next().is_none(),
        "the workload must run to completion — a hang is a failed property"
    );
    client.finish_local_phase();

    // Every phase before the failure probe must have answered OK.
    let statuses = client.statuses.borrow();
    for &(tag, status) in statuses.iter() {
        match tag {
            TAG_FAIL => assert_eq!(
                status, STATUS_REMOTE_ERROR,
                "a dead shard must answer STATUS_REMOTE_ERROR"
            ),
            _ => assert_eq!(status, STATUS_OK, "phase {tag} response must be OK"),
        }
    }
    let failure_responses = statuses.iter().filter(|(t, _)| *t == TAG_FAIL).count() as u32;
    assert_eq!(failure_responses, failure_probes, "every probe answered");
    drop(statuses);

    let lat = client.lat_ns.borrow();
    let delta = (*client.local_delta.borrow()).expect("local phase measured");
    use std::sync::atomic::Ordering;
    DistReport {
        shards: cfg.shards,
        local_mean_us: mean_us(&lat[TAG_LOCAL as usize]),
        remote_mean_us: mean_us(&lat[TAG_REMOTE as usize]),
        remote_owner_gets: c.stores[1].gets.load(Ordering::Relaxed),
        local_copied: delta.bytes_copied,
        local_allocated: delta.bufs_allocated,
        failure_responses,
        front_batched_calls: c.transports[0].batched_calls.get(),
        front_max_batch: c.transports[0].max_batch.get(),
    }
}

/// The properties CI enforces.
pub fn assert_properties(r: &DistReport) {
    assert!(
        r.remote_owner_gets > 0,
        "cross-shard GETs must be served by function-shipped calls to the owner"
    );
    assert_eq!(
        (r.local_copied, r.local_allocated),
        (0, 0),
        "the steady-state local-shard path must stay zero-copy / zero-allocation"
    );
    assert!(
        r.remote_mean_us > r.local_mean_us,
        "a remote ship cannot be cheaper than a local hit"
    );
    assert!(
        r.front_max_batch >= 2 && r.front_batched_calls >= 2,
        "a pass with several keys routed to one owner must coalesce \
         its shipped calls into one messenger frame (batched {} / max {})",
        r.front_batched_calls,
        r.front_max_batch,
    );
}

/// One-line human summary.
pub fn format_report(r: &DistReport) -> String {
    format!(
        "sharded memcached x{} shards: local GET {:.1} us, remote (function-shipped) GET \
         {:.1} us ({:.1}x), {} owner-served remote gets, local phase {} copied / {} allocated, \
         {} failure probes answered, {} calls batched (max {}/frame)",
        r.shards,
        r.local_mean_us,
        r.remote_mean_us,
        r.remote_mean_us / r.local_mean_us.max(0.001),
        r.remote_owner_gets,
        r.local_copied,
        r.local_allocated,
        r.failure_responses,
        r.front_batched_calls,
        r.front_max_batch,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_cluster_properties_hold() {
        let r = run(&DistConfig {
            shards: 2,
            cores: 1,
            warmup_gets: 32,
            measured_gets: 16,
            probe_failure: true,
        });
        println!("{}", format_report(&r));
        assert_properties(&r);
    }

    /// Satellite of the replication PR: the same e2e on 2-core shard
    /// machines — cross-shard completions must hop back to the
    /// memcached connection's RSS core before touching its state.
    #[test]
    fn sharded_cluster_properties_hold_on_two_core_shards() {
        let r = run(&DistConfig {
            shards: 2,
            cores: 2,
            warmup_gets: 32,
            measured_gets: 16,
            probe_failure: true,
        });
        println!("{}", format_report(&r));
        assert_properties(&r);
    }
}
