//! The chaos harness: the replicated sharded-memcached cluster under
//! machine kills and restarts, mid-traffic.
//!
//! [`run`] builds a [`build_replicated_with_spares`] cluster, drives a
//! closed-loop
//! binary-protocol client against shard 0, and — at configured points
//! in the op stream — **isolates** a shard machine at the switch (every
//! frame to or from it silently dropped: a crash, not a clean close)
//! and later restores it. The properties under test:
//!
//! * **Zero failed client requests.** A killed machine never surfaces
//!   as an error to a memcached client: the shipping layer's
//!   retry-in-place path re-resolves the range (promoting the next
//!   replica via a CAS on the naming record) and re-ships *inside the
//!   failing call*.
//! * **Read-your-writes.** Every GET observes the value of the
//!   client's last acknowledged SET of that key, across promotions
//!   (version-tagged watermarks gate local-replica reads).
//! * **No acknowledged write lost.** A verification sweep re-reads
//!   every key written; an acknowledged SET is on every replica that
//!   was live when it was acknowledged, so the promoted survivor
//!   serves it.
//! * **The surviving local fast path stays zero-copy.** A measured
//!   local-range GET phase at the end asserts 0 payload bytes copied
//!   and 0 fresh buffer allocations on the serving machine — chaos
//!   elsewhere must not tax the paper's hot path.
//! * **Restarts converge.** Every restore kicks
//!   [`resync_machine`]: the victim catches back up (status election,
//!   snapshot/delta pull, REJOIN barrier), peers drop their
//!   presumed-dead marks, and where the victim is a range's ring
//!   primary the ownership record un-promotes back to ring order. At
//!   quiesce [`run`] asserts full convergence: every designated
//!   replica serving, zero presumed-dead marks, identical per-key
//!   versions, and naming records matching ring placement.
//! * **Rebalancing is invisible.** An optional mid-traffic
//!   [`add_shard`] grows the ring onto a spare machine while ops
//!   flow — dual-apply forwarding means no acknowledged write is
//!   lost to the migration, and kills *during* the transfer are
//!   absorbed like any other.
//!
//! Everything is deterministic: virtual time, a seeded op mix, and
//! fault points given as op indices.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use ebbrt_apps::memcached::{self, Header, MEMCACHED_PORT, STATUS_OK};
use ebbrt_apps::spawn_with;
use ebbrt_core::cpu::CoreId;
use ebbrt_core::iobuf::{stats, Chain, IoBuf};
use ebbrt_core::runtime::Runtime;
use ebbrt_hosted::remote::RetryPolicy;
use ebbrt_net::netif::{local_netif, ConnHandler, TcpConn};
use ebbrt_sim::Switch;

use ebbrt_hosted::global_map;
use ebbrt_net::types::Ipv4Addr;

use crate::dist_memcached::{
    add_shard, build_replicated_with_spares, key_for_range, range_id, resync_machine, shard_ip,
    ReplCluster,
};

/// When and whom to kill.
#[derive(Clone, Copy)]
pub struct ChaosKill {
    /// Shard machine to isolate (never 0 — the client's entry server).
    pub victim: usize,
    /// Traffic-op index before which the victim is isolated.
    pub at: u32,
    /// Traffic-op index before which it is restored (its re-sync kicks
    /// off right there); `None` leaves it down for the rest of the
    /// run. An index past the traffic phase restores after the last
    /// traffic op, before the verification sweep.
    pub restore_at: Option<u32>,
}

/// Workload knobs for [`run`].
#[derive(Clone)]
pub struct ChaosConfig {
    /// Shard machines (ranges).
    pub shards: usize,
    /// Replicas per range.
    pub replicas: usize,
    /// Spare machines (wired, rangeless) for `add_at` to grow onto.
    pub spares: usize,
    /// Mixed SET/GET traffic ops (the phase the faults land in).
    pub ops: u32,
    /// The faults to inject; may overlap (a kill while an earlier
    /// victim is still catching up).
    pub kills: Vec<ChaosKill>,
    /// Traffic-op index before which the ring grows onto the next
    /// spare machine, live.
    pub add_at: Option<u32>,
    /// Measured GETs in the trailing local and remote phases.
    pub measured_gets: u32,
    /// Op-mix seed.
    pub seed: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            shards: 3,
            replicas: 2,
            spares: 0,
            ops: 96,
            kills: vec![ChaosKill {
                victim: 1,
                at: 16,
                restore_at: Some(64),
            }],
            add_at: None,
            measured_gets: 64,
            seed: 0xEBB7_C4A0,
        }
    }
}

/// What [`run`] measured.
pub struct ChaosReport {
    /// Shard machines.
    pub shards: usize,
    /// Replicas per range.
    pub replicas: usize,
    /// Client requests issued (all phases).
    pub requests: u32,
    /// Machines killed during the run.
    pub kills: u32,
    /// Machine re-syncs kicked (one per restore).
    pub resyncs: u32,
    /// Live ring growths executed.
    pub adds: u32,
    /// Whether the quiesced cluster was checked — and passed — full
    /// convergence (every kill restored; the checks themselves panic
    /// on violation).
    pub converged: bool,
    /// Responses with a non-OK status — must be 0.
    pub failed: u32,
    /// GET responses whose value contradicted the client's last
    /// acknowledged SET — must be 0.
    pub mismatches: u32,
    /// Replica promotions (naming-record CAS wins) across the cluster.
    pub promotions: u64,
    /// Retry-in-place re-ships across the cluster.
    pub retries: u64,
    /// Fan-out copies abandoned after the transport's retry budget
    /// (peer presumed dead).
    pub repl_fanout_failures: u64,
    /// Mean op latency of the chaotic traffic phase (virtual µs) —
    /// what a client feels while kills, re-syncs, and transfers are
    /// in flight.
    pub traffic_mean_us: f64,
    /// Mean GET latency of the measured local-range phase (virtual µs).
    pub local_get_mean_us: f64,
    /// Mean GET latency of the measured shipped-range phase.
    pub remote_get_mean_us: f64,
    /// Payload bytes copied on the entry machine during the measured
    /// local phase.
    pub local_copied: u64,
    /// Fresh buffer allocations there during the same window.
    pub local_allocated: u64,
    /// Requests the cluster's serving classes counted as served, from
    /// the per-core counter registry, read at quiesce.
    pub qos_served: u64,
    /// Requests answered busy by the deadline shedder (none are
    /// expected in a chaos run — overload is a different failure than
    /// a dead machine — but the ledger includes them so the balance
    /// below is the general one).
    pub qos_shed: u64,
}

/// Phase tags.
const TAG_SEED: u8 = 0;
const TAG_TRAFFIC: u8 = 1;
const TAG_VERIFY: u8 = 2;
const TAG_REMOTE: u8 = 3;
const TAG_WARM: u8 = 4;
const TAG_LOCAL: u8 = 5;
const NTAGS: usize = 6;

enum Step {
    Frame {
        frame: Vec<u8>,
        tag: u8,
        /// For GETs: the value the model says this key holds.
        expect: Option<Vec<u8>>,
    },
    Kill(usize),
    Restore(usize),
    AddShard,
}

/// One outstanding request: `(phase tag, send time, expected GET value)`.
type InFlight = (u8, u64, Option<Vec<u8>>);

/// Closed-loop client that executes chaos actions between requests and
/// checks GET bodies against the client-side model.
struct ChaosClient {
    steps: RefCell<std::vec::IntoIter<Step>>,
    conn: RefCell<Option<TcpConn>>,
    close_when_done: Cell<bool>,
    rx: RefCell<Vec<u8>>,
    in_flight: RefCell<Option<InFlight>>,
    lat_ns: RefCell<[Vec<u64>; NTAGS]>,
    failed: Cell<u32>,
    mismatches: Cell<u32>,
    requests: Cell<u32>,
    kills: Cell<u32>,
    resyncs: Cell<u32>,
    adds: Cell<u32>,
    /// Kicks the restored machine's re-sync (runs [`resync_machine`]
    /// against the shared cluster and records the completion latch).
    on_restore: Box<dyn Fn(usize)>,
    /// Executes the live ring growth ([`add_shard`]).
    on_add: Box<dyn Fn()>,
    sw: Rc<Switch>,
    shard_ports: Vec<usize>,
    server_rt: Arc<Runtime>,
    local_base: Cell<Option<stats::Snapshot>>,
    local_delta: RefCell<Option<stats::Snapshot>>,
}

impl ChaosClient {
    fn now_ns() -> u64 {
        ebbrt_core::runtime::with_current(|rt| rt.now_ns())
    }

    fn fire_next(&self, conn: &TcpConn) {
        loop {
            let step = self.steps.borrow_mut().next();
            match step {
                None => {
                    // Segment exhausted: pause (the host refills the
                    // step queue between segments), closing only after
                    // the final one.
                    *self.in_flight.borrow_mut() = None;
                    if self.close_when_done.get() {
                        conn.close();
                    }
                    return;
                }
                Some(Step::Kill(m)) => {
                    self.kills.set(self.kills.get() + 1);
                    self.sw.isolate(self.shard_ports[m]);
                }
                Some(Step::Restore(m)) => {
                    self.sw.restore(self.shard_ports[m]);
                    self.resyncs.set(self.resyncs.get() + 1);
                    (self.on_restore)(m);
                }
                Some(Step::AddShard) => {
                    self.adds.set(self.adds.get() + 1);
                    (self.on_add)();
                }
                Some(Step::Frame { frame, tag, expect }) => {
                    let prev = self.in_flight.borrow().as_ref().map(|f| f.0);
                    if tag == TAG_LOCAL && prev != Some(TAG_LOCAL) {
                        self.local_base
                            .set(Some(stats::runtime_snapshot(&self.server_rt)));
                    }
                    if prev == Some(TAG_LOCAL) && tag != TAG_LOCAL {
                        self.finish_local_phase();
                    }
                    *self.in_flight.borrow_mut() = Some((tag, Self::now_ns(), expect));
                    self.requests.set(self.requests.get() + 1);
                    let _ = conn.send(Chain::single(IoBuf::copy_from(&frame)));
                    return;
                }
            }
        }
    }

    fn finish_local_phase(&self) {
        if let Some(base) = self.local_base.take() {
            let delta = stats::runtime_snapshot(&self.server_rt).since(&base);
            *self.local_delta.borrow_mut() = Some(delta);
        }
    }
}

impl ConnHandler for ChaosClient {
    fn on_connected(&self, conn: &TcpConn) {
        *self.conn.borrow_mut() = Some(conn.clone());
        self.fire_next(conn);
    }

    fn on_receive(&self, conn: &TcpConn, data: Chain<IoBuf>) {
        let mut rx = self.rx.borrow_mut();
        rx.extend(data.copy_to_vec());
        loop {
            if rx.len() < Header::SIZE {
                return;
            }
            let mut hdr = [0u8; Header::SIZE];
            hdr.copy_from_slice(&rx[..Header::SIZE]);
            let h = Header::decode(&hdr);
            let total = Header::SIZE + h.total_body as usize;
            if rx.len() < total {
                return;
            }
            let body: Vec<u8> = rx[Header::SIZE..total].to_vec();
            rx.drain(..total);
            let (tag, sent_at, expect) = self
                .in_flight
                .borrow_mut()
                .take()
                .expect("response without a request");
            self.lat_ns.borrow_mut()[tag as usize].push(Self::now_ns() - sent_at);
            if h.status != STATUS_OK {
                self.failed.set(self.failed.get() + 1);
            } else if let Some(want) = expect {
                let value = &body[h.extras_len as usize + h.key_len as usize..];
                if value != want.as_slice() {
                    self.mismatches.set(self.mismatches.get() + 1);
                }
            }
            drop(rx);
            self.fire_next(conn);
            rx = self.rx.borrow_mut();
        }
    }
}

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

fn value_for(op: u32) -> Vec<u8> {
    format!("v{op:06}!").repeat(6).into_bytes()
}

fn mean_us(ns: &[u64]) -> f64 {
    if ns.is_empty() {
        return 0.0;
    }
    ns.iter().sum::<u64>() as f64 / ns.len() as f64 / 1000.0
}

/// Builds the replicated cluster, drives the chaotic workload, returns
/// the measurements. Panics only on harness bugs — protocol-visible
/// failures are *counted* so [`assert_properties`] states them.
pub fn run(cfg: &ChaosConfig) -> ChaosReport {
    if cfg.add_at.is_some() {
        assert!(cfg.spares >= 1, "a live add needs a spare machine");
    }
    for k in &cfg.kills {
        assert!(
            k.victim != 0 && k.victim < cfg.shards,
            "victim must be a non-entry initial shard"
        );
        assert!(
            k.at < cfg.ops,
            "the kill must land inside the traffic phase"
        );
    }
    let cluster = Rc::new(RefCell::new(build_replicated_with_spares(
        cfg.shards,
        cfg.replicas,
        1,
        cfg.spares,
    )));
    // Handles the workload needs while the cluster cell is borrowed by
    // the chaos callbacks.
    let (world, sw, shard_ports, server_rt, client_machine, ring) = {
        let c = cluster.borrow();
        (
            Rc::clone(&c.w),
            Rc::clone(&c.sw),
            c.shard_ports.clone(),
            Arc::clone(c.shards[0].runtime()),
            Rc::clone(&c.client),
            Arc::clone(&c.ring),
        )
    };
    // Failure-detection budgets: the entry machine (which ships on
    // behalf of the memcached client) gets a patient policy whose
    // per-attempt timeout exceeds a shard's whole fan-out worst case,
    // so a promoted primary can finish its (possibly failing) fan-out
    // within one entry attempt. Shard machines detect dead peers fast.
    for (i, t) in cluster.borrow().transports.iter().enumerate() {
        if i == 0 {
            t.set_timeout(10_000_000);
            t.set_retry_policy(RetryPolicy {
                budget: 4,
                backoff_base_ns: 1_000_000,
                backoff_max_ns: 8_000_000,
            });
        } else {
            t.set_timeout(2_000_000);
            t.set_retry_policy(RetryPolicy {
                budget: 2,
                backoff_base_ns: 500_000,
                backoff_max_ns: 2_000_000,
            });
        }
    }

    // Two keys per range; the model tracks the last acknowledged value.
    let ring = &ring;
    let mut keys: Vec<Vec<u8>> = (0..cfg.shards)
        .flat_map(|r| (0..2).map(move |k| key_for_range(ring, r, r * 2 + k)))
        .collect();
    // The measured-local key must stay range 0 (primary on the entry
    // machine) across a live growth, or the zero-copy assertion would
    // measure a migrated — shipped — key.
    let local_key = if cfg.add_at.is_some() {
        let grown = ring.grown();
        let k = (100..10_000)
            .map(|t| key_for_range(ring, 0, t))
            .find(|k| grown.range_of(k) == 0)
            .expect("a key stable under growth exists");
        keys.push(k.clone());
        k
    } else {
        keys[0].clone()
    };
    let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
    let mut steps = Vec::new();
    let mut opaque = 0u32;
    fn push_set(
        steps: &mut Vec<Step>,
        model: &mut HashMap<Vec<u8>, Vec<u8>>,
        opaque: &mut u32,
        key: &[u8],
        op: u32,
        tag: u8,
    ) {
        let v = value_for(op);
        *opaque += 1;
        steps.push(Step::Frame {
            frame: memcached::encode_set(key, &v, *opaque),
            tag,
            expect: None,
        });
        model.insert(key.to_vec(), v);
    }
    for (i, key) in keys.clone().iter().enumerate() {
        push_set(&mut steps, &mut model, &mut opaque, key, i as u32, TAG_SEED);
    }

    // Mixed traffic with the kill/restore/add points spliced in.
    let mut rng = cfg.seed | 1;
    for i in 0..cfg.ops {
        for k in &cfg.kills {
            if i == k.at {
                steps.push(Step::Kill(k.victim));
            }
            if Some(i) == k.restore_at {
                steps.push(Step::Restore(k.victim));
            }
        }
        if Some(i) == cfg.add_at {
            steps.push(Step::AddShard);
        }
        let r = xorshift(&mut rng);
        let key = keys[(r >> 8) as usize % keys.len()].clone();
        if r & 1 == 0 {
            push_set(
                &mut steps,
                &mut model,
                &mut opaque,
                &key,
                1000 + i,
                TAG_TRAFFIC,
            );
        } else {
            opaque += 1;
            steps.push(Step::Frame {
                frame: memcached::encode_get(&key, opaque),
                tag: TAG_TRAFFIC,
                expect: Some(model[&key].clone()),
            });
        }
    }

    // Actions pointed past the traffic phase land right after it —
    // still ahead of the verification sweep, which then exercises the
    // freshly kicked re-sync / growth.
    for k in &cfg.kills {
        if let Some(ra) = k.restore_at {
            if ra >= cfg.ops {
                steps.push(Step::Restore(k.victim));
            }
        }
    }
    if let Some(a) = cfg.add_at {
        if a >= cfg.ops {
            steps.push(Step::AddShard);
        }
    }

    // No-acknowledged-write-lost sweep: every key re-read.
    for key in &keys {
        opaque += 1;
        steps.push(Step::Frame {
            frame: memcached::encode_get(key, opaque),
            tag: TAG_VERIFY,
            expect: Some(model[key].clone()),
        });
    }

    // Segment B — the measured phases, run only after the chaos
    // segment has drained and the cluster has quiesced (a healed
    // victim's TCP retransmissions of frames dropped while it was
    // isolated land up to RTO x backoff after restore; they must not
    // fall inside the measured zero-copy window).
    let mut measured = Vec::new();

    // Measured shipped-GET phase: a range the entry machine holds no
    // replica of (exists whenever replicas < shards).
    let remote_range = (0..cfg.shards).find(|r| !cluster.borrow().roots[0].contains_key(r));
    if let Some(rr) = remote_range {
        let rkey = keys[rr * 2].clone();
        for _ in 0..cfg.measured_gets {
            opaque += 1;
            measured.push(Step::Frame {
                frame: memcached::encode_get(&rkey, opaque),
                tag: TAG_REMOTE,
                expect: Some(model[&rkey].clone()),
            });
        }
    }

    // Measured local phase last (warm first): range 0 is primary on
    // the entry machine, so these take the zero-copy path.
    let lkey = local_key;
    for i in 0..(16 + cfg.measured_gets) {
        opaque += 1;
        measured.push(Step::Frame {
            frame: memcached::encode_get(&lkey, opaque),
            tag: if i < 16 { TAG_WARM } else { TAG_LOCAL },
            expect: Some(model[&lkey].clone()),
        });
    }

    // Completion latches of every re-sync / growth kicked mid-run:
    // all must have flipped by quiesce (a hung recovery is a failed
    // property, same as a hung request).
    type Latches = Rc<RefCell<Vec<(&'static str, Rc<Cell<bool>>)>>>;
    let latches: Latches = Rc::new(RefCell::new(Vec::new()));
    let on_restore = {
        let cluster = Rc::clone(&cluster);
        let latches = Rc::clone(&latches);
        Box::new(move |m: usize| {
            let latch = resync_machine(&cluster.borrow(), m);
            latches.borrow_mut().push(("machine re-sync", latch));
        })
    };
    let on_add = {
        let cluster = Rc::clone(&cluster);
        let latches = Rc::clone(&latches);
        Box::new(move || {
            let latch = add_shard(&mut cluster.borrow_mut());
            latches.borrow_mut().push(("ring growth", latch));
        })
    };

    let client = Rc::new(ChaosClient {
        steps: RefCell::new(steps.into_iter()),
        conn: RefCell::new(None),
        close_when_done: Cell::new(false),
        rx: RefCell::new(Vec::new()),
        in_flight: RefCell::new(None),
        lat_ns: RefCell::new(Default::default()),
        failed: Cell::new(0),
        mismatches: Cell::new(0),
        requests: Cell::new(0),
        kills: Cell::new(0),
        resyncs: Cell::new(0),
        adds: Cell::new(0),
        on_restore,
        on_add,
        sw,
        shard_ports,
        server_rt,
        local_base: Cell::new(None),
        local_delta: RefCell::new(None),
    });
    let h = Rc::clone(&client);
    spawn_with(&client_machine, CoreId(0), h, move |h| {
        local_netif().connect(shard_ip(0), MEMCACHED_PORT, h as Rc<dyn ConnHandler>);
    });
    // Bounded runs, not run-to-idle: a conn to a never-restored victim
    // retransmits forever (the sim TCP never gives up), so the world
    // never idles — but those timers are sparse (RTO-backoff paced),
    // so running a wide virtual window past the workload is cheap. The
    // window also serves as the quiesce period between segments.
    const SEGMENT_WINDOW_NS: u64 = 120_000_000_000;
    world.run_for(SEGMENT_WINDOW_NS);
    assert!(
        client.in_flight.borrow().is_none() && client.steps.borrow_mut().next().is_none(),
        "the chaotic segment must run to completion — a hang is a failed property"
    );
    // Every recovery kicked during the segment had the whole quiesce
    // window to finish.
    for (what, latch) in latches.borrow().iter() {
        assert!(
            latch.get(),
            "a {what} must complete before the cluster quiesces"
        );
    }
    // With every victim restored, the quiesced cluster must have
    // converged all the way back to ring placement.
    let all_restored = cfg.kills.iter().all(|k| k.restore_at.is_some());
    if all_restored {
        assert_converged(&cluster.borrow(), &keys);
    }

    *client.steps.borrow_mut() = measured.into_iter();
    client.close_when_done.set(true);
    let h = Rc::clone(&client);
    spawn_with(&client_machine, CoreId(0), h, move |h| {
        let conn = h.conn.borrow().clone().expect("client connected");
        h.fire_next(&conn);
    });
    world.run_for(SEGMENT_WINDOW_NS);

    assert!(
        client.in_flight.borrow().is_none() && client.steps.borrow_mut().next().is_none(),
        "the measured segment must run to completion — a hang is a failed property"
    );
    client.finish_local_phase();

    // Quiesce-time accounting: every request the client fired was
    // drained by exactly one serving connection and answered — served
    // or shed, never silently dropped. The counter registry's
    // cross-core snapshot, summed over the cluster, must balance the
    // client's own request count to the unit.
    let (mut qos_served, mut qos_shed) = (0u64, 0u64);
    for m in &cluster.borrow().shards {
        let snap = ebbrt_core::qos::snapshot(m.runtime());
        for (name, total) in snap.iter() {
            if name.starts_with("qos.") && name.ends_with(".served") {
                qos_served += total;
            } else if name.starts_with("qos.") && name.ends_with(".shed") {
                qos_shed += total;
            }
        }
    }
    assert_eq!(
        qos_served + qos_shed,
        u64::from(client.requests.get()),
        "the served/shed ledger must balance the client's requests at quiesce"
    );

    // The syncache ledger must balance too, on every machine: each
    // inbound handshake the segment produced (including those raced by
    // kills and partitions) settled as promoted, evicted, or aborted,
    // and no half-open connection outlived the quiesce window.
    {
        let shards = cluster.borrow().shards.clone();
        let lives: Rc<Vec<Cell<Option<usize>>>> =
            Rc::new((0..shards.len()).map(|_| Cell::new(None)).collect());
        for (i, m) in shards.iter().enumerate() {
            let lives = Rc::clone(&lives);
            spawn_with(m, CoreId(0), lives, move |lives| {
                lives[i].set(Some(local_netif().embryonic_total()));
            });
        }
        world.run_for(1_000_000);
        for (i, m) in shards.iter().enumerate() {
            let live = lives[i].get().expect("embryonic probe ran") as u64;
            assert_eq!(live, 0, "machine {i} holds a half-open conn at quiesce");
            let snap = ebbrt_core::qos::snapshot(m.runtime());
            assert_eq!(
                snap.get("net.embryonic_created"),
                snap.get("net.embryonic_promoted")
                    + snap.get("net.embryonic_evicted")
                    + snap.get("net.embryonic_aborted")
                    + live,
                "machine {i}'s embryonic ledger must balance at quiesce"
            );
        }
    }

    let lat = client.lat_ns.borrow();
    let delta = (*client.local_delta.borrow()).expect("local phase measured");
    let c = cluster.borrow();
    ChaosReport {
        shards: cfg.shards,
        replicas: cfg.replicas,
        requests: client.requests.get(),
        kills: client.kills.get(),
        resyncs: client.resyncs.get(),
        adds: client.adds.get(),
        converged: all_restored,
        failed: client.failed.get(),
        mismatches: client.mismatches.get(),
        promotions: c.transports.iter().map(|t| t.promotions.get()).sum(),
        retries: c.transports.iter().map(|t| t.retries.get()).sum(),
        repl_fanout_failures: c
            .roots
            .iter()
            .flat_map(|m| m.values())
            .map(|r| r.repl_failed.load(Ordering::Relaxed))
            .sum(),
        traffic_mean_us: mean_us(&lat[TAG_TRAFFIC as usize]),
        local_get_mean_us: mean_us(&lat[TAG_LOCAL as usize]),
        remote_get_mean_us: mean_us(&lat[TAG_REMOTE as usize]),
        local_copied: delta.bytes_copied,
        local_allocated: delta.bufs_allocated,
        qos_served,
        qos_shed,
    }
}

/// The quiesce-time convergence checks (every victim restored): for
/// every range of the *current* ring, each designated member hosts a
/// serving root with zero presumed-dead marks; every model key holds
/// the same (non-zero) applied version on every member; and the
/// naming record matches ring placement primary-first — promotions
/// and transfers fully unwound.
fn assert_converged(c: &ReplCluster, keys: &[Vec<u8>]) {
    let nranges = c.ring.nranges() as usize;
    for r in 0..nranges {
        let members: Vec<usize> = c
            .ring
            .successors(r as u32, c.replicas)
            .into_iter()
            .map(|x| x as usize)
            .collect();
        for &m in &members {
            let root = c.roots[m]
                .get(&r)
                .unwrap_or_else(|| panic!("machine {m} must host range {r} at quiesce"));
            assert!(
                root.is_serving(),
                "range {r}'s replica on machine {m} must be serving at quiesce"
            );
            assert_eq!(
                root.failed_peer_count(),
                0,
                "range {r}'s replica on machine {m} must hold no presumed-dead marks at quiesce"
            );
        }
        let ips: Vec<Ipv4Addr> = members.iter().map(|&m| shard_ip(m)).collect();
        let (_, data) = c
            .naming_server
            .record(range_id(r))
            .unwrap_or_else(|| panic!("range {r} must have an ownership record"));
        assert_eq!(
            global_map::decode_owners(&data).as_deref(),
            Some(&ips[..]),
            "range {r}'s ownership record must converge back to ring placement"
        );
    }
    for key in keys {
        let r = c.ring.range_of(key) as usize;
        let members = c.ring.successors(r as u32, c.replicas);
        // Version watermarks are replication bookkeeping: an
        // unreplicated range's local SET path is the zero-copy store
        // write, which assigns none. Its values were already checked
        // by the verification sweep; there is nothing to compare.
        if !c.roots[members[0] as usize][&r].is_replicated() {
            continue;
        }
        let versions: Vec<u64> = members
            .iter()
            .map(|&m| c.roots[m as usize][&r].key_version(key))
            .collect();
        assert!(
            versions[0] > 0,
            "a seeded key must be present on its range's primary"
        );
        assert!(
            versions.iter().all(|&v| v == versions[0]),
            "key {:?} must sit at one version on every member of range {r}, got {versions:?}",
            String::from_utf8_lossy(key),
        );
    }
}

/// The deterministic CI configuration: one kill + restart mid-traffic,
/// with the restart's full re-sync and convergence checked at quiesce.
pub fn smoke() -> ChaosReport {
    run(&ChaosConfig {
        ops: 64,
        kills: vec![ChaosKill {
            victim: 1,
            at: 12,
            restore_at: Some(44),
        }],
        measured_gets: 48,
        ..ChaosConfig::default()
    })
}

/// The deterministic CI rebalancing configuration: the ring grows onto
/// a spare machine mid-traffic, a transfer source dies mid-migration
/// and restarts — zero failed requests, zero stale reads, full
/// convergence to the grown placement at quiesce.
pub fn smoke_rebalance() -> ChaosReport {
    run(&ChaosConfig {
        spares: 1,
        ops: 64,
        kills: vec![ChaosKill {
            victim: 1,
            at: 12,
            restore_at: Some(40),
        }],
        add_at: Some(10),
        measured_gets: 48,
        ..ChaosConfig::default()
    })
}

/// The properties CI enforces.
pub fn assert_properties(r: &ChaosReport) {
    assert_eq!(
        r.failed, 0,
        "a machine death must never fail a client request"
    );
    assert_eq!(
        r.mismatches, 0,
        "every GET must observe the last acknowledged SET (read-your-writes, no lost writes)"
    );
    if r.kills > 0 {
        // The observable failover signal depends on where the victim sat:
        // a dead *record primary* forces a replica to CAS the naming
        // record (promotion); a dead *replica peer* of a still-serving
        // front shows up as a presumed-dead fan-out instead (at full
        // replication the entry fronts every range locally and no
        // promotion is ever needed). A kill must leave at least one.
        assert!(
            r.promotions + r.repl_fanout_failures >= 1,
            "a kill must be visible as a promotion or a presumed-dead fan-out"
        );
        assert!(
            r.retries >= 1,
            "failover must retry in place, not error out"
        );
    }
    assert_eq!(
        (r.local_copied, r.local_allocated),
        (0, 0),
        "chaos elsewhere must not tax the zero-copy local fast path"
    );
}

/// One-line human summary.
pub fn format_report(r: &ChaosReport) -> String {
    format!(
        "chaos x{} shards R={}: {} reqs, {} kills, {} resyncs, {} adds{}, \
         {} failed, {} mismatches, {} promotions, {} retries, \
         {} presumed-dead fanouts, traffic {:.1} us, local GET {:.1} us / \
         remote GET {:.1} us, local phase {} copied / {} allocated, \
         ledger {} served + {} shed",
        r.shards,
        r.replicas,
        r.requests,
        r.kills,
        r.resyncs,
        r.adds,
        if r.converged { " (converged)" } else { "" },
        r.failed,
        r.mismatches,
        r.promotions,
        r.retries,
        r.repl_fanout_failures,
        r.traffic_mean_us,
        r.local_get_mean_us,
        r.remote_get_mean_us,
        r.local_copied,
        r.local_allocated,
        r.qos_served,
        r.qos_shed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The e2e smoke: kill and restart a shard machine mid-workload;
    /// zero failed client requests, observable promotions, the
    /// restart fully re-synced (convergence checked inside [`run`]),
    /// and the surviving local fast path still zero-copy.
    #[test]
    fn killing_and_restarting_a_shard_never_fails_a_client_request() {
        let r = smoke();
        println!("{}", format_report(&r));
        assert_eq!((r.kills, r.resyncs), (1, 1));
        assert!(r.converged);
        assert_properties(&r);
    }

    /// A replica death during fan-out must be absorbed (presumed dead),
    /// not surfaced: leave the victim down for the whole tail of the
    /// run, including the verification sweep.
    #[test]
    fn unrestored_victim_still_serves_all_requests() {
        let r = run(&ChaosConfig {
            ops: 48,
            kills: vec![ChaosKill {
                victim: 2,
                at: 8,
                restore_at: None,
            }],
            measured_gets: 32,
            ..ChaosConfig::default()
        });
        println!("{}", format_report(&r));
        assert_properties(&r);
        assert!(
            r.repl_fanout_failures >= 1,
            "writes to ranges replicated on the dead machine must mark it presumed dead"
        );
        assert!(!r.converged, "an unrestored victim can't converge");
    }

    /// Control: no kill — nothing promotes, nothing retries, the
    /// replicated read/write paths agree with the model, and the
    /// convergence checks hold trivially.
    #[test]
    fn replicated_cluster_without_faults_is_quiet() {
        let r = run(&ChaosConfig {
            ops: 32,
            kills: vec![],
            measured_gets: 16,
            ..ChaosConfig::default()
        });
        println!("{}", format_report(&r));
        assert_properties(&r);
        assert_eq!((r.kills, r.promotions), (0, 0));
        assert!(r.converged);
    }

    /// The headline overlapping-failure scenario: machine 2 dies at
    /// the very moment machine 1's restore kicks its re-sync (the two
    /// actions execute back-to-back with no traffic between), so the
    /// catch-up must elect around a source that is itself dead and the
    /// REJOIN barrier must skip an unreachable peer — then machine 2
    /// restarts and re-syncs too. R=3 keeps every range available
    /// throughout. At quiesce both machines are serving, presumed-dead
    /// marks are gone (the restored-fan-out regression check), and
    /// ownership is back to ring placement.
    #[test]
    fn overlapping_kills_resync_and_converge() {
        let r = run(&ChaosConfig {
            shards: 3,
            replicas: 3,
            ops: 72,
            kills: vec![
                ChaosKill {
                    victim: 1,
                    at: 10,
                    restore_at: Some(20),
                },
                ChaosKill {
                    victim: 2,
                    at: 20,
                    restore_at: Some(48),
                },
            ],
            measured_gets: 32,
            ..ChaosConfig::default()
        });
        println!("{}", format_report(&r));
        assert_eq!((r.kills, r.resyncs), (2, 2));
        assert!(r.converged);
        assert_properties(&r);
    }

    /// The headline rebalance scenario: the ring grows onto a spare
    /// machine mid-traffic, and a transfer *source* is killed while
    /// the migration is in flight (then restored). Dual-apply
    /// forwarding plus source re-election must keep every
    /// acknowledged write; the restored machine replays the
    /// dual-apply rules it missed and re-syncs into the grown
    /// placement.
    #[test]
    fn killing_a_transfer_source_mid_rebalance_loses_nothing() {
        let r = smoke_rebalance();
        println!("{}", format_report(&r));
        assert_eq!((r.kills, r.resyncs, r.adds), (1, 1, 1));
        assert!(r.converged);
        assert_properties(&r);
    }

    /// Live growth with no faults at all: adding a machine under load
    /// is invisible to clients (zero failed, zero stale) and needs no
    /// promotions; the cluster converges to the grown ring.
    #[test]
    fn adding_a_shard_under_load_converges() {
        let r = run(&ChaosConfig {
            spares: 1,
            ops: 56,
            kills: vec![],
            add_at: Some(10),
            measured_gets: 32,
            ..ChaosConfig::default()
        });
        println!("{}", format_report(&r));
        assert_eq!((r.kills, r.adds), (0, 1));
        assert_eq!(r.promotions, 0, "a clean growth must not promote");
        assert!(r.converged);
        assert_properties(&r);
    }

    /// Satellite: seeded property test interleaving SET/GET traffic
    /// with kills, promotions, restarts, and live ring growths at
    /// arbitrary points. Read-your-writes (version-tag watermarks)
    /// and no-acknowledged-write-lost must hold in every interleaving
    /// while at least one replica of each range survives (the victim
    /// is always a single non-entry machine); restored runs must also
    /// pass the quiesce convergence checks inside [`run`].
    #[test]
    fn interleaved_kills_and_growth_preserve_acked_writes() {
        use proptest::strategy::Strategy;
        // A full simulated cluster per case: bound the case count
        // rather than inheriting the 64-case default.
        if std::env::var("PROPTEST_CASES").is_err() {
            std::env::set_var("PROPTEST_CASES", "5");
        }
        proptest::test_runner::run(
            "interleaved_kills_and_growth_preserve_acked_writes",
            |rng| {
                let (seed, ops, kill_at, down_for, victim, restore, add, add_at) = (
                    proptest::arbitrary::any::<u64>(),
                    24u32..64,
                    0u32..24,
                    4u32..40,
                    1usize..3,
                    proptest::arbitrary::any::<bool>(),
                    proptest::arbitrary::any::<bool>(),
                    0u32..24,
                )
                    .generate(rng);
                let r = run(&ChaosConfig {
                    shards: 3,
                    replicas: 2,
                    spares: add as usize,
                    ops,
                    kills: vec![ChaosKill {
                        victim,
                        at: kill_at,
                        restore_at: restore.then_some(kill_at + down_for),
                    }],
                    add_at: add.then_some(add_at),
                    measured_gets: 8,
                    seed,
                });
                proptest::prop_assert_eq!(r.failed, 0, "failed requests: {}", r.failed);
                proptest::prop_assert_eq!(
                    r.mismatches,
                    0,
                    "stale or lost acknowledged writes: {}",
                    r.mismatches
                );
                proptest::prop_assert!(r.kills == 1 && r.promotions + r.repl_fanout_failures >= 1);
                proptest::prop_assert_eq!(r.adds, add as u32);
                proptest::prop_assert_eq!(r.converged, restore);
                Ok(())
            },
        );
    }
}
