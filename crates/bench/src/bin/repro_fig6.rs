//! Figure 6 — memcached four-core latency vs throughput.
//!
//! Paper anchors at a 500 µs 99th-percentile SLA: EbbRT +58% over
//! Linux-VM, −5% vs Linux native, but the highest peak throughput (the
//! 20-core client cannot saturate the EbbRT server).

use ebbrt_apps::mutilate::{self, ExperimentConfig};
use ebbrt_sim::CostProfile;

fn main() {
    let loads: &[u64] = &[150_000, 350_000, 550_000, 750_000, 950_000];
    let systems: Vec<(&str, CostProfile)> = vec![
        ("EbbRT", CostProfile::ebbrt_vm()),
        ("Linux", CostProfile::linux_vm()),
        ("LinuxNative", CostProfile::linux_native()),
    ];
    println!("Figure 6: memcached four-core latency vs throughput (ETC, pipeline 4)");
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>10}",
        "system", "offered", "achieved", "mean_us", "p99_us"
    );
    let mut rows = Vec::new();
    for (name, profile) in &systems {
        for &load in loads {
            let mut cfg = ExperimentConfig::new(4, profile.clone(), load);
            // Shorter window: the 4-core sweep is 4x the event volume.
            cfg.duration_ns = 120_000_000;
            cfg.warmup_ns = 30_000_000;
            let s = mutilate::run(&cfg);
            println!(
                "{:<12} {:>10} {:>12.0} {:>10.1} {:>10.1}",
                name, load, s.achieved_rps, s.mean_us, s.p99_us
            );
            rows.push(format!(
                "{},{},{:.0},{:.1},{:.1}",
                name, load, s.achieved_rps, s.mean_us, s.p99_us
            ));
            if s.p99_us > 1500.0 {
                break;
            }
        }
    }
    let path = ebbrt_bench::write_csv(
        "fig6.csv",
        "system,offered_rps,achieved_rps,mean_us,p99_us",
        &rows,
    )
    .expect("write csv");
    println!("wrote {}", path.display());
    println!("paper anchors @500us p99 SLA: EbbRT +58% vs Linux-VM, -5% vs native, highest peak");
}
