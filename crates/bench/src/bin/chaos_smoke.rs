//! Deterministic chaos smoke for CI: kill and restart a shard machine
//! mid-traffic against the replicated sharded memcached cluster, and
//! enforce the robustness properties (zero failed client requests,
//! read-your-writes across promotions, no acknowledged write lost,
//! restart re-sync converging back to ring placement, zero-copy local
//! fast path intact). A second pinned-seed scenario grows the ring
//! onto a spare machine mid-traffic and kills a transfer source while
//! the migration is in flight — live rebalancing must be invisible to
//! clients too.
//!
//! Everything runs on virtual time with a fixed seed, so a pass here
//! is a proof about every run, not a lucky draw. `CHAOS_SEED`
//! overrides the op-mix seed for manual exploration.

fn main() {
    let mut cfg = ebbrt_bench::chaos::ChaosConfig::default();
    if let Ok(seed) = std::env::var("CHAOS_SEED") {
        cfg.seed = seed.parse().expect("CHAOS_SEED must be a u64");
    }
    let r = ebbrt_bench::chaos::run(&cfg);
    println!("{}", ebbrt_bench::chaos::format_report(&r));
    ebbrt_bench::chaos::assert_properties(&r);
    assert!(r.kills >= 1, "the smoke must actually kill a machine");
    assert!(r.converged, "the restarted machine must converge");

    let r = ebbrt_bench::chaos::smoke_rebalance();
    println!("{}", ebbrt_bench::chaos::format_report(&r));
    ebbrt_bench::chaos::assert_properties(&r);
    assert_eq!(
        (r.kills, r.adds),
        (1, 1),
        "the rebalance smoke must kill a source mid-transfer"
    );
    assert!(r.converged, "the grown cluster must converge");
    println!("chaos smoke: all robustness properties held");
}
