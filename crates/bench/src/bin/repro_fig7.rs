//! Figure 7 — V8 benchmark suite scores, normalized to Linux.
//!
//! Paper anchors: EbbRT wins every kernel, +13.9% on the
//! memory-intensive Splay, +4.09% overall (geometric mean).

use ebbrt_apps::jsrt;

fn main() {
    let scores = jsrt::run_suite(0xEBB7);
    println!("Figure 7: V8 suite normalized scores (EbbRT / Linux; >1.0 = EbbRT faster)");
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "benchmark", "ebbrt_ms", "linux_ms", "normalized"
    );
    let mut rows = Vec::new();
    for s in &scores {
        println!(
            "{:<14} {:>12.2} {:>12.2} {:>12.3}",
            s.name,
            s.ebbrt_ns as f64 / 1e6,
            s.linux_ns as f64 / 1e6,
            s.normalized()
        );
        rows.push(format!(
            "{},{:.3},{:.3},{:.4}",
            s.name,
            s.ebbrt_ns as f64 / 1e6,
            s.linux_ns as f64 / 1e6,
            s.normalized()
        ));
    }
    let total = jsrt::geometric_mean(&scores);
    println!("{:<14} {:>12} {:>12} {:>12.3}", "Overall", "", "", total);
    rows.push(format!("Overall,,,{total:.4}"));
    let path = ebbrt_bench::write_csv("fig7.csv", "benchmark,ebbrt_ms,linux_ms,normalized", &rows)
        .expect("write csv");
    println!("wrote {}", path.display());
    println!("paper anchors: +13.9% Splay, +4.09% overall");
}
