//! Figure 4 — NetPIPE: goodput as a function of message size.
//!
//! Paper anchors: EbbRT one-way 9.7 µs at 64 B, 4 Gbps goodput with
//! 64 kB messages; Linux 15.9 µs at 64 B, needing 384 kB to reach
//! 4 Gbps; both near wire speed for very large messages.

use ebbrt_apps::netpipe;
use ebbrt_sim::CostProfile;

fn main() {
    let sizes: &[usize] = &[
        64,
        256,
        1024,
        4 * 1024,
        16 * 1024,
        64 * 1024,
        128 * 1024,
        256 * 1024,
        384 * 1024,
        512 * 1024,
        800 * 1024,
    ];
    println!("Figure 4: NetPIPE goodput vs message size");
    println!(
        "{:>9} {:>14} {:>14} {:>14} {:>14}",
        "bytes", "EbbRT us", "EbbRT Mbps", "Linux us", "Linux Mbps"
    );
    let mut rows = Vec::new();
    for &size in sizes {
        let rounds = if size <= 4096 { 50 } else { 8 };
        let e = netpipe::run(&CostProfile::ebbrt_vm(), size, rounds);
        let l = netpipe::run(&CostProfile::linux_vm(), size, rounds);
        println!(
            "{:>9} {:>14.1} {:>14.0} {:>14.1} {:>14.0}",
            size, e.one_way_us, e.goodput_mbps, l.one_way_us, l.goodput_mbps
        );
        rows.push(format!(
            "{},{:.2},{:.0},{:.2},{:.0}",
            size, e.one_way_us, e.goodput_mbps, l.one_way_us, l.goodput_mbps
        ));
    }
    let path = ebbrt_bench::write_csv(
        "fig4.csv",
        "message_bytes,ebbrt_oneway_us,ebbrt_mbps,linux_oneway_us,linux_mbps",
        &rows,
    )
    .expect("write csv");
    println!("wrote {}", path.display());
    println!("paper anchors: EbbRT 9.7us @64B, 4Gbps @64kB; Linux 15.9us @64B, 4Gbps @384kB");

    // Steady-state pooled-throughput mode: warm the per-core buffer
    // pools, then measure — and verify — the zero-copy property of the
    // hot path via the IOBuf counters.
    println!();
    println!("Steady state (pool-hot, post-warmup measurement):");
    println!(
        "{:>9} {:>14} {:>14} {:>12} {:>10}",
        "bytes", "EbbRT Mbps", "copied bytes", "fresh bufs", "pool hits"
    );
    let mut steady_rows = Vec::new();
    for &size in &[4 * 1024, 64 * 1024, 256 * 1024] {
        let s = netpipe::run_steady(&CostProfile::ebbrt_vm(), size, 8, 16);
        println!(
            "{:>9} {:>14.0} {:>14} {:>12} {:>10}",
            size, s.goodput_mbps, s.bytes_copied, s.bufs_allocated, s.pool_hits
        );
        assert_eq!(
            (s.bytes_copied, s.bufs_allocated),
            (0, 0),
            "steady-state pipeline must be zero-copy and pool-hot"
        );
        steady_rows.push(format!(
            "{},{:.0},{},{},{}",
            size, s.goodput_mbps, s.bytes_copied, s.bufs_allocated, s.pool_hits
        ));
    }
    let path = ebbrt_bench::write_csv(
        "fig4_steady.csv",
        "message_bytes,ebbrt_mbps,bytes_copied,bufs_allocated,pool_hits",
        &steady_rows,
    )
    .expect("write csv");
    println!("wrote {}", path.display());

    // High-connection-count dispatch: every TCP segment re-arms the
    // connection's RTO (and often its delayed-ACK) timer, so this is
    // where the O(1) timer wheel shows up end-to-end — per-request
    // latency stays flat as the number of connections (each holding
    // persistent timers) grows.
    println!();
    println!("High-connection-count dispatch (memcached GET-heavy, EbbRT profile):");
    println!(
        "{:>9} {:>14} {:>12} {:>12}",
        "conns", "achieved rps", "mean us", "p99 us"
    );
    let mut conn_rows = Vec::new();
    for &conns in &[16usize, 64, 256] {
        let mut cfg =
            ebbrt_apps::mutilate::ExperimentConfig::new(1, CostProfile::ebbrt_vm(), 150_000);
        cfg.connections = conns;
        cfg.warmup_ns = 20_000_000;
        cfg.duration_ns = 50_000_000;
        let s = ebbrt_apps::mutilate::run(&cfg);
        println!(
            "{:>9} {:>14.0} {:>12.1} {:>12.1}",
            conns, s.achieved_rps, s.mean_us, s.p99_us
        );
        assert!(
            s.achieved_rps > 0.0,
            "high-connection-count run served no requests"
        );
        conn_rows.push(format!(
            "{},{:.0},{:.2},{:.2}",
            conns, s.achieved_rps, s.mean_us, s.p99_us
        ));
    }
    let path = ebbrt_bench::write_csv(
        "fig4_conn_sweep.csv",
        "connections,achieved_rps,mean_us,p99_us",
        &conn_rows,
    )
    .expect("write csv");
    println!("wrote {}", path.display());

    // N-core RSS sweep: the zero-copy/zero-allocation property across
    // event cores and both buffer size classes, under deliberately
    // skewed traffic (one hot connection). The per-class counters
    // *assert* that steady-state GETs copy and allocate nothing and
    // that > 2 KiB SETs never take the one-shot-allocation fallback;
    // the depot counters quantify the cross-core buffer migration the
    // skew induces.
    println!();
    println!("N-core RSS sweep (multi-size-class pools, skewed traffic):");
    let mut sweep_rows = Vec::new();
    for cores in [1usize, 2, 4, 8] {
        let r = ebbrt_bench::rss_sweep::run(&ebbrt_bench::rss_sweep::SweepConfig::for_cores(cores));
        println!("{}", ebbrt_bench::rss_sweep::format_report(&r));
        if cores >= 4 {
            assert!(
                r.cross_core_conns > 0,
                "RSS must split flows across cores at N >= 4"
            );
        }
        ebbrt_bench::rss_sweep::assert_properties(&r);
        let gp = &r.get_phase;
        let sp = &r.set_phase;
        sweep_rows.push(format!(
            "{},{},{},{},{},{},{},{},{},{},{}",
            cores,
            r.conns,
            r.cross_core_conns,
            gp.requests,
            gp.bytes_copied,
            gp.bufs_allocated,
            gp.small.hits,
            gp.small.depot_out + gp.large.depot_out,
            sp.requests,
            sp.large.hits,
            sp.large.fallback_allocs,
        ));
    }
    let path = ebbrt_bench::write_csv(
        "fig4_rss_sweep.csv",
        "cores,conns,cross_core_conns,get_requests,get_bytes_copied,get_bufs_allocated,\
         get_small_hits,get_depot_out,set_requests,set_large_hits,set_large_fallbacks",
        &sweep_rows,
    )
    .expect("write csv");
    println!("wrote {}", path.display());

    // Burst-mode point: the same pipelined GET workload with the
    // driver forced to per-packet delivery vs whole receive bursts.
    // The vector path's amortization (one PCB borrow, one coalesced
    // delivery, one ACK decision per connection per pass) is the
    // paper's run-to-completion dataplane taken to its batched
    // conclusion — the gate that per-burst beats per-packet lives in
    // the `burst_path` bench; this records the curve.
    println!();
    println!("Burst-mode dataplane: pipelined memcached GETs, per-packet vs per-burst");
    println!("{}", ebbrt_bench::burst_path::table_header_virtual());
    let mut burst_rows = Vec::new();
    for burst in [1usize, 8, 64] {
        let r = ebbrt_bench::burst_path::run(burst);
        println!("{}", ebbrt_bench::burst_path::format_report_virtual(&r));
        burst_rows.push(format!(
            "{},{:.0},{:.2},{},{:.2},{}",
            r.burst_frames,
            r.pps,
            r.virtual_ns as f64 / r.requests as f64 / 1000.0,
            r.max_burst_seen,
            r.frames_per_burst(),
            r.coalesced_callbacks,
        ));
    }
    let path = ebbrt_bench::write_csv(
        "fig4_burst_mode.csv",
        "burst_frames,pps_virtual,us_per_req,max_burst_seen,frames_per_burst,\
         coalesced_callbacks",
        &burst_rows,
    )
    .expect("write csv");
    println!("wrote {}", path.display());

    // Multi-machine point: the sharded memcached cluster on the
    // distributed-Ebb layer. Local-shard GETs take the zero-copy path
    // measured above; cross-shard GETs function-ship to the owner
    // machine (proxy rep → messenger) — the measured split is the cost
    // of distribution the paper's Ebbs hide behind one id.
    println!();
    println!("Multi-machine sharded memcached (distributed Ebbs): local vs remote-shipped GET");
    let mut dist_rows = Vec::new();
    for shards in [2usize, 3, 4] {
        let r = ebbrt_bench::dist_memcached::run(&ebbrt_bench::dist_memcached::DistConfig {
            shards,
            warmup_gets: 32,
            measured_gets: 128,
            probe_failure: true,
            cores: 1,
        });
        println!("{}", ebbrt_bench::dist_memcached::format_report(&r));
        ebbrt_bench::dist_memcached::assert_properties(&r);
        dist_rows.push(format!(
            "{},{:.2},{:.2},{},{},{}",
            shards,
            r.local_mean_us,
            r.remote_mean_us,
            r.remote_owner_gets,
            r.local_copied,
            r.local_allocated,
        ));
    }
    let path = ebbrt_bench::write_csv(
        "fig4_dist_shard.csv",
        "shards,local_get_us,remote_get_us,owner_served_gets,local_bytes_copied,\
         local_bufs_allocated",
        &dist_rows,
    )
    .expect("write csv");
    println!("wrote {}", path.display());

    // Replication point: the same cluster with R=1 vs R=2 replicas per
    // range, fault-free — what the durability of an acknowledged write
    // costs the read path (answer: nothing for local-range GETs — the
    // version-watermark gate is an atomic load — and one ship for
    // remote ones; writes pay the fan-out).
    println!();
    println!("Replicated sharded memcached: GET latency, R=1 vs R=2");
    let mut repl_rows = Vec::new();
    for replicas in [1usize, 2] {
        let r = ebbrt_bench::chaos::run(&ebbrt_bench::chaos::ChaosConfig {
            shards: 3,
            replicas,
            spares: 0,
            ops: 64,
            kills: vec![],
            add_at: None,
            measured_gets: 128,
            seed: 0xF16_4EB,
        });
        println!("{}", ebbrt_bench::chaos::format_report(&r));
        ebbrt_bench::chaos::assert_properties(&r);
        repl_rows.push(format!(
            "{},{},{:.2},{:.2},{},{}",
            r.shards,
            r.replicas,
            r.local_get_mean_us,
            r.remote_get_mean_us,
            r.local_copied,
            r.local_allocated,
        ));
    }
    let path = ebbrt_bench::write_csv(
        "fig4_replicated.csv",
        "shards,replicas,local_get_us,remote_get_us,local_bytes_copied,local_bufs_allocated",
        &repl_rows,
    )
    .expect("write csv");
    println!("wrote {}", path.display());

    // Rebalance point: the same replicated cluster, quiet vs growing
    // the ring onto a spare machine mid-traffic. The mean traffic-op
    // latency with a live migration in flight (dual-apply forwarding,
    // snapshot+delta transfers, cutover) must stay under a
    // deterministic ceiling — rebalancing is a background activity,
    // not an outage.
    println!();
    println!("Replicated sharded memcached: traffic latency, quiet vs live rebalance");
    let mut rebal_rows = Vec::new();
    for add in [false, true] {
        let r = ebbrt_bench::chaos::run(&ebbrt_bench::chaos::ChaosConfig {
            shards: 3,
            replicas: 2,
            spares: add as usize,
            ops: 64,
            kills: vec![],
            add_at: add.then_some(12),
            measured_gets: 128,
            seed: 0xF16_4EB,
        });
        println!("{}", ebbrt_bench::chaos::format_report(&r));
        ebbrt_bench::chaos::assert_properties(&r);
        assert!(r.converged);
        if add {
            assert_eq!(r.adds, 1);
            assert!(
                r.traffic_mean_us < 2_000.0,
                "mean traffic latency under a live transfer must stay below 2 ms, got {:.1} us",
                r.traffic_mean_us
            );
        }
        rebal_rows.push(format!(
            "{},{},{:.2},{:.2},{:.2}",
            if add { "rebalance" } else { "quiet" },
            r.requests,
            r.traffic_mean_us,
            r.local_get_mean_us,
            r.remote_get_mean_us,
        ));
    }
    let path = ebbrt_bench::write_csv(
        "fig4_rebalance.csv",
        "scenario,requests,traffic_mean_us,local_get_us,remote_get_us",
        &rebal_rows,
    )
    .expect("write csv");
    println!("wrote {}", path.display());

    // Overload point: one server core shared by a well-behaved tenant
    // and an 8× hotter one, with the per-class fair scheduler vs the
    // same paced link in FIFO (the no-QoS control). The gate that fair
    // scheduling holds the well-behaved p99 under its ceiling lives in
    // the `overload_path` bench; this records the two rows.
    println!();
    println!("Overload control: well-behaved vs 8x hot tenant, fair vs fifo");
    println!("{}", ebbrt_bench::overload::table_header());
    let mut overload_rows = Vec::new();
    for mode in [
        ebbrt_core::qos::QosMode::Fair,
        ebbrt_core::qos::QosMode::Fifo,
    ] {
        let r = ebbrt_bench::overload::run(mode);
        println!("{}", ebbrt_bench::overload::format_report(&r));
        overload_rows.push(format!(
            "{},{},{:.2},{:.2},{},{},{},{}",
            match r.mode {
                ebbrt_core::qos::QosMode::Fair => "fair",
                ebbrt_core::qos::QosMode::Fifo => "fifo",
            },
            r.gold_responses,
            r.gold_mean_ns / 1000.0,
            r.gold_p99_ns as f64 / 1000.0,
            r.gold_failures,
            r.hot_responses,
            r.steady_bytes_copied,
            r.steady_bufs_allocated,
        ));
    }
    let path = ebbrt_bench::write_csv(
        "fig4_overload.csv",
        "mode,gold_requests,gold_mean_us,gold_p99_us,gold_failures,hot_requests,\
         steady_bytes_copied,steady_bufs_allocated",
        &overload_rows,
    )
    .expect("write csv");
    println!("wrote {}", path.display());

    // Connection-scale point: the slab-PCB demux under an idle herd.
    // Each row establishes that many connections, leaves all but a
    // fixed probe set idle, and measures the probes' sparse GET p99
    // through the same slab every idle connection occupies. The gate
    // that the curve stays flat to 10^6 conns lives in the
    // `conn_scale` bench; this records the figure's lower points.
    println!();
    println!("Connection scale: sparse GET p99 with an idle established herd");
    println!("{}", ebbrt_bench::conn_scale::table_header());
    let conn_points: &[usize] = if cfg!(debug_assertions) {
        &[1_000, 16_000]
    } else {
        &[1_000, 16_000, 64_000]
    };
    let mut scale_rows = Vec::new();
    for &conns in conn_points {
        let r = ebbrt_bench::conn_scale::run(conns, None);
        println!("{}", ebbrt_bench::conn_scale::format_report(&r));
        scale_rows.push(format!(
            "{},{},{:.1},{},{},{},{},{}",
            r.conns,
            r.sampled,
            r.mean_ns,
            r.p99_ns,
            r.failures,
            r.accounted_bytes_per_idle_conn,
            r.steady_bytes_copied,
            r.steady_bufs_allocated,
        ));
    }
    let path = ebbrt_bench::write_csv(
        "fig4_conn_scale.csv",
        "conns,sampled,mean_ns,p99_ns,failures,accounted_bytes_per_conn,\
         steady_bytes_copied,steady_bufs_allocated",
        &scale_rows,
    )
    .expect("write csv");
    println!("wrote {}", path.display());
}
