//! Figure 5 — memcached single-core latency vs throughput.
//!
//! Four lines: EbbRT (VM), Linux (VM), Linux native, OSv (VM). Paper
//! anchors at a 500 µs 99th-percentile SLA: EbbRT +58% throughput over
//! Linux-VM and +11.7% over Linux native; OSv uncompetitive.

use ebbrt_apps::mutilate::{self, ExperimentConfig};
use ebbrt_sim::CostProfile;

fn main() {
    let loads: &[u64] = &[
        20_000, 60_000, 100_000, 140_000, 180_000, 220_000, 260_000, 300_000,
    ];
    let systems: Vec<(&str, CostProfile)> = vec![
        ("EbbRT", CostProfile::ebbrt_vm()),
        ("Linux", CostProfile::linux_vm()),
        ("LinuxNative", CostProfile::linux_native()),
        ("OSv", CostProfile::osv_vm()),
    ];
    println!("Figure 5: memcached single-core latency vs throughput (ETC, pipeline 4)");
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>10}",
        "system", "offered", "achieved", "mean_us", "p99_us"
    );
    let mut rows = Vec::new();
    for (name, profile) in &systems {
        for &load in loads {
            let cfg = ExperimentConfig::new(1, profile.clone(), load);
            let s = mutilate::run(&cfg);
            println!(
                "{:<12} {:>10} {:>12.0} {:>10.1} {:>10.1}",
                name, load, s.achieved_rps, s.mean_us, s.p99_us
            );
            rows.push(format!(
                "{},{},{:.0},{:.1},{:.1}",
                name, load, s.achieved_rps, s.mean_us, s.p99_us
            ));
            // Past saturation the curve is vertical; stop the sweep.
            if s.p99_us > 1500.0 {
                break;
            }
        }
    }
    let path = ebbrt_bench::write_csv(
        "fig5.csv",
        "system,offered_rps,achieved_rps,mean_us,p99_us",
        &rows,
    )
    .expect("write csv");
    println!("wrote {}", path.display());
    println!("paper anchors @500us p99 SLA: EbbRT +58% vs Linux-VM, +11.7% vs native; OSv worst");
}
