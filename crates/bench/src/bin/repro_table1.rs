//! Table 1 — object dispatch costs for 1000 invocations.
//!
//! Measures, in real machine cycles (scaled to the paper's 2.6 GHz),
//! 1000 invocations of an empty method through: an inlinable call, a
//! never-inlined call, a virtual (dyn) call, the translation-table Ebb
//! dispatch (`EbbRef::with`), the memoized `CachedEbbRef` dispatch the
//! system's hot paths use, and a hash-table dispatcher replicating the
//! paper's hosted environment (its "roughly 19 times" configuration —
//! kept bench-locally now that the system itself dispatches every
//! environment through the native translation array).

use std::any::Any;
use std::collections::HashMap;
use std::hint::black_box;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

use ebbrt_core::clock::ManualClock;
use ebbrt_core::cpu::CoreId;
use ebbrt_core::ebb::{CachedEbbRef, EbbId, EbbRef, MulticoreEbb};
use ebbrt_core::runtime::{self, Runtime};

/// The empty-method target object.
struct Obj {
    calls: std::cell::Cell<u64>,
}

impl Obj {
    fn new() -> Obj {
        Obj {
            calls: std::cell::Cell::new(0),
        }
    }

    #[inline(always)]
    fn call_inline(&self) {
        self.calls.set(self.calls.get().wrapping_add(1));
    }

    #[inline(never)]
    fn call_no_inline(&self) {
        self.calls.set(self.calls.get().wrapping_add(1));
    }
}

trait Callable {
    fn call_virtual(&self);
}

impl Callable for Obj {
    fn call_virtual(&self) {
        self.calls.set(self.calls.get().wrapping_add(1));
    }
}

impl MulticoreEbb for Obj {
    type Root = ();
    fn create_rep(_: &Arc<()>, _: CoreId) -> Self {
        Obj::new()
    }
}

/// The paper's hosted dispatch: hash-map lookup plus dynamic downcast
/// per call (Linux userspace lacks per-core virtual memory regions).
struct HashTableDispatch {
    map: HashMap<u32, Rc<dyn Any>>,
}

impl HashTableDispatch {
    fn with_rep<T: 'static, R>(&self, id: EbbId, f: impl FnOnce(&T) -> R) -> R {
        let rep = self
            .map
            .get(&id.0)
            .expect("no hosted rep")
            .downcast_ref::<T>()
            .expect("hosted rep type mismatch");
        f(rep)
    }
}

const INVOCATIONS: usize = 1000;
const REPEATS: usize = 20_000;
const CYCLES_PER_NS: f64 = 2.6; // the paper's 2.6 GHz Xeon E5-2690

fn measure(mut f: impl FnMut()) -> f64 {
    // Warmup.
    for _ in 0..REPEATS / 10 {
        f();
    }
    let start = Instant::now();
    for _ in 0..REPEATS {
        f();
    }
    let ns = start.elapsed().as_nanos() as f64 / REPEATS as f64;
    ns * CYCLES_PER_NS
}

fn main() {
    let rt = Runtime::new(1, Arc::new(ManualClock::new()));
    let _g = runtime::enter(rt, CoreId(0));

    let obj = Obj::new();
    let dyn_obj: &dyn Callable = &obj;
    let ebb = EbbRef::<Obj>::create(());
    ebb.with(|o| o.call_inline()); // fault in the rep
    let cached = CachedEbbRef::new(ebb);
    cached.with(|o| o.call_inline()); // prime the memo
    let hosted = HashTableDispatch {
        map: HashMap::from([(ebb.id().0, Rc::new(Obj::new()) as Rc<dyn Any>)]),
    };

    let inline = measure(|| {
        for _ in 0..INVOCATIONS {
            black_box(&obj).call_inline();
        }
    });
    let no_inline = measure(|| {
        for _ in 0..INVOCATIONS {
            black_box(&obj).call_no_inline();
        }
    });
    let virt = measure(|| {
        for _ in 0..INVOCATIONS {
            black_box(dyn_obj).call_virtual();
        }
    });
    let ebb_cycles = measure(|| {
        for _ in 0..INVOCATIONS {
            black_box(ebb).with(|o| o.call_inline());
        }
    });
    let cached_cycles = measure(|| {
        for _ in 0..INVOCATIONS {
            black_box(&cached).with(|o| o.call_inline());
        }
    });
    let hosted_cycles = measure(|| {
        for _ in 0..INVOCATIONS {
            hosted.with_rep::<Obj, _>(black_box(ebb.id()), |o| o.call_inline());
        }
    });

    println!("Table 1: object dispatch costs for {INVOCATIONS} invocations (cycles @2.6GHz)");
    println!("{:<14} {:>10} {:>10}", "Method", "Paper", "Measured");
    println!("{:<14} {:>10} {:>10.0}", "Inline", 1052, inline);
    println!("{:<14} {:>10} {:>10.0}", "No Inline", 4047, no_inline);
    println!("{:<14} {:>10} {:>10.0}", "Virtual", 5038, virt);
    println!("{:<14} {:>10} {:>10.0}", "Inline Ebb", 1448, ebb_cycles);
    println!("{:<14} {:>10} {:>10.0}", "Cached Ebb", "-", cached_cycles);
    println!(
        "{:<14} {:>10} {:>10.0}  ({:.1}x native Ebb; paper ~19x)",
        "Hosted Ebb",
        "-",
        hosted_cycles,
        hosted_cycles / ebb_cycles
    );

    let rows = vec![
        format!("Inline,1052,{inline:.0}"),
        format!("No Inline,4047,{no_inline:.0}"),
        format!("Virtual,5038,{virt:.0}"),
        format!("Inline Ebb,1448,{ebb_cycles:.0}"),
        format!("Cached Ebb,,{cached_cycles:.0}"),
        format!("Hosted Ebb,,{hosted_cycles:.0}"),
    ];
    let path = ebbrt_bench::write_csv("table1.csv", "method,paper_cycles,measured_cycles", &rows)
        .expect("write csv");
    println!("wrote {}", path.display());
}
