//! Ablations of the design choices DESIGN.md calls out.
//!
//! 1. **Adaptive polling** (§3.2): the memcached saturation behaviour
//!    with the driver forced to interrupt-only mode vs adaptive. The
//!    per-interrupt entry cost at high load is what polling removes.
//! 2. **Function-offload caching** (§4.3's future-work note): RPC
//!    round trips for repeated FileSystem reads, naïve vs caching
//!    representative.

use std::cell::Cell;
use std::rc::Rc;

use ebbrt_apps::mutilate::{self, ExperimentConfig};
use ebbrt_apps::spawn_with;
use ebbrt_core::cpu::CoreId;
use ebbrt_hosted::fs::{CachingFsClient, FsClient, FsServer};
use ebbrt_hosted::messenger::Messenger;
use ebbrt_net::netif::NetIf;
use ebbrt_net::types::Ipv4Addr;
use ebbrt_sim::{CostProfile, LinkParams, SimMachine, SimWorld, Switch};

fn ablation_polling() {
    println!("-- ablation 1: adaptive polling vs interrupt-only (memcached, 1 core) --");
    println!(
        "{:<16} {:>10} {:>12} {:>10} {:>10}",
        "driver", "offered", "achieved", "mean_us", "p99_us"
    );
    for load in [200_000u64, 260_000] {
        for (name, burst) in [("adaptive", None), ("interrupt-only", Some(usize::MAX))] {
            // Interrupt-only mode: an enter threshold no burst reaches.
            if let Some(t) = burst {
                ebbrt_net::driver::set_poll_enter_burst(t);
            } else {
                ebbrt_net::driver::set_poll_enter_burst(ebbrt_net::driver::POLL_ENTER_BURST);
            }
            let cfg = ExperimentConfig::new(1, CostProfile::ebbrt_vm(), load);
            let s = mutilate::run(&cfg);
            println!(
                "{:<16} {:>10} {:>12.0} {:>10.1} {:>10.1}",
                name, load, s.achieved_rps, s.mean_us, s.p99_us
            );
        }
    }
    ebbrt_net::driver::set_poll_enter_burst(ebbrt_net::driver::POLL_ENTER_BURST);
}

fn ablation_fs_caching() {
    println!("\n-- ablation 2: FileSystem offload, naive vs caching representative --");
    let reads = 32;
    for caching in [false, true] {
        let w = SimWorld::new();
        let sw = Switch::new(&w);
        let hosted = SimMachine::create(&w, "hosted", 1, CostProfile::linux_vm(), [0x01; 6]);
        let native = SimMachine::create(&w, "native", 1, CostProfile::ebbrt_vm(), [0x02; 6]);
        sw.attach(hosted.nic(), LinkParams::default());
        sw.attach(native.nic(), LinkParams::default());
        let mask = Ipv4Addr::new(255, 255, 255, 0);
        let h_if = NetIf::attach(&hosted, Ipv4Addr::new(10, 0, 0, 1), mask);
        let n_if = NetIf::attach(&native, Ipv4Addr::new(10, 0, 0, 2), mask);
        w.run_to_idle();
        let h_msgr = Messenger::start(&h_if);
        let n_msgr = Messenger::start(&n_if);
        let server = FsServer::start(&h_msgr);
        server.put("/lib/app.js", vec![b'x'; 4096]);
        let client = FsClient::new(&n_msgr, Ipv4Addr::new(10, 0, 0, 1));
        let cache = CachingFsClient::new(Rc::clone(&client));

        let start = Rc::new(Cell::new(0u64));
        let end = Rc::new(Cell::new(0u64));
        let s2 = Rc::clone(&start);
        let e2 = Rc::clone(&end);
        // Chain `reads` sequential reads.
        fn next(
            cache: Rc<CachingFsClient>,
            raw: Rc<FsClient>,
            caching: bool,
            left: usize,
            end: Rc<Cell<u64>>,
        ) {
            if left == 0 {
                end.set(ebbrt_core::runtime::with_current(|rt| rt.now_ns()));
                return;
            }
            let cache2 = Rc::clone(&cache);
            let raw2 = Rc::clone(&raw);
            let done = move |_d: Option<Vec<u8>>| {
                next(cache2, raw2, caching, left - 1, end);
            };
            if caching {
                cache.read("/lib/app.js", done);
            } else {
                raw.read("/lib/app.js", done);
            }
        }
        let c2 = Rc::clone(&cache);
        let r2 = Rc::clone(&client);
        spawn_with(&native, CoreId(0), (), move |_| {
            s2.set(ebbrt_core::runtime::with_current(|rt| rt.now_ns()));
            next(c2, r2, caching, reads, e2);
        });
        w.run_to_idle();
        let elapsed = end.get().saturating_sub(start.get());
        println!(
            "  {:<8} {} reads: {:>8.1} us total, {} remote RPCs",
            if caching { "caching" } else { "naive" },
            reads,
            elapsed as f64 / 1000.0,
            server.requests.get()
        );
    }
}

fn main() {
    ablation_polling();
    ablation_fs_caching();
}
