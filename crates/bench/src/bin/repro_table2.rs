//! Table 2 — node.js webserver latency under moderate load.
//!
//! Paper: EbbRT 90.54 µs mean / 123.00 µs 99th; Linux 112.83 µs mean /
//! 199.00 µs 99th (Linux +24.6% mean, +61.8% p99).

use ebbrt_apps::webserver;
use ebbrt_sim::CostProfile;

fn main() {
    // Moderate load: 8 keep-alive connections with 1 ms think time
    // (~50% single-core utilization on the EbbRT server).
    let e = webserver::run(&CostProfile::ebbrt_vm(), 8, 1_000_000);
    let l = webserver::run(&CostProfile::linux_vm(), 8, 1_000_000);
    println!("Table 2: node.js webserver latency (148 B static response)");
    println!(
        "{:<8} {:>12} {:>16} {:>12}",
        "system", "mean_us", "99th_pct_us", "rps"
    );
    println!(
        "{:<8} {:>12.2} {:>16.2} {:>12.0}   (paper: 90.54 / 123.00)",
        "EbbRT", e.mean_us, e.p99_us, e.rps
    );
    println!(
        "{:<8} {:>12.2} {:>16.2} {:>12.0}   (paper: 112.83 / 199.00)",
        "Linux", l.mean_us, l.p99_us, l.rps
    );
    println!(
        "Linux/EbbRT: mean +{:.1}% (paper +24.6%), p99 +{:.1}% (paper +61.8%)",
        (l.mean_us / e.mean_us - 1.0) * 100.0,
        (l.p99_us / e.p99_us - 1.0) * 100.0
    );
    let rows = vec![
        format!("EbbRT,{:.2},{:.2},{:.0}", e.mean_us, e.p99_us, e.rps),
        format!("Linux,{:.2},{:.2},{:.0}", l.mean_us, l.p99_us, l.rps),
    ];
    let path =
        ebbrt_bench::write_csv("table2.csv", "system,mean_us,p99_us,rps", &rows).expect("csv");
    println!("wrote {}", path.display());
}
