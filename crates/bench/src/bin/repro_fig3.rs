//! Figure 3 — per-core memory allocation throughput vs core count.
//!
//! Each core repeatedly measures the time to allocate and free an 8 B
//! object ten times; we report the mean cycles per 10-op measurement,
//! exactly as §4.1.2 describes. The EbbRT allocator runs on the
//! threaded native backend (per-core slab reps, no synchronization);
//! the glibc and jemalloc models run on plain threads. The paper's
//! shape: EbbRT flat/linear; glibc's latency climbing (3.8× EbbRT at
//! 24 cores); jemalloc linear but ~42% slower than EbbRT.

use std::sync::Arc;
use std::time::Instant;

use ebbrt_core::cpu::CoreId;
use ebbrt_core::native::NativeMachine;
use ebbrt_core::runtime;
use ebbrt_core::spinlock::SpinBarrier;
use ebbrt_mem::baseline::{GlibcModel, JemallocModel};
use ebbrt_mem::gp::{self, EbbrtMalloc};
use ebbrt_mem::{MallocLike, Topology};

const MEASUREMENTS: usize = 100_000;
const CYCLES_PER_NS: f64 = 2.6;

/// One core's benchmark loop: mean cycles for 10×(alloc+free 8 B).
fn core_loop(m: &dyn MallocLike, barrier: &SpinBarrier) -> f64 {
    // Warmup fills the caches.
    for _ in 0..1000 {
        let a = m.alloc(8);
        m.free(a, 8);
    }
    barrier.wait();
    let start = Instant::now();
    for _ in 0..MEASUREMENTS {
        for _ in 0..10 {
            let a = m.alloc(8);
            m.free(a, 8);
        }
    }
    let total_ns = start.elapsed().as_nanos() as f64;
    total_ns / MEASUREMENTS as f64 * CYCLES_PER_NS
}

fn run_ebbrt(ncores: usize) -> f64 {
    NativeMachine::run(ncores, move || {
        let rt = runtime::current();
        let gp = gp::setup(
            Topology {
                ncores,
                nnodes: 2.min(ncores),
            },
            14,
        );
        let barrier = Arc::new(SpinBarrier::new(ncores));
        let futures: Vec<_> = (0..ncores)
            .map(|i| {
                let (p, f) = ebbrt_core::future::promise::<f64>();
                let barrier = Arc::clone(&barrier);
                rt.spawn(CoreId(i as u32), move || {
                    let m = EbbrtMalloc::new(gp);
                    p.set_value(core_loop(&m, &barrier));
                });
                f
            })
            .collect();
        let results = ebbrt_core::event::block_on(ebbrt_core::future::join_all(futures)).unwrap();
        results.iter().sum::<f64>() / results.len() as f64
    })
}

fn run_threads(m: Arc<dyn MallocLike>, ncores: usize) -> f64 {
    let barrier = Arc::new(SpinBarrier::new(ncores));
    let handles: Vec<_> = (0..ncores)
        .map(|_| {
            let m = Arc::clone(&m);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || core_loop(&*m, &barrier))
        })
        .collect();
    let results: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    results.iter().sum::<f64>() / results.len() as f64
}

fn main() {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let core_counts: Vec<usize> = [1usize, 2, 4, 8, 12, 24]
        .iter()
        .copied()
        .filter(|&c| c <= avail.max(2) * 2)
        .collect();
    println!("Figure 3: 10x(alloc+free 8B) mean cycles per core ({avail} hw threads available)");
    println!(
        "{:<7} {:>12} {:>12} {:>12}",
        "cores", "EbbRT", "glibc-model", "jemalloc"
    );
    let mut rows = Vec::new();
    for &n in &core_counts {
        let ebbrt = run_ebbrt(n);
        let glibc = run_threads(GlibcModel::new(GlibcModel::DEFAULT_ARENAS), n);
        // jemalloc sizes its arena pool to the CPU count (4x cores);
        // with thread-sticky shards the central path stays uncontended.
        let jemalloc = run_threads(JemallocModel::new(4 * n), n);
        println!("{n:<7} {ebbrt:>12.0} {glibc:>12.0} {jemalloc:>12.0}");
        rows.push(format!("{n},{ebbrt:.0},{glibc:.0},{jemalloc:.0}"));
    }
    let path = ebbrt_bench::write_csv(
        "fig3.csv",
        "cores,ebbrt_cycles,glibc_cycles,jemalloc_cycles",
        &rows,
    )
    .expect("write csv");
    println!("wrote {}", path.display());
    println!(
        "paper shape: EbbRT flat; jemalloc flat but ~42% slower; glibc 3.8x EbbRT at 24 cores"
    );
}
