//! # ebbrt-bench — the benchmark harness
//!
//! One `repro_*` binary per table/figure of the paper (see
//! EXPERIMENTS.md) plus Criterion microbenchmarks. The library itself
//! only hosts shared output helpers.

/// Writes a CSV under `target/repro/`, creating the directory.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("target/repro");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let mut contents = String::from(header);
    contents.push('\n');
    for r in rows {
        contents.push_str(r);
        contents.push('\n');
    }
    std::fs::write(&path, contents)?;
    Ok(path)
}
