//! # ebbrt-bench — the benchmark harness
//!
//! One `repro_*` binary per table/figure of the paper (see
//! EXPERIMENTS.md) plus Criterion microbenchmarks. The library hosts
//! shared output helpers and the [`rss_sweep`] workload driver that
//! both the `iobuf_path` bench and `repro_fig4` run (so CI enforces
//! its zero-copy assertions from two directions).

pub mod burst_path;
pub mod chaos;
pub mod conn_scale;
pub mod dist_memcached;
pub mod overload;
pub mod rss_sweep;

/// Writes a CSV under `target/repro/`, creating the directory.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("target/repro");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let mut contents = String::from(header);
    contents.push('\n');
    for r in rows {
        contents.push_str(r);
        contents.push('\n');
    }
    std::fs::write(&path, contents)?;
    Ok(path)
}
