//! The vectorized dataplane, measured: per-burst vs per-packet
//! receive processing over the same pipelined memcached workload.
//!
//! The driver's burst size is forced via
//! [`ebbrt_net::driver::set_rx_burst_frames`]: `1` routes every frame
//! through the vector path one at a time (the per-packet baseline —
//! same code, no amortization), larger values let the driver hand the
//! stack whole bursts, which the stack turns into per-PCB runs: one
//! PCB borrow, one coalesced `on_receive`, and one ACK decision per
//! connection per pass instead of per segment.
//!
//! The workload keeps a deep pipeline of GETs outstanding so the
//! server's NIC queue actually accumulates frames between drains —
//! burst processing with no queue depth is just per-packet with extra
//! steps. Reported `pps` is requests per *virtual* second (the
//! simulation's deterministic cost model), so the CI gate cannot flake
//! on a noisy runner; wall-clock time is reported alongside as the
//! host-side cost of executing the same pass structure.

use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

use ebbrt_apps::memcached::{self, Store};
use ebbrt_apps::spawn_with;
use ebbrt_core::cpu::CoreId;
use ebbrt_core::iobuf::{Chain, IoBuf, MutIoBuf};
use ebbrt_net::driver::{set_rx_burst_frames, RX_BURST};
use ebbrt_net::netif::{local_netif, ConnHandler, NetIf, TcpConn, BURST_BUCKET_LO};
use ebbrt_net::types::Ipv4Addr;
use ebbrt_sim::{CostProfile, LinkParams, SimMachine, SimWorld, Switch};

/// Bytes in the benched value.
const VALUE_LEN: usize = 512;
/// Full GET response: header + 4 flags bytes + value.
const RESPONSE_LEN: usize = memcached::Header::SIZE + 4 + VALUE_LEN;
/// Outstanding requests kept in flight (pipeline depth). Deep enough
/// that the server sees real queue depth at every drain.
const PIPELINE: u32 = 32;
/// Responses consumed before measurement starts.
const WARMUP_GETS: u32 = 128;
/// Measured responses.
const STEADY_GETS: u32 = 2048;

/// One mode's results.
pub struct BurstReport {
    /// Driver burst size the run was forced to.
    pub burst_frames: usize,
    /// Measured requests.
    pub requests: u32,
    /// Virtual time the measured phase took.
    pub virtual_ns: u64,
    /// Requests per virtual second — the deterministic figure of merit.
    pub pps: f64,
    /// Host wall-clock for the measured phase (indicative, noisy).
    pub wall_ns: u64,
    /// Server-side receive bursts over the whole run.
    pub rx_bursts: u64,
    /// Server-side frames received over the whole run.
    pub rx_frames: u64,
    /// Largest burst-size bucket the server actually saw.
    pub max_burst_seen: usize,
    /// `on_receive` deliveries (both sides) that coalesced 2+ segments.
    pub coalesced_callbacks: u64,
}

/// Mean frames per server-side burst — the amortization the traffic
/// offered.
impl BurstReport {
    pub fn frames_per_burst(&self) -> f64 {
        self.rx_frames as f64 / self.rx_bursts.max(1) as f64
    }
}

/// Restores the default burst size even on panic.
struct BurstGuard;
impl Drop for BurstGuard {
    fn drop(&mut self) {
        set_rx_burst_frames(RX_BURST);
    }
}

/// Closed-loop pipelined GET client: [`PIPELINE`] outstanding, one new
/// request per full response. The request buffer is frozen once and
/// descriptor-cloned per send.
struct PipeClient {
    request: IoBuf,
    received: Cell<usize>,
    remaining: Cell<u32>,
    warmup_left: Cell<u32>,
    start_virtual: Cell<u64>,
    end_virtual: Cell<u64>,
    start_wall: Cell<Option<Instant>>,
    wall_ns: Cell<u64>,
}

impl PipeClient {
    fn fire(&self, conn: &TcpConn) {
        let _ = conn.send(Chain::single(self.request.clone()));
    }
}

impl ConnHandler for PipeClient {
    fn on_connected(&self, conn: &TcpConn) {
        for _ in 0..PIPELINE {
            self.fire(conn);
        }
    }

    fn on_receive(&self, conn: &TcpConn, data: Chain<IoBuf>) {
        let mut got = self.received.get() + data.len();
        while got >= RESPONSE_LEN {
            got -= RESPONSE_LEN;
            if self.warmup_left.get() > 0 {
                self.warmup_left.set(self.warmup_left.get() - 1);
                if self.warmup_left.get() == 0 {
                    self.start_virtual
                        .set(ebbrt_core::runtime::with_current(|rt| rt.now_ns()));
                    self.start_wall.set(Some(Instant::now()));
                }
                self.fire(conn);
            } else if self.remaining.get() > 0 {
                self.remaining.set(self.remaining.get() - 1);
                if self.remaining.get() == 0 {
                    self.end_virtual
                        .set(ebbrt_core::runtime::with_current(|rt| rt.now_ns()));
                    self.wall_ns.set(
                        self.start_wall
                            .get()
                            .expect("steady phase started")
                            .elapsed()
                            .as_nanos() as u64,
                    );
                    conn.close();
                } else {
                    self.fire(conn);
                }
            }
        }
        self.received.set(got);
    }
}

/// Runs the pipelined GET workload with the driver forced to
/// `burst_frames` per receive burst.
pub fn run(burst_frames: usize) -> BurstReport {
    let _guard = BurstGuard;
    set_rx_burst_frames(burst_frames);

    let w = SimWorld::new();
    let sw = Switch::new(&w);
    let server = SimMachine::create(&w, "server", 1, CostProfile::ebbrt_vm(), [0xAA; 6]);
    let client = SimMachine::create(&w, "client", 1, CostProfile::ebbrt_vm(), [0xBB; 6]);
    sw.attach(server.nic(), LinkParams::default());
    sw.attach(client.nic(), LinkParams::default());
    let mask = Ipv4Addr::new(255, 255, 255, 0);
    let s_if = NetIf::attach(&server, Ipv4Addr::new(10, 0, 0, 1), mask);
    let c_if = NetIf::attach(&client, Ipv4Addr::new(10, 0, 0, 2), mask);
    w.run_to_idle();

    let store = Store::new(Arc::clone(server.runtime().rcu()));
    store.insert_raw(b"bench_key".to_vec(), IoBuf::copy_from(&[0xAB; VALUE_LEN]));
    let store_ref = store.register(server.runtime());
    server.spawn_on(CoreId(0), move || memcached::serve(store_ref));
    w.run_to_idle();

    let handler = Rc::new(PipeClient {
        request: MutIoBuf::from_vec(memcached::encode_get(b"bench_key", 1)).freeze(),
        received: Cell::new(0),
        remaining: Cell::new(STEADY_GETS),
        warmup_left: Cell::new(WARMUP_GETS),
        start_virtual: Cell::new(0),
        end_virtual: Cell::new(0),
        start_wall: Cell::new(None),
        wall_ns: Cell::new(0),
    });
    let h = Rc::clone(&handler);
    spawn_with(&client, CoreId(0), h, move |h| {
        local_netif().connect(
            Ipv4Addr::new(10, 0, 0, 1),
            memcached::MEMCACHED_PORT,
            h as Rc<dyn ConnHandler>,
        );
    });
    w.run_to_idle();
    assert_eq!(handler.remaining.get(), 0, "workload did not complete");

    let virtual_ns = handler.end_virtual.get() - handler.start_virtual.get();
    let max_burst_seen = s_if
        .frames_per_burst()
        .iter()
        .enumerate()
        .rev()
        .find(|(_, c)| **c > 0)
        .map_or(0, |(i, _)| BURST_BUCKET_LO[i]);
    BurstReport {
        burst_frames,
        requests: STEADY_GETS,
        virtual_ns,
        pps: STEADY_GETS as f64 / (virtual_ns as f64 / 1e9),
        wall_ns: handler.wall_ns.get(),
        rx_bursts: s_if.rx_bursts(),
        rx_frames: s_if.stats.rx_frames.get(),
        max_burst_seen,
        coalesced_callbacks: s_if.coalesced_callbacks() + c_if.coalesced_callbacks(),
    }
}

/// One table row (includes host wall-clock — noisy, bench-only).
pub fn format_report(r: &BurstReport) -> String {
    format!(
        "{} {:>12.1}",
        format_report_virtual(r),
        r.wall_ns as f64 / 1_000_000.0,
    )
}

/// Header matching [`format_report`].
pub fn table_header() -> String {
    format!("{} {:>12}", table_header_virtual(), "wall ms")
}

/// Deterministic row: virtual-time columns only, so repro binaries
/// that print it stay byte-identical across runs.
pub fn format_report_virtual(r: &BurstReport) -> String {
    format!(
        "{:>6} {:>12.0} {:>12.1} {:>10} {:>11.1} {:>10}",
        r.burst_frames,
        r.pps,
        r.virtual_ns as f64 / r.requests as f64 / 1000.0,
        r.max_burst_seen,
        r.frames_per_burst(),
        r.coalesced_callbacks,
    )
}

/// Header matching [`format_report_virtual`].
pub fn table_header_virtual() -> String {
    format!(
        "{:>6} {:>12} {:>12} {:>10} {:>11} {:>10}",
        "burst", "pps(virt)", "us/req", "max seen", "frames/brst", "coalesced"
    )
}

/// The CI gate: vector processing must beat per-packet throughput and
/// must actually have amortized (real bursts, coalesced deliveries).
pub fn assert_beats_per_packet(per_packet: &BurstReport, per_burst: &BurstReport) {
    assert!(per_burst.burst_frames >= 8, "gate is for burst sizes >= 8");
    assert!(
        per_burst.pps > per_packet.pps,
        "per-burst ({} frames) must beat per-packet pps: {:.0} vs {:.0}",
        per_burst.burst_frames,
        per_burst.pps,
        per_packet.pps,
    );
    assert!(
        per_burst.max_burst_seen >= 8,
        "traffic never formed a real burst (max seen {}): the bench is not \
         exercising the vector path",
        per_burst.max_burst_seen,
    );
    assert!(
        per_burst.coalesced_callbacks > 0,
        "burst mode must coalesce multi-segment deliveries"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance gate, in-tree: per-burst receive processing
    /// beats per-packet on the same pipelined workload at burst sizes
    /// 8 and the full ring.
    #[test]
    fn per_burst_beats_per_packet_at_8_and_full_ring() {
        let per_packet = run(1);
        println!("{}", table_header());
        println!("{}", format_report(&per_packet));
        for burst in [8, RX_BURST] {
            let r = run(burst);
            println!("{}", format_report(&r));
            assert_beats_per_packet(&per_packet, &r);
        }
    }
}
