//! Property-based tests over the core data-structure invariants listed
//! in DESIGN.md §5.

use proptest::prelude::*;

use ebbrt_core::iobuf::{Buf, Chain, IoBuf, MutIoBuf};

mod zero_copy_props {
    use super::*;
    use ebbrt_apps::memcached::{self, Store};
    use ebbrt_core::cpu::CoreId;
    use ebbrt_net::netif::TcpConn;
    use std::sync::Arc;

    /// Builds a pipelined request stream of SETs and GETs over a small
    /// key space. Returns the raw bytes.
    fn build_stream(ops: &[(u8, Vec<u8>)]) -> Vec<u8> {
        let mut stream = Vec::new();
        for (i, (sel, value)) in ops.iter().enumerate() {
            let key = format!("key{}", sel % 8);
            if sel % 3 == 0 {
                stream.extend(memcached::encode_get(key.as_bytes(), i as u32));
            } else {
                stream.extend(memcached::encode_set(key.as_bytes(), value, i as u32));
            }
        }
        stream
    }

    /// Observable parse outcome: store contents, (gets, sets, misses)
    /// counters, and the unconsumed tail length.
    type ParseOutcome = (Vec<(Vec<u8>, Vec<u8>)>, u64, u64, u64, usize);

    /// Feeds `stream` to a fresh server connection in segments at the
    /// given cut points.
    fn feed(stream: &[u8], cuts: &[usize]) -> ParseOutcome {
        let domain = Arc::new(ebbrt_core::rcu::RcuDomain::new(1));
        let _guard = domain.read_guard(CoreId(0));
        let store = Store::new(Arc::clone(&domain));
        let sc = memcached::ServerConn::new(Arc::clone(&store));
        let _bind = ebbrt_core::cpu::bind(CoreId(0));
        // Split the stream at the (sorted, deduped) cut points.
        let mut points: Vec<usize> = cuts.iter().map(|c| c % (stream.len() + 1)).collect();
        points.push(0);
        points.push(stream.len());
        points.sort_unstable();
        points.dedup();
        for w in points.windows(2) {
            if w[0] == w[1] {
                continue;
            }
            let seg = Chain::single(IoBuf::copy_from(&stream[w[0]..w[1]]));
            // The dangling conn panics when a response is sent — after
            // parsing and store updates are complete for this call.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                use ebbrt_net::netif::ConnHandler;
                sc.on_receive(&TcpConn::dangling(), seg);
            }));
        }
        let mut contents: Vec<(Vec<u8>, Vec<u8>)> = (0..8)
            .filter_map(|k| {
                let key = format!("key{k}").into_bytes();
                store.get_raw(&key).map(|v| (key, v.copy_to_vec()))
            })
            .collect();
        contents.sort();
        use std::sync::atomic::Ordering::Relaxed;
        (
            contents,
            store.gets.load(Relaxed),
            store.sets.load(Relaxed),
            store.misses.load(Relaxed),
            sc.pending_len(),
        )
    }

    proptest! {
        /// Any segmentation of a request stream parses identically to
        /// the contiguous form: same store contents, same op counts,
        /// same unconsumed tail.
        #[test]
        fn memcached_parse_is_segmentation_invariant(
            ops in prop::collection::vec((any::<u8>(), prop::collection::vec(any::<u8>(), 0..80)), 1..12),
            cuts in prop::collection::vec(any::<usize>(), 0..24),
            trailing in 0usize..24,
        ) {
            let mut stream = build_stream(&ops);
            // A truncated final request must stay buffered identically.
            let keep = stream.len().saturating_sub(trailing % (stream.len() + 1));
            stream.truncate(keep);
            let contiguous = feed(&stream, &[]);
            let segmented = feed(&stream, &cuts);
            prop_assert_eq!(&contiguous, &segmented);
        }

        /// `slice()` views observe exactly the bytes the writer put in
        /// the region, wherever the view is carved.
        #[test]
        fn slice_views_observe_writer_bytes(
            payload in prop::collection::vec(any::<u8>(), 1..200),
            windows in prop::collection::vec((any::<usize>(), any::<usize>()), 1..8),
        ) {
            let mut buf = MutIoBuf::with_capacity(payload.len());
            buf.append(payload.len()).copy_from_slice(&payload);
            let frozen = buf.freeze();
            for (start, len) in windows {
                let start = start % payload.len();
                let len = len % (payload.len() - start + 1);
                let view = frozen.slice(start, len);
                prop_assert_eq!(view.bytes(), &payload[start..start + len]);
                let range_view = frozen.slice_range(start..start + len);
                prop_assert_eq!(range_view.bytes(), &payload[start..start + len]);
            }
            // All views shared one region: no storage was duplicated.
            prop_assert_eq!(frozen.ref_count(), 1);
        }
    }
}

mod size_class_props {
    use super::*;
    use ebbrt_apps::memcached::{self, Store};
    use ebbrt_core::cpu::CoreId;
    use std::cell::RefCell;
    use std::rc::Rc;
    use std::sync::Arc;

    /// Sizes anchoring the generator at the pool class boundaries:
    /// the 2 KiB small/large edge, the 64 KiB large/oversize edge, and
    /// the extremes of the 1 B … 128 KiB range.
    const BOUNDARIES: &[usize] = &[
        1,
        2,
        2047,
        2048,
        2049,
        4096,
        16 * 1024,
        63 * 1024,
        65535,
        65536,
        65537,
        100_000,
        128 * 1024,
    ];

    fn boundary_size(sel: usize, jitter: usize) -> usize {
        let base = BOUNDARIES[sel % BOUNDARIES.len()];
        // Jitter ±16 around the anchor, clamped to the 1..=128 KiB
        // domain, so cases land on and straddle each boundary.
        (base + jitter % 33).saturating_sub(16).clamp(1, 128 * 1024)
    }

    fn value_bytes(size: usize, seed: u64) -> Vec<u8> {
        (0..size)
            .map(|i| (seed.wrapping_mul(i as u64 + 1).wrapping_shr((i % 7) as u32)) as u8)
            .collect()
    }

    /// Client that pushes a request stream respecting the send window
    /// (chunked `send` calls — app-layer segmentation) and collects
    /// the response stream.
    struct PushClient {
        tx: RefCell<Chain<IoBuf>>,
        /// Max bytes per send call (varies app-layer segmentation).
        chunk: usize,
        rx: Rc<RefCell<Vec<u8>>>,
        expected: usize,
    }

    impl PushClient {
        fn push(&self, conn: &ebbrt_net::netif::TcpConn) {
            loop {
                let mut tx = self.tx.borrow_mut();
                if tx.is_empty() {
                    return;
                }
                let window = conn.send_window();
                if window == 0 {
                    return;
                }
                let take = tx.len().min(window).min(self.chunk);
                let part = tx.split_to(take);
                drop(tx);
                if conn.send(part).is_err() {
                    return;
                }
            }
        }
    }

    impl ebbrt_net::netif::ConnHandler for PushClient {
        fn on_connected(&self, conn: &ebbrt_net::netif::TcpConn) {
            self.push(conn);
        }
        fn on_receive(&self, conn: &ebbrt_net::netif::TcpConn, data: Chain<IoBuf>) {
            self.rx.borrow_mut().extend(data.copy_to_vec());
            if self.rx.borrow().len() >= self.expected {
                conn.close();
            }
            self.push(conn);
        }
        fn on_window_open(&self, conn: &ebbrt_net::netif::TcpConn) {
            self.push(conn);
        }
    }

    /// SET a value of `size` bytes over the network (windowed,
    /// chunked sends), GET it back, and return the fetched bytes.
    fn roundtrip_over_network(value: &[u8], chunk: usize) -> Vec<u8> {
        use ebbrt_net::netif::NetIf;
        use ebbrt_net::types::Ipv4Addr;
        use ebbrt_sim::{CostProfile, LinkParams, SimMachine, SimWorld, Switch};

        let w = SimWorld::new();
        let sw = Switch::new(&w);
        let server = SimMachine::create(&w, "server", 1, CostProfile::ebbrt_vm(), [0xAA; 6]);
        let client = SimMachine::create(&w, "client", 1, CostProfile::ebbrt_vm(), [0xBB; 6]);
        sw.attach(server.nic(), LinkParams::default());
        sw.attach(client.nic(), LinkParams::default());
        let mask = Ipv4Addr::new(255, 255, 255, 0);
        let _s_if = NetIf::attach(&server, Ipv4Addr::new(10, 0, 0, 1), mask);
        let _c_if = NetIf::attach(&client, Ipv4Addr::new(10, 0, 0, 2), mask);
        w.run_to_idle();
        let store = Store::new(Arc::clone(server.runtime().rcu()));
        let store_ref = store.register(server.runtime());
        server.spawn_on(CoreId(0), move || memcached::serve(store_ref));
        w.run_to_idle();

        let mut stream = memcached::encode_set(b"straddle", value, 1);
        stream.extend(memcached::encode_get(b"straddle", 2));
        // SET response header + GET response (header + flags + value).
        let expected = memcached::Header::SIZE * 2 + 4 + value.len();
        let rx = Rc::new(RefCell::new(Vec::new()));
        let handler = Rc::new(PushClient {
            tx: RefCell::new(Chain::single(IoBuf::copy_from(&stream))),
            chunk,
            rx: Rc::clone(&rx),
            expected,
        });
        ebbrt_apps::spawn_with(&client, CoreId(0), handler, move |handler| {
            ebbrt_net::netif::local_netif().connect(
                Ipv4Addr::new(10, 0, 0, 1),
                memcached::MEMCACHED_PORT,
                handler,
            );
        });
        w.run_to_idle();
        let rx = rx.borrow();
        assert!(
            rx.len() >= expected,
            "responses truncated: got {} of {expected} bytes for a {}-byte value",
            rx.len(),
            value.len()
        );
        rx[expected - value.len()..expected].to_vec()
    }

    /// Feeds one SET through a directly-driven server connection in
    /// segments cut at `cuts`, returning the stored value bytes.
    fn stored_after_segmented_set(stream: &[u8], cuts: &[usize]) -> Vec<u8> {
        use ebbrt_net::netif::{ConnHandler, TcpConn};
        let domain = Arc::new(ebbrt_core::rcu::RcuDomain::new(1));
        let _guard = domain.read_guard(CoreId(0));
        let store = Store::new(Arc::clone(&domain));
        let sc = memcached::ServerConn::new(Arc::clone(&store));
        let _bind = ebbrt_core::cpu::bind(CoreId(0));
        let mut points: Vec<usize> = cuts.iter().map(|c| c % (stream.len() + 1)).collect();
        points.push(0);
        points.push(stream.len());
        points.sort_unstable();
        points.dedup();
        for wnd in points.windows(2) {
            if wnd[0] == wnd[1] {
                continue;
            }
            let seg = Chain::single(IoBuf::copy_from(&stream[wnd[0]..wnd[1]]));
            // The dangling conn panics when the SET response is sent —
            // after the store insert completed.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                sc.on_receive(&TcpConn::dangling(), seg);
            }));
        }
        store
            .get_raw(b"straddle")
            .map(|v| v.copy_to_vec())
            .unwrap_or_default()
    }

    proptest! {
        /// SET/GET round-trips over the full network path are exact
        /// for every value size across the 2 KiB and 64 KiB class
        /// boundaries (1 B … 128 KiB), independent of how the client
        /// chunks its sends. Values beyond the peer's 64 KiB receive
        /// window exercise the server's response backpressure path.
        #[test]
        fn memcached_roundtrip_straddles_class_boundaries(
            sel in 0usize..64,
            jitter in 0usize..64,
            seed in any::<u64>(),
            chunk_sel in 0usize..4,
        ) {
            let size = boundary_size(sel, jitter);
            let value = value_bytes(size, seed);
            let chunk = [1497, 4096, 60_000, usize::MAX][chunk_sel];
            let got = roundtrip_over_network(&value, chunk);
            prop_assert_eq!(got, value);
        }

        /// The stored bytes of a boundary-straddling SET are
        /// independent of how the request stream is segmented.
        #[test]
        fn large_set_storage_is_segmentation_invariant(
            sel in 0usize..64,
            jitter in 0usize..64,
            seed in any::<u64>(),
            cuts in prop::collection::vec(any::<usize>(), 0..12),
        ) {
            let size = boundary_size(sel, jitter);
            let value = value_bytes(size, seed);
            let stream = memcached::encode_set(b"straddle", &value, 7);
            let contiguous = stored_after_segmented_set(&stream, &[]);
            let segmented = stored_after_segmented_set(&stream, &cuts);
            prop_assert_eq!(&contiguous, &value);
            prop_assert_eq!(&segmented, &value);
        }
    }
}

mod iobuf_props {
    use super::*;

    /// Arbitrary chains + arbitrary advance/split sequences never lose
    /// or duplicate bytes and keep the length accounting exact.
    fn model_ops(segments: Vec<Vec<u8>>, ops: Vec<usize>) {
        let mut chain: Chain<IoBuf> = Chain::new();
        let mut model: Vec<u8> = Vec::new();
        for s in &segments {
            chain.push_back(IoBuf::copy_from(s));
            model.extend_from_slice(s);
        }
        assert_eq!(chain.len(), model.len());
        for op in ops {
            if chain.is_empty() {
                break;
            }
            match op % 3 {
                0 => {
                    let n = op % (chain.len() + 1);
                    let head = chain.split_to(n);
                    assert_eq!(head.copy_to_vec(), model[..n].to_vec());
                    model.drain(..n);
                }
                1 => {
                    let n = op % (chain.len() + 1);
                    chain.advance(n);
                    model.drain(..n);
                }
                _ => {
                    // Round-trip through a cursor read.
                    let n = (op / 3) % (chain.len() + 1);
                    let mut cur = chain.cursor();
                    let got = cur.read_vec(n).unwrap();
                    assert_eq!(got, model[..n]);
                }
            }
            assert_eq!(chain.len(), model.len());
            assert_eq!(chain.copy_to_vec(), model);
        }
    }

    proptest! {
        #[test]
        fn chain_ops_preserve_bytes(
            segments in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..8),
            ops in prop::collection::vec(any::<usize>(), 0..32),
        ) {
            model_ops(segments, ops);
        }

        #[test]
        fn mut_iobuf_window_arithmetic(
            headroom in 0usize..64,
            appends in prop::collection::vec(1usize..32, 0..8),
        ) {
            let cap: usize = appends.iter().sum::<usize>() + 1;
            let mut b = MutIoBuf::with_headroom(cap, headroom);
            let mut expect_len = 0;
            for a in &appends {
                b.append(*a);
                expect_len += a;
                prop_assert_eq!(b.len(), expect_len);
                prop_assert_eq!(b.headroom(), headroom);
                prop_assert_eq!(b.capacity(), cap + headroom);
            }
            // Prepending then advancing restores the same window.
            let take = headroom.min(7);
            b.prepend(take);
            prop_assert_eq!(b.len(), expect_len + take);
            b.advance(take);
            prop_assert_eq!(b.len(), expect_len);
        }
    }
}

mod buddy_props {
    use super::*;
    use ebbrt_mem::buddy::{order_bytes, BuddyAllocator};

    proptest! {
        /// Any interleaving of allocations and frees keeps blocks
        /// disjoint and restores the fully coalesced region at the end.
        #[test]
        fn buddy_disjoint_and_coalescing(ops in prop::collection::vec((0u32..4, any::<u8>()), 1..64)) {
            let region_order = 6; // 64 pages
            let mut b = BuddyAllocator::new(0, region_order);
            let initial = b.free_bytes();
            let mut live: Vec<(usize, u32)> = Vec::new();
            for (order, sel) in ops {
                if sel % 2 == 0 || live.is_empty() {
                    if let Some(addr) = b.alloc(order) {
                        // Overlap check against every live block.
                        let len = order_bytes(order);
                        for &(a, o) in &live {
                            let alen = order_bytes(o);
                            prop_assert!(addr + len <= a || a + alen <= addr,
                                "overlap: {addr:#x}+{len:#x} vs {a:#x}+{alen:#x}");
                        }
                        live.push((addr, order));
                    }
                } else {
                    let idx = (sel as usize) % live.len();
                    let (addr, order) = live.swap_remove(idx);
                    b.free(addr, order);
                }
            }
            for (addr, order) in live {
                b.free(addr, order);
            }
            prop_assert_eq!(b.free_bytes(), initial);
            // Fully coalesced: exactly one block at the top order.
            let counts = b.free_counts();
            prop_assert_eq!(counts[region_order as usize], 1);
        }
    }
}

mod tcp_props {
    use super::*;
    use ebbrt_core::cpu::CoreId;
    use ebbrt_net::tcp::{FourTuple, Pcb, TcpState};
    use ebbrt_net::types::Ipv4Addr;

    fn pcb() -> Pcb {
        let t = FourTuple {
            local: (Ipv4Addr::new(10, 0, 0, 1), 80),
            remote: (Ipv4Addr::new(10, 0, 0, 2), 5555),
        };
        let mut p = Pcb::new(t, TcpState::Established, 0, CoreId(0));
        p.rcv_nxt = 0;
        p.snd_wnd = 1 << 20;
        p
    }

    proptest! {
        /// Delivering segments in any order (with duplicates) yields the
        /// original stream, exactly once, in order.
        #[test]
        fn reassembly_from_any_arrival_order(
            chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..40), 1..12),
            order_seed in any::<u64>(),
            dup_mask in any::<u16>(),
        ) {
            let mut stream = Vec::new();
            let mut segs: Vec<(u32, Vec<u8>)> = Vec::new();
            let mut seq = 0u32;
            for c in &chunks {
                segs.push((seq, c.clone()));
                stream.extend_from_slice(c);
                seq = seq.wrapping_add(c.len() as u32);
            }
            // Duplicate some segments, then shuffle deterministically.
            let mut arrivals = segs.clone();
            for (i, s) in segs.iter().enumerate() {
                if dup_mask & (1 << (i % 16)) != 0 {
                    arrivals.push(s.clone());
                }
            }
            let mut rng = order_seed;
            for i in (1..arrivals.len()).rev() {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (rng >> 33) as usize % (i + 1);
                arrivals.swap(i, j);
            }

            let mut p = pcb();
            let mut delivered = Vec::new();
            for (seq, data) in arrivals {
                let chain = Chain::single(IoBuf::copy_from(&data));
                for out in p.on_data(seq, chain) {
                    delivered.extend(out.copy_to_vec());
                }
            }
            prop_assert_eq!(delivered, stream);
            prop_assert_eq!(p.rcv_nxt as usize, segs.iter().map(|(_, d)| d.len()).sum::<usize>());
        }

        /// The usable send window never exceeds the peer's advertised
        /// window and acknowledgments only ever shrink the in-flight set.
        #[test]
        fn window_accounting(
            sends in prop::collection::vec(1u32..2000, 0..16),
            wnd in 1u16..u16::MAX,
        ) {
            let mut p = pcb();
            p.snd_wnd = wnd as u32;
            let mut sent = 0u32;
            for len in sends {
                let take = (p.send_window() as u32).min(len);
                if take == 0 { break; }
                let seq = p.snd_nxt;
                p.record_sent(seq, take, 0, Chain::new());
                sent += take;
                prop_assert!(p.send_window() as u64 + sent as u64 <= wnd as u64 + sent as u64);
                prop_assert!(p.send_window() <= wnd as usize);
            }
            // Ack everything: the full window reopens, queue empties.
            let r = p.process_ack(p.snd_nxt, wnd);
            prop_assert!(r.queue_empty);
            prop_assert_eq!(p.send_window(), wnd as usize);
        }
    }
}

mod rcu_props {
    use super::*;
    use ebbrt_core::rcu::RcuDomain;
    use ebbrt_core::rcu_hash::RcuHashMap;
    use std::sync::Arc;

    proptest! {
        /// The RCU map agrees with a model HashMap under arbitrary
        /// insert/remove/lookup interleavings.
        #[test]
        fn rcu_map_matches_model(ops in prop::collection::vec((any::<u8>(), any::<u16>()), 0..200)) {
            let domain = Arc::new(RcuDomain::new(1));
            let map: RcuHashMap<u8, u16> = RcuHashMap::with_capacity(Arc::clone(&domain), 4);
            let mut model = std::collections::HashMap::new();
            let guard = domain.read_guard(ebbrt_core::cpu::CoreId(0));
            for (k, v) in ops {
                match v % 3 {
                    0 => {
                        let replaced = map.insert(k, v);
                        prop_assert_eq!(replaced, model.insert(k, v).is_some());
                    }
                    1 => {
                        let removed = map.remove(&k).map(|e| e.1);
                        prop_assert_eq!(removed, model.remove(&k));
                    }
                    _ => {
                        prop_assert_eq!(map.get(&k, |x| *x), model.get(&k).copied());
                    }
                }
                prop_assert_eq!(map.len(), model.len());
            }
            drop(guard);
            domain.try_reclaim();
            prop_assert_eq!(domain.pending_count(), 0);
        }
    }
}

mod event_props {
    use super::*;
    use ebbrt_core::clock::ManualClock;
    use ebbrt_core::cpu::{self, CoreId};
    use ebbrt_core::event::EventManager;
    use ebbrt_core::rcu::CoreEpoch;
    use std::cell::RefCell;
    use std::rc::Rc;
    use std::sync::Arc;

    proptest! {
        /// Spawned events run exactly once, in FIFO order, regardless of
        /// how dispatch passes are interleaved with spawns.
        #[test]
        fn spawn_order_and_exactly_once(batches in prop::collection::vec(1usize..6, 1..10)) {
            let clock: Arc<dyn ebbrt_core::clock::Clock> = Arc::new(ManualClock::new());
            let em = EventManager::new(CoreId(0), clock, Arc::new(CoreEpoch::new()));
            let _b = cpu::bind(CoreId(0));
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut expected = Vec::new();
            let mut next = 0u32;
            for batch in batches {
                for _ in 0..batch {
                    let id = next;
                    next += 1;
                    expected.push(id);
                    let log = Rc::clone(&log);
                    em.spawn_local(move || log.borrow_mut().push(id));
                }
                // Interleave partial dispatch (one synthetic per pass).
                em.run_once();
            }
            em.drain();
            prop_assert_eq!(&*log.borrow(), &expected);
            // Nothing runs twice: a further drain is empty.
            prop_assert_eq!(em.drain(), 0);
        }

        /// Timers fire in deadline order irrespective of arming order,
        /// and never before their deadline.
        #[test]
        fn timer_deadline_order(deadlines in prop::collection::vec(1u64..10_000, 1..20)) {
            let clock = Arc::new(ManualClock::new());
            let clock_dyn: Arc<dyn ebbrt_core::clock::Clock> = Arc::clone(&clock) as _;
            let em = EventManager::new(CoreId(0), clock_dyn, Arc::new(CoreEpoch::new()));
            let _b = cpu::bind(CoreId(0));
            let log = Rc::new(RefCell::new(Vec::new()));
            for &d in &deadlines {
                let log = Rc::clone(&log);
                em.set_timer(d, move || {
                    log.borrow_mut().push(d);
                });
            }
            // Advance in steps, checking nothing fires early.
            let max = *deadlines.iter().max().unwrap();
            for t in (0..=max).step_by(97) {
                clock.set(t);
                em.run_once();
                prop_assert!(log.borrow().iter().all(|&d| d <= t));
            }
            clock.set(max);
            em.drain();
            let mut sorted = deadlines.clone();
            sorted.sort();
            prop_assert_eq!(&*log.borrow(), &sorted);
        }
    }
}

mod timer_wheel_props {
    use super::*;
    use ebbrt_core::timer::{TimerToken, TimerWheel};
    use std::cmp::Reverse;
    use std::collections::{BinaryHeap, HashSet};

    /// The seed implementation's timer store, verbatim semantics: a
    /// global binary heap ordered by (deadline, arm sequence) plus a
    /// tombstone set for cancellations. The wheel must be
    /// observationally equivalent to this.
    struct SeedHeapModel {
        heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
        cancelled: HashSet<u32>,
        seq: u64,
    }

    impl SeedHeapModel {
        fn new() -> Self {
            SeedHeapModel {
                heap: BinaryHeap::new(),
                cancelled: HashSet::new(),
                seq: 0,
            }
        }

        fn arm(&mut self, id: u32, deadline: u64) {
            self.seq += 1;
            self.heap.push(Reverse((deadline, self.seq, id)));
        }

        fn cancel(&mut self, id: u32) {
            self.cancelled.insert(id);
        }

        /// Reset = cancel; the caller re-arms the handler under a
        /// fresh id (the re-armed incarnation must not be tombstoned).
        fn reset(&mut self, id: u32) {
            self.cancel(id);
        }

        /// Fires everything due at `now`, in (deadline, seq) order.
        fn fire(&mut self, now: u64) -> Vec<(u32, u64)> {
            let mut out = Vec::new();
            while let Some(&Reverse((deadline, _, id))) = self.heap.peek() {
                if deadline > now {
                    break;
                }
                self.heap.pop();
                if !self.cancelled.remove(&id) {
                    out.push((id, deadline));
                }
            }
            out
        }
    }

    /// Drains every timer currently due from the wheel, returning
    /// (handler id, effective deadline) in firing order.
    fn drain_wheel(wheel: &mut TimerWheel<u32>, now: u64) -> Vec<(u32, u64)> {
        wheel.advance(now);
        let mut out = Vec::new();
        while let Some((tok, deadline)) = wheel.pop_expired() {
            let id = *wheel.handler(tok).expect("due entry has handler");
            wheel.remove(tok);
            out.push((id, deadline));
        }
        out
    }

    proptest! {
        /// Observational equivalence with the seed heap: any
        /// interleaving of arm / cancel / re-arm / advance fires the
        /// same timers in the same order at the same times.
        #[test]
        fn wheel_equivalent_to_seed_heap(
            ops in prop::collection::vec((0u8..10, 1u64..50_000), 1..120)
        ) {
            let mut wheel: TimerWheel<u32> = TimerWheel::new(0);
            let mut model = SeedHeapModel::new();
            // Live timers: (model id, wheel token, deadline).
            let mut live: Vec<(u32, TimerToken)> = Vec::new();
            let mut next_id = 0u32;
            let mut now = 0u64;
            for (kind, value) in ops {
                match kind {
                    // Arm a fresh one-shot timer (weighted heavily).
                    0..=4 => {
                        let deadline = now + value % 20_000;
                        let id = next_id;
                        next_id += 1;
                        let tok = wheel.schedule(deadline, id);
                        model.arm(id, deadline);
                        live.push((id, tok));
                    }
                    // Advance the clock and fire.
                    5 | 6 => {
                        now += value % 15_000;
                        let fired = drain_wheel(&mut wheel, now);
                        let expected = model.fire(now);
                        prop_assert_eq!(&fired, &expected,
                            "divergence at t={} (wheel vs heap)", now);
                        for (id, _) in &fired {
                            live.retain(|(lid, _)| lid != id);
                        }
                    }
                    // Re-arm an existing timer to a new deadline.
                    7 | 8 => {
                        if live.is_empty() { continue; }
                        let i = (value as usize) % live.len();
                        let deadline = now + value % 20_000;
                        let (old_id, tok) = live[i];
                        // Model: tombstone the old incarnation, arm a
                        // fresh id; wheel: O(1) re-arm of the same
                        // entry. Track the handler under the new id.
                        model.reset(old_id);
                        let id = next_id;
                        next_id += 1;
                        model.arm(id, deadline);
                        prop_assert!(wheel.arm(tok, deadline));
                        *wheel.handler_mut(tok).expect("live entry") = id;
                        live[i] = (id, tok);
                    }
                    // Cancel an existing timer.
                    _ => {
                        if live.is_empty() { continue; }
                        let i = (value as usize) % live.len();
                        let (id, tok) = live.swap_remove(i);
                        model.cancel(id);
                        prop_assert!(wheel.remove(tok).is_some());
                    }
                }
                // Soundness of the park/halt bound after every step:
                // never past the earliest pending deadline, always in
                // the future when nothing is due.
                if let Some(bound) = wheel.next_deadline(now) {
                    let true_min = model.heap.iter()
                        .filter(|Reverse((_, _, id))| !model.cancelled.contains(id))
                        .map(|Reverse((d, _, _))| *d)
                        .min();
                    if let Some(min) = true_min {
                        prop_assert!(bound <= min.max(now + 1),
                            "bound {} past earliest deadline {}", bound, min);
                    }
                }
            }
            // Final drain far in the future: both empty out identically.
            now += 1 << 20;
            let fired = drain_wheel(&mut wheel, now);
            let expected = model.fire(now);
            prop_assert_eq!(fired, expected);
            prop_assert_eq!(wheel.pending(), 0);
            prop_assert_eq!(wheel.live(), 0, "no entry may outlive the run");
        }
    }
}

mod future_props {
    use super::*;
    use ebbrt_repro::core::future;

    proptest! {
        /// A chain of maps applied to a future equals the same chain
        /// applied to the value directly, whether the future completes
        /// before or after the chain is built.
        #[test]
        fn then_chain_preserves_value(start in any::<u32>(), adds in prop::collection::vec(any::<u8>(), 0..12), complete_first in any::<bool>()) {
            let expected = adds.iter().fold(start as u64, |acc, &a| acc + a as u64);
            let (p, f) = future::promise::<u64>();
            let build = |mut f: future::Future<u64>| {
                for &a in &adds {
                    f = f.map(move |v| v + a as u64);
                }
                f
            };
            let out = if complete_first {
                p.set_value(start as u64);
                build(f)
            } else {
                let out = build(f);
                p.set_value(start as u64);
                out
            };
            prop_assert_eq!(out.block().unwrap(), expected);
        }

        /// Errors injected at any depth of a chain surface at the end,
        /// skipping all intermediate maps.
        #[test]
        fn error_skips_intermediate_continuations(depth in 0usize..10, fail_at in 0usize..10) {
            let (p, f) = future::promise::<u64>();
            let mut fut = f;
            let ran = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
            for i in 0..depth {
                let ran = std::sync::Arc::clone(&ran);
                fut = fut.then(move |ff| {
                    let v = ff.get()?;
                    ran.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    if i == fail_at {
                        Err(future::Error::msg("injected"))
                    } else {
                        Ok(v)
                    }
                });
            }
            p.set_value(1);
            let result = fut.block();
            let executed = ran.load(std::sync::atomic::Ordering::SeqCst);
            if fail_at < depth {
                prop_assert!(result.is_err());
                // Continuations after the failure only *observe* the
                // error (their Ok body is skipped by `?`).
                prop_assert_eq!(executed, fail_at + 1);
            } else {
                prop_assert!(result.is_ok());
                prop_assert_eq!(executed, depth);
            }
        }
    }
}
