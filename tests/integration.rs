//! Cross-crate integration tests: the whole system assembled the way
//! the paper deploys it — native library-OS instances plus a hosted
//! process over a simulated network, running the real applications.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::Arc;

use ebbrt_apps::memcached::{self, Store};
use ebbrt_apps::spawn_with;
use ebbrt_core::cpu::CoreId;
use ebbrt_core::iobuf::{Chain, IoBuf};
use ebbrt_hosted::fs::{FsClient, FsServer};
use ebbrt_hosted::messenger::Messenger;
use ebbrt_net::netif::{ConnHandler, NetIf, TcpConn};
use ebbrt_net::types::Ipv4Addr;
use ebbrt_sim::{CostProfile, LinkParams, SimMachine, SimWorld, Switch};

const MASK: Ipv4Addr = Ipv4Addr::new(255, 255, 255, 0);

/// The paper's canonical deployment: one hosted process, two native
/// instances, one isolated network. The hosted side provides DHCP and
/// the filesystem; a native instance runs memcached; the other native
/// instance acts as the client.
#[test]
fn full_cluster_deployment() {
    let w = SimWorld::new();
    let sw = Switch::new(&w);

    let hosted = SimMachine::create(&w, "hosted", 2, CostProfile::linux_vm(), [0x0A; 6]);
    let native1 = SimMachine::create(&w, "native1", 2, CostProfile::ebbrt_vm(), [0x0B; 6]);
    let native2 = SimMachine::create(&w, "native2", 1, CostProfile::ebbrt_vm(), [0x0C; 6]);
    sw.attach(hosted.nic(), LinkParams::default());
    sw.attach(native1.nic(), LinkParams::default());
    sw.attach(native2.nic(), LinkParams::default());

    let h_if = NetIf::attach(&hosted, Ipv4Addr::new(10, 0, 0, 1), MASK);
    // Native instances boot *unconfigured* and acquire addresses over
    // DHCP from the hosted side, like the paper's deployment flow.
    let n1_if = NetIf::attach(&native1, Ipv4Addr::UNSPECIFIED, MASK);
    let n2_if = NetIf::attach(&native2, Ipv4Addr::UNSPECIFIED, MASK);
    w.run_to_idle();

    let _dhcp = ebbrt_net::dhcp::DhcpServer::start(&h_if, Ipv4Addr::new(10, 0, 0, 50), MASK);
    let configured = Rc::new(Cell::new(0));
    for (machine, netif) in [(&native1, &n1_if), (&native2, &n2_if)] {
        let c = Rc::clone(&configured);
        spawn_with(machine, CoreId(0), Rc::clone(netif), move |netif| {
            ebbrt_net::dhcp::configure(&netif, move |res| {
                res.expect("dhcp must configure");
                c.set(c.get() + 1);
            });
        });
    }
    w.run_to_idle();
    assert_eq!(configured.get(), 2, "both native instances must configure");
    let n1_ip = n1_if.ip();
    assert_ne!(n1_ip, Ipv4Addr::UNSPECIFIED);

    // Hosted filesystem offload: native1 reads its "config" remotely.
    let h_msgr = Messenger::start(&h_if);
    let n1_msgr = Messenger::start(&n1_if);
    let fs_server = FsServer::start(&h_msgr);
    fs_server.put("/srv/memcached.conf", b"max_keys=4096".to_vec());
    let fs = FsClient::new(&n1_msgr, Ipv4Addr::new(10, 0, 0, 1));
    let config_read = Rc::new(Cell::new(false));
    {
        let c = Rc::clone(&config_read);
        spawn_with(&native1, CoreId(0), fs, move |fs| {
            fs.read("/srv/memcached.conf", move |data| {
                assert_eq!(data.as_deref(), Some(b"max_keys=4096".as_slice()));
                c.set(true);
            });
        });
    }
    w.run_to_idle();
    assert!(config_read.get(), "offloaded filesystem read must complete");

    // memcached on native1, exercised from native2 over the wire. The
    // store registers as an Ebb; the server resolves its stack through
    // the well-known network-manager id.
    let store = Store::new(Arc::clone(native1.runtime().rcu()));
    let store_ref = store.register(native1.runtime());
    native1.spawn_on(CoreId(0), move || memcached::serve(store_ref));
    w.run_to_idle();

    struct KvClient {
        rx: RefCell<Vec<u8>>,
        done: Rc<Cell<bool>>,
    }
    impl ConnHandler for KvClient {
        fn on_connected(&self, conn: &TcpConn) {
            let mut req = memcached::encode_set(b"answer", b"42", 1);
            req.extend(memcached::encode_get(b"answer", 2));
            conn.send(Chain::single(IoBuf::copy_from(&req))).unwrap();
        }
        fn on_receive(&self, _c: &TcpConn, data: Chain<IoBuf>) {
            let mut rx = self.rx.borrow_mut();
            rx.extend(data.copy_to_vec());
            // SET response (24) + GET response (24 + 4 flags + 2 value).
            if rx.len() >= 24 + 24 + 4 + 2 {
                assert_eq!(&rx[rx.len() - 2..], b"42");
                self.done.set(true);
            }
        }
    }
    let done = Rc::new(Cell::new(false));
    let d2 = Rc::clone(&done);
    spawn_with(&native2, CoreId(0), Rc::clone(&n2_if), move |n2_if| {
        n2_if.connect(
            n1_ip,
            memcached::MEMCACHED_PORT,
            Rc::new(KvClient {
                rx: RefCell::new(Vec::new()),
                done: d2,
            }),
        );
    });
    w.run_to_idle();
    assert!(done.get(), "memcached roundtrip across native instances");
    assert_eq!(store.len(), 1);
}

/// The threaded backend and the allocator stack working together:
/// multi-core allocation through the Ebb hierarchy with real threads.
#[test]
fn threaded_backend_runs_allocator_stack() {
    use ebbrt_core::event::block_on;
    use ebbrt_core::future;
    use ebbrt_core::native::NativeMachine;
    use ebbrt_mem::gp::{self, EbbrtMalloc};
    use ebbrt_mem::{MallocLike, Topology};

    let ncores = 4;
    let per_core = NativeMachine::run(ncores, move || {
        let rt = ebbrt_core::runtime::current();
        let gp = gp::setup(Topology::flat(ncores), 12);
        let futures: Vec<_> = (0..ncores)
            .map(|i| {
                let (p, f) = future::promise::<usize>();
                rt.spawn(CoreId(i as u32), move || {
                    let m = EbbrtMalloc::new(gp);
                    let mut live = Vec::new();
                    for k in 0..500 {
                        live.push((m.alloc(8 + (k % 5) * 32), 8 + (k % 5) * 32));
                    }
                    let n = live.len();
                    for (a, s) in live {
                        m.free(a, s);
                    }
                    p.set_value(n);
                });
                f
            })
            .collect();
        block_on(future::join_all(futures))
            .unwrap()
            .iter()
            .sum::<usize>()
    });
    assert_eq!(per_core, ncores * 500);
}

/// Deterministic replay: the same simulated experiment produces the
/// same virtual-time trace, bit for bit.
#[test]
fn simulation_is_deterministic() {
    fn run_once() -> (u64, u64, u64) {
        let w = SimWorld::new();
        let sw = Switch::new(&w);
        let server = SimMachine::create(&w, "s", 1, CostProfile::ebbrt_vm(), [0xAA; 6]);
        let client = SimMachine::create(&w, "c", 1, CostProfile::ebbrt_vm(), [0xBB; 6]);
        sw.attach(server.nic(), LinkParams::default());
        sw.attach(client.nic(), LinkParams::default());
        let s_if = NetIf::attach(&server, Ipv4Addr::new(10, 0, 9, 1), MASK);
        let c_if = NetIf::attach(&client, Ipv4Addr::new(10, 0, 9, 2), MASK);
        w.run_to_idle();
        let store = Store::new(Arc::clone(server.runtime().rcu()));
        let store_ref = store.register(server.runtime());
        server.spawn_on(CoreId(0), move || memcached::serve(store_ref));
        w.run_to_idle();

        struct Pinger {
            n: Cell<u32>,
        }
        impl ConnHandler for Pinger {
            fn on_connected(&self, conn: &TcpConn) {
                let req = memcached::encode_set(b"k", b"v", 0);
                conn.send(Chain::single(IoBuf::copy_from(&req))).unwrap();
            }
            fn on_receive(&self, conn: &TcpConn, _d: Chain<IoBuf>) {
                let n = self.n.get() + 1;
                self.n.set(n);
                if n < 50 {
                    let req = memcached::encode_get(b"k", n);
                    conn.send(Chain::single(IoBuf::copy_from(&req))).unwrap();
                }
            }
        }
        spawn_with(&client, CoreId(0), Rc::clone(&c_if), move |c_if| {
            c_if.connect(
                Ipv4Addr::new(10, 0, 9, 1),
                memcached::MEMCACHED_PORT,
                Rc::new(Pinger { n: Cell::new(0) }),
            );
        });
        w.run_to_idle();
        (w.now(), s_if.stats.rx_tcp.get(), client.cpu_time(CoreId(0)))
    }
    assert_eq!(run_once(), run_once());
}

/// The distributed-Ebb proof workload, correctness-first: a
/// multi-machine sharded memcached where every machine owns one key
/// shard behind a distributed `StoreShardEbb`. A client pipelines SETs
/// and GETs for keys of *every* shard into shard 0's server; requests
/// for other shards function-ship to their owners (miss → GlobalIdMap
/// → proxy rep → messenger), responses are correlated by opaque, and a
/// phantom shard whose published owner is unreachable must answer
/// `STATUS_REMOTE_ERROR` — never hang the connection.
#[test]
fn sharded_memcached_cross_shard_function_shipping() {
    use ebbrt_bench::dist_memcached as dist;
    use std::collections::HashMap;

    const NSHARDS: usize = 3;
    let c = dist::build(NSHARDS, true);
    let nslots = c.shard_ids.len(); // NSHARDS + the phantom slot
    let phantom_slot = nslots - 1;

    // Four keys per real shard, values derived from the key.
    let mut keys: Vec<(Vec<u8>, Vec<u8>, usize)> = Vec::new();
    for shard in 0..NSHARDS {
        for k in 0..4 {
            let key = dist::key_for_shard(shard, nslots, shard * 10 + k);
            let value = format!("value-of-{}", String::from_utf8_lossy(&key)).into_bytes();
            keys.push((key, value, shard));
        }
    }
    // One oversized (protocol-violating, > 250 B) key owned by a
    // *remote* shard: it must route by hash like any other key, not be
    // served by whichever machine happened to receive it.
    let big_key = (0u32..)
        .map(|n| format!("{}-{n}", "x".repeat(280)).into_bytes())
        .find(|k| memcached::shard_of(k, nslots) == 1)
        .unwrap();
    keys.push((big_key, b"oversized-key-value".to_vec(), 1));
    let phantom_key = dist::key_for_shard(phantom_slot, nslots, 999);

    // Pipeline everything in one burst: SETs, then GETs, then the
    // phantom probe. opaque = index into `expect`.
    let mut tx = Vec::new();
    let mut expect: Vec<(u16, Vec<u8>)> = Vec::new();
    for (key, value, _) in &keys {
        tx.extend(memcached::encode_set(key, value, expect.len() as u32));
        expect.push((memcached::STATUS_OK, Vec::new()));
    }
    for (key, value, _) in &keys {
        tx.extend(memcached::encode_get(key, expect.len() as u32));
        expect.push((memcached::STATUS_OK, value.clone()));
    }
    tx.extend(memcached::encode_get(&phantom_key, expect.len() as u32));
    expect.push((memcached::STATUS_REMOTE_ERROR, Vec::new()));

    /// opaque → (status, value) of every received response.
    type Responses = Rc<RefCell<HashMap<u32, (u16, Vec<u8>)>>>;

    struct ShardClient {
        tx: RefCell<Vec<u8>>,
        rx: RefCell<Vec<u8>>,
        got: Responses,
    }
    impl ConnHandler for ShardClient {
        fn on_connected(&self, conn: &TcpConn) {
            let tx = self.tx.borrow().clone();
            conn.send(Chain::single(IoBuf::copy_from(&tx))).unwrap();
        }
        fn on_receive(&self, _c: &TcpConn, data: Chain<IoBuf>) {
            let mut rx = self.rx.borrow_mut();
            rx.extend(data.copy_to_vec());
            loop {
                if rx.len() < memcached::Header::SIZE {
                    return;
                }
                let mut hdr = [0u8; memcached::Header::SIZE];
                hdr.copy_from_slice(&rx[..memcached::Header::SIZE]);
                let h = memcached::Header::decode(&hdr);
                let total = memcached::Header::SIZE + h.total_body as usize;
                if rx.len() < total {
                    return;
                }
                let body: Vec<u8> = rx[memcached::Header::SIZE..total].to_vec();
                rx.drain(..total);
                // GET hits carry 4 flags bytes before the value.
                let value = if body.len() >= 4 {
                    body[4..].to_vec()
                } else {
                    Vec::new()
                };
                let prev = self.got.borrow_mut().insert(h.opaque, (h.status, value));
                assert!(prev.is_none(), "one response per opaque");
            }
        }
    }
    let got = Rc::new(RefCell::new(HashMap::new()));
    let client = ShardClient {
        tx: RefCell::new(tx),
        rx: RefCell::new(Vec::new()),
        got: Rc::clone(&got),
    };
    spawn_with(&c.client, CoreId(0), client, move |client| {
        ebbrt_net::netif::local_netif().connect(
            dist::shard_ip(0),
            memcached::MEMCACHED_PORT,
            Rc::new(client),
        );
    });
    c.w.run_to_idle();

    // Every request — local, cross-shard, and the dead-shard probe —
    // was answered; values round-tripped; failure surfaced as a
    // status, not a hang.
    let got = got.borrow();
    assert_eq!(got.len(), expect.len(), "every pipelined request answered");
    for (opaque, (status, value)) in expect.iter().enumerate() {
        let (got_status, got_value) = &got[&(opaque as u32)];
        assert_eq!(got_status, status, "status for opaque {opaque}");
        assert_eq!(got_value, value, "value for opaque {opaque}");
    }
    // The keys landed on their owners: each store holds exactly its
    // shard's keys, so cross-shard SETs really were function-shipped.
    for shard in 0..NSHARDS {
        let expected = keys.iter().filter(|(_, _, s)| *s == shard).count();
        assert_eq!(
            c.stores[shard].len(),
            expected,
            "shard {shard} owns exactly its keys"
        );
    }
    use std::sync::atomic::Ordering::Relaxed;
    assert!(
        c.stores[1].gets.load(Relaxed) >= 4 && c.stores[2].gets.load(Relaxed) >= 4,
        "cross-shard GETs served by the owners"
    );
    assert!(
        c.messengers[0].dispatched.get() > 0,
        "shard 0 shipped calls over the messenger"
    );
}

/// The same cluster driven by the measuring harness: asserts the
/// local-shard path stays zero-copy / zero-allocation in steady state
/// and that a remote ship costs more than a local hit (sanity on the
/// measured split).
#[test]
fn sharded_memcached_local_vs_remote_properties() {
    use ebbrt_bench::dist_memcached as dist;
    let r = dist::run(&dist::DistConfig {
        shards: 3,
        warmup_gets: 32,
        measured_gets: 64,
        probe_failure: true,
        cores: 1,
    });
    println!("{}", dist::format_report(&r));
    dist::assert_properties(&r);
}

/// The RCU store serves lock-free reads while writers churn — across
/// the real network path.
#[test]
fn memcached_store_consistency_under_churn() {
    let domain = Arc::new(ebbrt_core::rcu::RcuDomain::new(2));
    let store = Store::new(Arc::clone(&domain));
    let _g = domain.read_guard(CoreId(0));
    for i in 0..200u32 {
        store.insert_raw(
            format!("key{i}").into_bytes(),
            IoBuf::copy_from(&i.to_be_bytes()),
        );
    }
    // Overwrite half while reading everything.
    for i in 0..100u32 {
        store.insert_raw(
            format!("key{i}").into_bytes(),
            IoBuf::copy_from(&(i * 2).to_be_bytes()),
        );
    }
    for i in 0..200u32 {
        let v = store.get_raw(format!("key{i}").as_bytes()).unwrap();
        let got = u32::from_be_bytes(v.copy_to_vec().as_slice().try_into().unwrap());
        if i < 100 {
            assert_eq!(got, i * 2);
        } else {
            assert_eq!(got, i);
        }
    }
    assert_eq!(store.len(), 200);
}
