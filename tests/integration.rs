//! Cross-crate integration tests: the whole system assembled the way
//! the paper deploys it — native library-OS instances plus a hosted
//! process over a simulated network, running the real applications.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::Arc;

use ebbrt_apps::memcached::{self, Store};
use ebbrt_apps::spawn_with;
use ebbrt_core::cpu::CoreId;
use ebbrt_core::iobuf::{Chain, IoBuf};
use ebbrt_hosted::fs::{FsClient, FsServer};
use ebbrt_hosted::messenger::Messenger;
use ebbrt_net::netif::{ConnHandler, NetIf, TcpConn};
use ebbrt_net::types::Ipv4Addr;
use ebbrt_sim::{CostProfile, LinkParams, SimMachine, SimWorld, Switch};

const MASK: Ipv4Addr = Ipv4Addr::new(255, 255, 255, 0);

/// The paper's canonical deployment: one hosted process, two native
/// instances, one isolated network. The hosted side provides DHCP and
/// the filesystem; a native instance runs memcached; the other native
/// instance acts as the client.
#[test]
fn full_cluster_deployment() {
    let w = SimWorld::new();
    let sw = Switch::new(&w);

    let hosted = SimMachine::create(&w, "hosted", 2, CostProfile::linux_vm(), [0x0A; 6]);
    let native1 = SimMachine::create(&w, "native1", 2, CostProfile::ebbrt_vm(), [0x0B; 6]);
    let native2 = SimMachine::create(&w, "native2", 1, CostProfile::ebbrt_vm(), [0x0C; 6]);
    sw.attach(hosted.nic(), LinkParams::default());
    sw.attach(native1.nic(), LinkParams::default());
    sw.attach(native2.nic(), LinkParams::default());

    let h_if = NetIf::attach(&hosted, Ipv4Addr::new(10, 0, 0, 1), MASK);
    // Native instances boot *unconfigured* and acquire addresses over
    // DHCP from the hosted side, like the paper's deployment flow.
    let n1_if = NetIf::attach(&native1, Ipv4Addr::UNSPECIFIED, MASK);
    let n2_if = NetIf::attach(&native2, Ipv4Addr::UNSPECIFIED, MASK);
    w.run_to_idle();

    let _dhcp = ebbrt_net::dhcp::DhcpServer::start(&h_if, Ipv4Addr::new(10, 0, 0, 50), MASK);
    let configured = Rc::new(Cell::new(0));
    for (machine, netif) in [(&native1, &n1_if), (&native2, &n2_if)] {
        let c = Rc::clone(&configured);
        spawn_with(machine, CoreId(0), Rc::clone(netif), move |netif| {
            ebbrt_net::dhcp::configure(&netif, move |res| {
                res.expect("dhcp must configure");
                c.set(c.get() + 1);
            });
        });
    }
    w.run_to_idle();
    assert_eq!(configured.get(), 2, "both native instances must configure");
    let n1_ip = n1_if.ip();
    assert_ne!(n1_ip, Ipv4Addr::UNSPECIFIED);

    // Hosted filesystem offload: native1 reads its "config" remotely.
    let h_msgr = Messenger::start(&h_if);
    let n1_msgr = Messenger::start(&n1_if);
    let fs_server = FsServer::start(&h_msgr);
    fs_server.put("/srv/memcached.conf", b"max_keys=4096".to_vec());
    let fs = FsClient::new(&n1_msgr, Ipv4Addr::new(10, 0, 0, 1));
    let config_read = Rc::new(Cell::new(false));
    {
        let c = Rc::clone(&config_read);
        spawn_with(&native1, CoreId(0), fs, move |fs| {
            fs.read("/srv/memcached.conf", move |data| {
                assert_eq!(data.as_deref(), Some(b"max_keys=4096".as_slice()));
                c.set(true);
            });
        });
    }
    w.run_to_idle();
    assert!(config_read.get(), "offloaded filesystem read must complete");

    // memcached on native1, exercised from native2 over the wire. The
    // store registers as an Ebb; the server resolves its stack through
    // the well-known network-manager id.
    let store = Store::new(Arc::clone(native1.runtime().rcu()));
    let store_ref = store.register(native1.runtime());
    native1.spawn_on(CoreId(0), move || memcached::serve(store_ref));
    w.run_to_idle();

    struct KvClient {
        rx: RefCell<Vec<u8>>,
        done: Rc<Cell<bool>>,
    }
    impl ConnHandler for KvClient {
        fn on_connected(&self, conn: &TcpConn) {
            let mut req = memcached::encode_set(b"answer", b"42", 1);
            req.extend(memcached::encode_get(b"answer", 2));
            conn.send(Chain::single(IoBuf::copy_from(&req))).unwrap();
        }
        fn on_receive(&self, _c: &TcpConn, data: Chain<IoBuf>) {
            let mut rx = self.rx.borrow_mut();
            rx.extend(data.copy_to_vec());
            // SET response (24) + GET response (24 + 4 flags + 2 value).
            if rx.len() >= 24 + 24 + 4 + 2 {
                assert_eq!(&rx[rx.len() - 2..], b"42");
                self.done.set(true);
            }
        }
    }
    let done = Rc::new(Cell::new(false));
    let d2 = Rc::clone(&done);
    spawn_with(&native2, CoreId(0), Rc::clone(&n2_if), move |n2_if| {
        n2_if.connect(
            n1_ip,
            memcached::MEMCACHED_PORT,
            Rc::new(KvClient {
                rx: RefCell::new(Vec::new()),
                done: d2,
            }),
        );
    });
    w.run_to_idle();
    assert!(done.get(), "memcached roundtrip across native instances");
    assert_eq!(store.len(), 1);
}

/// The threaded backend and the allocator stack working together:
/// multi-core allocation through the Ebb hierarchy with real threads.
#[test]
fn threaded_backend_runs_allocator_stack() {
    use ebbrt_core::event::block_on;
    use ebbrt_core::future;
    use ebbrt_core::native::NativeMachine;
    use ebbrt_mem::gp::{self, EbbrtMalloc};
    use ebbrt_mem::{MallocLike, Topology};

    let ncores = 4;
    let per_core = NativeMachine::run(ncores, move || {
        let rt = ebbrt_core::runtime::current();
        let gp = gp::setup(Topology::flat(ncores), 12);
        let futures: Vec<_> = (0..ncores)
            .map(|i| {
                let (p, f) = future::promise::<usize>();
                rt.spawn(CoreId(i as u32), move || {
                    let m = EbbrtMalloc::new(gp);
                    let mut live = Vec::new();
                    for k in 0..500 {
                        live.push((m.alloc(8 + (k % 5) * 32), 8 + (k % 5) * 32));
                    }
                    let n = live.len();
                    for (a, s) in live {
                        m.free(a, s);
                    }
                    p.set_value(n);
                });
                f
            })
            .collect();
        block_on(future::join_all(futures))
            .unwrap()
            .iter()
            .sum::<usize>()
    });
    assert_eq!(per_core, ncores * 500);
}

/// Deterministic replay: the same simulated experiment produces the
/// same virtual-time trace, bit for bit.
#[test]
fn simulation_is_deterministic() {
    fn run_once() -> (u64, u64, u64) {
        let w = SimWorld::new();
        let sw = Switch::new(&w);
        let server = SimMachine::create(&w, "s", 1, CostProfile::ebbrt_vm(), [0xAA; 6]);
        let client = SimMachine::create(&w, "c", 1, CostProfile::ebbrt_vm(), [0xBB; 6]);
        sw.attach(server.nic(), LinkParams::default());
        sw.attach(client.nic(), LinkParams::default());
        let s_if = NetIf::attach(&server, Ipv4Addr::new(10, 0, 9, 1), MASK);
        let c_if = NetIf::attach(&client, Ipv4Addr::new(10, 0, 9, 2), MASK);
        w.run_to_idle();
        let store = Store::new(Arc::clone(server.runtime().rcu()));
        let store_ref = store.register(server.runtime());
        server.spawn_on(CoreId(0), move || memcached::serve(store_ref));
        w.run_to_idle();

        struct Pinger {
            n: Cell<u32>,
        }
        impl ConnHandler for Pinger {
            fn on_connected(&self, conn: &TcpConn) {
                let req = memcached::encode_set(b"k", b"v", 0);
                conn.send(Chain::single(IoBuf::copy_from(&req))).unwrap();
            }
            fn on_receive(&self, conn: &TcpConn, _d: Chain<IoBuf>) {
                let n = self.n.get() + 1;
                self.n.set(n);
                if n < 50 {
                    let req = memcached::encode_get(b"k", n);
                    conn.send(Chain::single(IoBuf::copy_from(&req))).unwrap();
                }
            }
        }
        spawn_with(&client, CoreId(0), Rc::clone(&c_if), move |c_if| {
            c_if.connect(
                Ipv4Addr::new(10, 0, 9, 1),
                memcached::MEMCACHED_PORT,
                Rc::new(Pinger { n: Cell::new(0) }),
            );
        });
        w.run_to_idle();
        (w.now(), s_if.stats.rx_tcp.get(), client.cpu_time(CoreId(0)))
    }
    assert_eq!(run_once(), run_once());
}

/// The RCU store serves lock-free reads while writers churn — across
/// the real network path.
#[test]
fn memcached_store_consistency_under_churn() {
    let domain = Arc::new(ebbrt_core::rcu::RcuDomain::new(2));
    let store = Store::new(Arc::clone(&domain));
    let _g = domain.read_guard(CoreId(0));
    for i in 0..200u32 {
        store.insert_raw(
            format!("key{i}").into_bytes(),
            IoBuf::copy_from(&i.to_be_bytes()),
        );
    }
    // Overwrite half while reading everything.
    for i in 0..100u32 {
        store.insert_raw(
            format!("key{i}").into_bytes(),
            IoBuf::copy_from(&(i * 2).to_be_bytes()),
        );
    }
    for i in 0..200u32 {
        let v = store.get_raw(format!("key{i}").as_bytes()).unwrap();
        let got = u32::from_be_bytes(v.copy_to_vec().as_slice().try_into().unwrap());
        if i < 100 {
            assert_eq!(got, i * 2);
        } else {
            assert_eq!(got, i);
        }
    }
    assert_eq!(store.len(), 200);
}
